//! Facade crate for the water-immersion reproduction workspace.
//!
//! Re-exports every member crate so examples and integration tests can
//! `use water_immersion::*`-style paths without naming each crate.

pub use immersion_archsim as archsim;
pub use immersion_coolant as coolant;
pub use immersion_core as core_;
pub use immersion_desim as desim;
pub use immersion_npb as npb;
pub use immersion_power as power;
pub use immersion_serve as serve;
pub use immersion_thermal as thermal;
