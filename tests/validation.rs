//! Cross-validation: independent models of the same quantity must
//! agree — the analytical working-set predictor vs the cycle-level
//! simulator, and the sparse CG solver vs dense Gaussian elimination.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use water_immersion::archsim::{System, SystemConfig};
use water_immersion::npb::analysis::predict_l1;
use water_immersion::npb::{Benchmark, TraceGenerator};
use water_immersion::thermal::sparse::{solve_cg, CgOptions, TripletMatrix};

#[test]
fn analytical_and_simulated_miss_rates_agree() {
    // The closed-form working-set model and the tag-accurate simulator
    // are two independent implementations of the same descriptor
    // semantics; they must agree within a coarse tolerance on every
    // benchmark.
    let cfg = SystemConfig::baseline(1, 2.0);
    let ops = 60_000u64;
    for bench in Benchmark::all() {
        let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 7);
        let simulated = System::new(cfg).run(&gen).l1_miss_rate;
        let predicted = predict_l1(
            &bench.descriptor(),
            cfg.l1d_kib,
            cfg.line_bytes,
            cfg.threads(),
            ops,
        )
        .l1_miss_rate;
        assert!(
            (simulated - predicted).abs() < 0.25,
            "{}: simulated {simulated:.3} vs predicted {predicted:.3}",
            bench.name()
        );
    }
}

#[test]
fn analytical_model_ranks_benchmarks_like_the_simulator() {
    // Beyond absolute agreement, the *ordering* (which benchmark
    // misses more) must match — that ordering is what drives the
    // relative frequency sensitivity of Figures 10–13.
    let cfg = SystemConfig::baseline(1, 2.0);
    let ops = 40_000u64;
    let mut sim: Vec<(f64, &str)> = Vec::new();
    let mut pred: Vec<(f64, &str)> = Vec::new();
    for bench in Benchmark::all() {
        let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 7);
        sim.push((System::new(cfg).run(&gen).l1_miss_rate, bench.name()));
        pred.push((
            predict_l1(
                &bench.descriptor(),
                cfg.l1d_kib,
                cfg.line_bytes,
                cfg.threads(),
                ops,
            )
            .l1_miss_rate,
            bench.name(),
        ));
    }
    // Spearman-ish: the two orderings of the extremes must agree.
    let min_sim = sim.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap().1;
    let min_pred = pred.iter().min_by(|a, b| a.0.total_cmp(&b.0)).unwrap().1;
    assert_eq!(min_sim, min_pred, "least memory-bound benchmark disagrees");
    assert_eq!(min_sim, "EP");
}

#[test]
fn sparse_cg_matches_dense_gaussian_elimination() {
    // Random SPD conductance networks: the thermal solver's CG result
    // must match a dense direct solve to tight tolerance.
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..10 {
        let n = rng.gen_range(5..40);
        let mut trip = TripletMatrix::new(n);
        let mut dense = vec![vec![0.0f64; n]; n];
        // Random conductances on a random graph + grounding.
        for _ in 0..(3 * n) {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                let g = rng.gen_range(0.1..5.0);
                trip.add_conductance(i, j, g);
                dense[i][i] += g;
                dense[j][j] += g;
                dense[i][j] -= g;
                dense[j][i] -= g;
            }
        }
        for (i, row) in dense.iter_mut().enumerate() {
            let g = rng.gen_range(0.5..2.0);
            trip.add_grounded(i, g);
            row[i] += g;
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();

        let a = trip.to_csr();
        let (x_cg, _) = solve_cg(&a, &b, &vec![0.0; n], CgOptions::default()).unwrap();

        // Dense Gaussian elimination with partial pivoting.
        let mut m = dense.clone();
        let mut rhs = b.clone();
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&p, &q| m[p][col].abs().total_cmp(&m[q][col].abs()))
                .unwrap();
            m.swap(col, piv);
            rhs.swap(col, piv);
            for row in col + 1..n {
                let f = m[row][col] / m[col][col];
                let (top, bottom) = m.split_at_mut(row);
                for (dst, &src) in bottom[0][col..].iter_mut().zip(&top[col][col..]) {
                    *dst -= f * src;
                }
                rhs[row] -= f * rhs[col];
            }
        }
        let mut x_dense = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for k in row + 1..n {
                acc -= m[row][k] * x_dense[k];
            }
            x_dense[row] = acc / m[row][row];
        }

        for (i, (a, b)) in x_cg.iter().zip(&x_dense).enumerate() {
            assert!(
                (a - b).abs() < 1e-6 * (1.0 + b.abs()),
                "trial {trial}, x[{i}]: cg {a} vs dense {b}"
            );
        }
    }
}

#[test]
fn cacti_and_table1_agree_on_cache_latencies() {
    // The CACTI-lite geometry model must be consistent with the
    // latencies the simulator config hard-codes from Table 1.
    use water_immersion::power::cacti::SramArray;
    let cfg = SystemConfig::baseline(1, 2.0);
    let l1 = SramArray::new(cfg.l1d_kib, cfg.l1_assoc, cfg.line_bytes);
    let l2 = SramArray::new(cfg.l2_bank_kib, cfg.l2_assoc, cfg.line_bytes);
    assert!(l1.latency_cycles(cfg.freq_ghz) <= cfg.l1_latency + 1);
    let l2_cycles = l2.latency_cycles(cfg.freq_ghz);
    assert!(
        l2_cycles >= cfg.l2_latency / 2 && l2_cycles <= cfg.l2_latency * 2,
        "L2 model {l2_cycles} cycles vs Table 1's {}",
        cfg.l2_latency
    );
}
