//! Conformance goldens and scheduling-invariance checks.
//!
//! The golden files under `tests/goldens/` pin the exact CSV output of
//! two paper figures at smoke quality: the Figure 7 frequency-vs-chips
//! sweep (1–15 chips × five cooling options) and the Figure 10 NPB
//! relative-time summary. Any drift — a solver change, a VFS-table
//! tweak, an accidental reordering — fails with a diff pointer. To
//! accept an intentional change, regenerate with:
//!
//! ```text
//! BLESS_GOLDENS=1 cargo test --test conformance
//! ```
//!
//! The pool-width test proves the campaign engine's outputs and
//! canonical manifest are a pure function of the job graph, not of
//! worker interleaving — the property that makes the fault matrix's
//! bitwise comparisons meaningful.

use immersion_bench::experiments::{run_experiment, Quality};
use immersion_bench::faultharness::{outputs_json, run_demo};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compare `actual` against the named golden, or rewrite the golden
/// when `BLESS_GOLDENS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDENS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with BLESS_GOLDENS=1 cargo test --test conformance",
            path.display()
        )
    });
    if expected != actual {
        let first_bad = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| i + 1)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()) + 1);
        panic!(
            "{name} drifted from its golden (first differing line {first_bad}).\n\
             --- expected ({}):\n{expected}\n--- actual:\n{actual}\n\
             if this change is intentional: BLESS_GOLDENS=1 cargo test --test conformance",
            path.display()
        );
    }
}

/// Render an experiment's tables the way the golden stores them: CSVs
/// separated by blank lines, in order.
fn experiment_csv(name: &str) -> String {
    let tables = run_experiment(name, Quality::quick())
        .unwrap_or_else(|| panic!("unknown experiment '{name}'"));
    let mut out = String::new();
    for t in &tables {
        out.push_str(&t.to_csv());
        out.push('\n');
    }
    out
}

#[test]
fn fig7_freq_vs_chips_matches_golden() {
    check_golden("fig7_freq_vs_chips.csv", &experiment_csv("fig7"));
}

#[test]
fn fig10_npb_summary_matches_golden() {
    check_golden("fig10_npb_summary.csv", &experiment_csv("fig10"));
}

#[test]
fn campaign_results_are_invariant_to_pool_width() {
    let root = std::env::temp_dir().join(format!(
        "immersion-conformance-width-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);

    let mut manifests = Vec::new();
    let mut outputs = Vec::new();
    for workers in [1, 2, 4] {
        // A fresh cache per width: each run computes everything itself.
        let (report, manifest) =
            run_demo(&root.join(format!("w{workers}/cache")), workers, &|_| {})
                .expect("demo campaign");
        assert!(report.all_ok(), "width {workers} failed");
        assert_eq!(report.cache_hits, 0, "fresh cache must not hit");
        manifests.push(manifest.canonical_json());
        outputs.push(outputs_json(&report));
    }
    assert_eq!(manifests[0], manifests[1], "1 vs 2 workers: manifest drift");
    assert_eq!(manifests[0], manifests[2], "1 vs 4 workers: manifest drift");
    assert_eq!(outputs[0], outputs[1], "1 vs 2 workers: output drift");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 workers: output drift");

    let _ = std::fs::remove_dir_all(&root);
}
