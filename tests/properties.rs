//! Cross-crate property-based tests (proptest): physical and protocol
//! invariants that must hold for *any* input, not just the paper's
//! configurations.

use proptest::prelude::*;
use water_immersion::archsim::{System, SystemConfig};
use water_immersion::npb::descriptor::{Benchmark, WorkloadDescriptor};
use water_immersion::npb::TraceGenerator;
use water_immersion::power::chips::{high_frequency_cmp, low_power_cmp};
use water_immersion::power::mcpat::analyze;
use water_immersion::power::vfs::{power_scale, VfsCurve};
use water_immersion::thermal::floorplan::{Floorplan, Rect};
use water_immersion::thermal::grid::{Convection, LayerSpec, ModelBuilder, Surface};
use water_immersion::thermal::materials::SILICON;
use water_immersion::thermal::stack3d::{CoolingParams, StackBuilder};
use water_immersion::thermal::units::{Celsius, HeatTransferCoeff};

// ---------------------------------------------------------------------------
// Thermal invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Energy conservation: whatever power pattern is injected, exactly
    /// that much heat leaves through the convective boundary.
    #[test]
    fn steady_solve_conserves_energy(
        powers in proptest::collection::vec(0.0f64..20.0, 16),
        h in 20.0f64..2000.0,
    ) {
        let fp = water_immersion::thermal::floorplan::baseline_16_tile();
        let mut cooling = CoolingParams::water_immersion();
        if let water_immersion::thermal::stack3d::PrimaryCooling::Heatsink { h: ref mut hh } =
            cooling.primary
        {
            *hh = HeatTransferCoeff::new(h);
        }
        let model = StackBuilder::new(fp)
            .chips(1)
            .grid(8, 8)
            .cooling(cooling)
            .build()
            .unwrap();
        let mut p = model.zero_power();
        let mut i = 0;
        p.fill_with(|_, _| {
            let v = powers[i % powers.len()];
            i += 1;
            v
        });
        let total = p.total();
        prop_assume!(total > 1e-6);
        let sol = model.solve_steady(&p).unwrap();
        let out: f64 = model
            .conv_ties()
            .iter()
            .map(|&(n, g, amb)| g * (sol.temps()[n] - amb))
            .sum();
        prop_assert!((out - total).abs() / total < 1e-6, "in {total} out {out}");
        // And nothing is colder than the coolant.
        prop_assert!(sol.min_temp() >= 25.0 - 1e-9);
    }

    /// Monotonicity: adding power anywhere never cools anything.
    #[test]
    fn more_power_never_cools(extra in 0.1f64..30.0, block in 0usize..16) {
        let fp = water_immersion::thermal::floorplan::baseline_16_tile();
        let names: Vec<String> = fp.blocks().iter().map(|b| b.name.clone()).collect();
        let model = StackBuilder::new(fp)
            .chips(1)
            .grid(8, 8)
            .cooling(CoolingParams::mineral_oil())
            .build()
            .unwrap();
        let mut p = model.zero_power();
        p.fill_with(|_, _| 1.0);
        let base = model.solve_steady(&p).unwrap().into_temps();
        p.set(0, &names[block], 1.0 + extra).unwrap();
        let hotter = model.solve_steady(&p).unwrap().into_temps();
        for (b, h) in base.iter().zip(&hotter) {
            prop_assert!(h >= &(b - 1e-9));
        }
    }

    /// Rasterisation conserves power for arbitrary block rectangles.
    #[test]
    fn rasterisation_conserves_weight(
        x in 0.0f64..0.8,
        y in 0.0f64..0.8,
        w in 0.01f64..0.2,
        h in 0.01f64..0.2,
        nx in 1usize..24,
        ny in 1usize..24,
    ) {
        let mut fp = Floorplan::new(1.0, 1.0);
        fp.add_block("B", Rect::new(x, y, w, h)).unwrap();
        let total: f64 = fp.rasterize_block(0, nx, ny).iter().map(|(_, f)| f).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "lost weight: {total}");
    }

    /// The flip transform is an involution on arbitrary floorplans.
    #[test]
    fn flip_is_involution(
        rects in proptest::collection::vec((0.0f64..0.5, 0.0f64..0.5, 0.01f64..0.4, 0.01f64..0.4), 1..8)
    ) {
        let mut fp = Floorplan::new(1.0, 1.0);
        for (i, (x, y, w, h)) in rects.iter().enumerate() {
            // Clamp to the die; skip degenerate rects.
            let w = w.min(1.0 - x);
            let h = h.min(1.0 - y);
            if w > 1e-6 && h > 1e-6 {
                fp.add_block(&format!("B{i}"), Rect::new(*x, *y, w, h)).unwrap();
            }
        }
        prop_assume!(!fp.is_empty());
        let back = fp.rotate_180().rotate_180();
        for (a, b) in fp.blocks().iter().zip(back.blocks()) {
            prop_assert!((a.rect.x - b.rect.x).abs() < 1e-12);
            prop_assert!((a.rect.y - b.rect.y).abs() < 1e-12);
        }
    }

    /// A single-layer uniform slab is spatially uniform no matter the
    /// resolution (discretisation does not invent gradients).
    #[test]
    fn uniform_slab_stays_uniform(nx in 2usize..20, ny in 2usize..20, watts in 0.5f64..50.0) {
        let mut fp = Floorplan::new(0.02, 0.02);
        fp.add_block("ALL", Rect::new(0.0, 0.0, 0.02, 0.02)).unwrap();
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new(
            "slab",
            SILICON,
            0.5e-3,
            Rect::new(0.0, 0.0, 0.02, 0.02),
            nx,
            ny,
        ));
        mb.add_convection(Convection::simple(
            l,
            Surface::Top,
            HeatTransferCoeff::new(500.0),
            Celsius::new(25.0),
        ));
        mb.add_power_floorplan(l, fp);
        let model = mb.build().unwrap();
        let mut p = model.zero_power();
        p.set(0, "ALL", watts).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        prop_assert!((sol.max_temp() - sol.min_temp()).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Power-model invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The VFS voltage solve inverts the frequency relation everywhere.
    #[test]
    fn vfs_inversion_holds(f_frac in 0.05f64..1.0, vth in 0.15f64..0.5) {
        let curve = VfsCurve::new(3.6, vth + 0.7, vth);
        let f = f_frac * 3.6;
        let v = curve.voltage_for(f).unwrap();
        prop_assert!((curve.freq_at(v) - f).abs() < 1e-6);
        prop_assert!(v >= vth && v <= vth + 0.7 + 1e-9);
    }

    /// Power scaling is monotone and bounded by the cube law.
    #[test]
    fn power_scale_bounds(f_lo in 0.3f64..0.9) {
        let curve = VfsCurve::new(2.0, 0.9, 0.3);
        let top = curve.step_for(2.0).unwrap();
        let lo = curve.step_for(f_lo * 2.0).unwrap();
        let s = power_scale(lo, top);
        prop_assert!(s.dynamic_factor > 0.0 && s.dynamic_factor < 1.0);
        prop_assert!(s.static_factor > 0.0 && s.static_factor < 1.0);
        // Dynamic scaling lies between linear (f) and cubic (f^3).
        prop_assert!(s.dynamic_factor <= f_lo + 1e-9, "dyn {} > linear {}", s.dynamic_factor, f_lo);
        prop_assert!(s.dynamic_factor >= f_lo.powi(3) - 1e-9);
    }

    /// Block powers are non-negative and sum to the chip total at any
    /// step of any chip.
    #[test]
    fn block_powers_partition_total(step_idx in 0usize..11, hot in proptest::bool::ANY) {
        let chip = if hot { high_frequency_cmp() } else { low_power_cmp() };
        let idx = step_idx % chip.vfs.len();
        let r = analyze(&chip, chip.vfs.step(idx), None);
        let sum: f64 = r.per_block.values().sum();
        prop_assert!((sum - r.total()).abs() < 1e-9);
        prop_assert!(r.per_block.values().all(|&w| w >= 0.0));
    }
}

// ---------------------------------------------------------------------------
// Simulator invariants
// ---------------------------------------------------------------------------

fn arb_descriptor() -> impl Strategy<Value = WorkloadDescriptor> {
    (
        0.05f64..0.9,    // memory fraction
        0.0f64..1.0,     // random fraction
        0.0f64..0.8,     // shared fraction
        4u64..512,       // private ws KiB
        16u64..2048,     // shared ws KiB
        1000u64..50_000, // barrier interval
    )
        .prop_map(|(mem, random, shared, pws, sws, barrier)| {
            let fp = (1.0 - mem) * 0.6;
            let int = (1.0 - mem) * 0.4;
            WorkloadDescriptor {
                benchmark: Benchmark::Ep,
                fp_fraction: fp,
                int_fraction: int,
                load_fraction: mem * 0.7,
                store_fraction: mem * 0.3,
                private_ws_kib: pws,
                shared_ws_kib: sws,
                random_fraction: random,
                shared_fraction: shared,
                stride_bytes: 64,
                barrier_interval_ops: barrier,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The CMP simulator terminates (no protocol deadlock) and retires
    /// exactly the requested instructions for arbitrary workload
    /// descriptors — stores, sharing, invalidation storms and all.
    #[test]
    fn simulator_never_deadlocks(desc in arb_descriptor(), seed in 0u64..1000) {
        let cfg = SystemConfig::baseline(2, 2.0);
        let ops = 3_000u64;
        let gen = TraceGenerator::new(desc, cfg.threads(), ops, seed);
        let stats = System::new(cfg).run(&gen);
        prop_assert_eq!(stats.instructions, ops * cfg.threads() as u64);
        prop_assert!(stats.exec_time_secs > 0.0);
        prop_assert!(stats.ipc > 0.0 && stats.ipc <= 1.0);
        prop_assert!(stats.l1_miss_rate >= 0.0 && stats.l1_miss_rate <= 1.0);
    }

    /// Determinism: identical inputs give identical cycle counts.
    #[test]
    fn simulator_is_deterministic(desc in arb_descriptor(), seed in 0u64..1000) {
        let cfg = SystemConfig::baseline(1, 3.0);
        let gen = TraceGenerator::new(desc, cfg.threads(), 2_000, seed);
        let a = System::new(cfg).run(&gen);
        let b = System::new(cfg).run(&gen);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.dram_accesses, b.dram_accesses);
        prop_assert_eq!(a.noc.packets, b.noc.packets);
    }
}

// ---------------------------------------------------------------------------
// Engine invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue delivers any schedule in nondecreasing time
    /// order, FIFO within (time, priority).
    #[test]
    fn event_queue_orders_any_schedule(
        times in proptest::collection::vec(0u64..10_000, 1..200),
        prios in proptest::collection::vec(0u8..4, 1..200),
    ) {
        use water_immersion::desim::EventQueue;
        use water_immersion::desim::Time;
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, (&t, &p)) in times.iter().zip(prios.iter().cycle()).enumerate() {
            q.schedule(Time::from_ps(t), p, i);
        }
        let mut last: Option<(Time, u8, u64)> = None;
        let mut delivered = 0;
        while let Some(ev) = q.pop() {
            if let Some((lt, lp, lseq)) = last {
                prop_assert!(ev.time >= lt);
                if ev.time == lt {
                    prop_assert!(ev.priority >= lp);
                    if ev.priority == lp {
                        prop_assert!(ev.seq > lseq, "FIFO violated");
                    }
                }
            }
            last = Some((ev.time, ev.priority, ev.seq));
            delivered += 1;
        }
        prop_assert_eq!(delivered, times.len().min(200));
    }

    /// The cache's LRU array never loses a line silently: after any
    /// access sequence, every line reported evicted plus every line
    /// still probe-able accounts for every line ever installed.
    #[test]
    fn cache_conserves_lines(addrs in proptest::collection::vec(0u64..4096, 1..300)) {
        use water_immersion::archsim::cache::{Access, CacheArray};
        use std::collections::HashSet;
        let mut c: CacheArray<()> = CacheArray::new(2, 2, 64); // tiny: 32 lines
        let mut installed: HashSet<u64> = HashSet::new();
        let mut evicted: HashSet<u64> = HashSet::new();
        for &a in &addrs {
            let addr = a * 64; // line-aligned
            match c.access(addr, ()) {
                Access::Hit => {
                    prop_assert!(installed.contains(&addr), "hit on never-installed line");
                }
                Access::Miss => {
                    installed.insert(addr);
                    evicted.remove(&addr);
                }
                Access::MissEvict(v, ()) => {
                    prop_assert!(installed.contains(&v), "evicted a ghost line");
                    evicted.insert(v);
                    installed.insert(addr);
                    evicted.remove(&addr);
                }
            }
        }
        // Everything installed is either still resident or was evicted.
        for &line in &installed {
            let resident = c.probe(line).is_some();
            prop_assert!(
                resident || evicted.contains(&line),
                "line {line:#x} vanished"
            );
        }
    }

    /// NoC routing: arrival is never before the zero-load latency and
    /// never decreases when the same link is reused.
    #[test]
    fn noc_latency_bounds(
        pairs in proptest::collection::vec((0u16..16, 0u16..16), 1..40),
        chips in 1usize..4,
    ) {
        use water_immersion::archsim::noc::{Mesh, MsgClass, Node};
        use water_immersion::archsim::SystemConfig;
        use water_immersion::desim::Time;
        let cfg = SystemConfig::baseline(chips, 2.0);
        let mut mesh = Mesh::new(cfg);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let src = Node { chip: (i % chips) as u16, tile: a };
            let dst = Node { chip: ((i + 1) % chips) as u16, tile: b };
            let now = Time::from_ps(i as u64 * 100);
            let hops = mesh.hops(src, dst);
            let arrive = mesh.route(src, dst, MsgClass::Request, 5, now);
            // Zero-load: hops x (3-stage pipeline + 5 flits) at 500 ps,
            // plus vertical-hop extras; local delivery is 3 cycles.
            let min_ps = if hops == 0 { 1500 } else { hops * (3 + 5) * 500 };
            prop_assert!(
                arrive.as_ps() >= now.as_ps() + min_ps,
                "{} hops arrived too fast: {} < {}",
                hops,
                arrive.as_ps() - now.as_ps(),
                min_ps
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Static-analysis-era invariants (PR 2): matrix structure and units
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The assembled conductance matrix is symmetric for any stack
    /// height, grid resolution, and convective strength: conduction and
    /// convection both enter as symmetric two-node (or grounded) ties.
    #[test]
    fn conductance_matrix_is_symmetric(
        chips in 1usize..5,
        grid in 4usize..10,
        h in 20.0f64..5000.0,
    ) {
        let fp = water_immersion::thermal::floorplan::baseline_16_tile();
        let model = StackBuilder::new(fp)
            .chips(chips)
            .grid(grid, grid)
            .cooling(CoolingParams::custom_immersion("prop", HeatTransferCoeff::new(h)))
            .build()
            .unwrap();
        prop_assert!(
            model.matrix().is_symmetric(1e-9),
            "asymmetric conductance matrix at chips={chips} grid={grid} h={h}"
        );
    }

    /// Heat only flows out: with non-negative power everywhere, no cell
    /// may settle below the coolant ambient (steady-state temperature
    /// rise is non-negative up to solver tolerance).
    #[test]
    fn steady_state_rise_is_non_negative(
        powers in proptest::collection::vec(0.0f64..30.0, 16),
        h in 50.0f64..3000.0,
    ) {
        let fp = water_immersion::thermal::floorplan::baseline_16_tile();
        let model = StackBuilder::new(fp)
            .chips(1)
            .grid(8, 8)
            .cooling(CoolingParams::custom_immersion("prop", HeatTransferCoeff::new(h)))
            .build()
            .unwrap();
        let mut p = model.zero_power();
        let mut i = 0;
        p.fill_with(|_, _| {
            let v = powers[i % powers.len()];
            i += 1;
            v
        });
        let sol = model.solve_steady(&p).unwrap();
        let ambient = model.mean_ambient();
        for &t in sol.temps() {
            prop_assert!(
                t >= ambient - 1e-6,
                "cell at {t} C below ambient {ambient} C with non-negative power"
            );
        }
    }

    /// Celsius -> Kelvin -> Celsius is the identity (to rounding) over
    /// the whole physically plausible range, and the Kelvin magnitude
    /// is always offset by exactly 273.15.
    #[test]
    fn celsius_kelvin_round_trip(t in -273.15f64..2000.0) {
        use water_immersion::thermal::units::{Kelvin, CELSIUS_OFFSET};
        let c = Celsius::new(t);
        let k: Kelvin = c.to_kelvin();
        prop_assert!((k.raw() - (t + CELSIUS_OFFSET)).abs() < 1e-9);
        let back = k.to_celsius();
        prop_assert!((back.raw() - t).abs() < 1e-9, "{t} -> {} -> {}", k.raw(), back.raw());
        // The From impls agree with the explicit conversions.
        let via_from: Celsius = Kelvin::from(c).into();
        prop_assert!((via_from.raw() - t).abs() < 1e-9);
    }
}
