//! End-to-end integration: power model → thermal solver → frequency
//! explorer → CMP simulator, exactly the paper's §3 pipeline.

use water_immersion::archsim::{System, SystemConfig};
use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::explorer::{max_frequency, power_at, solve_at};
use water_immersion::core_::perf::{relative_times, run_npb_suite};
use water_immersion::npb::{Benchmark, TraceGenerator};
use water_immersion::power::chips::{high_frequency_cmp, low_power_cmp};
use water_immersion::power::mcpat::analyze;
use water_immersion::thermal::stack3d::CoolingParams;

fn quick(chip: water_immersion::power::ChipModel, n: usize, c: CoolingParams) -> CmpDesign {
    CmpDesign::new(chip, n, c).with_grid(8, 8)
}

#[test]
fn mcpat_power_map_drives_hotspot_solve() {
    // The per-block McPAT report must inject exactly its total power
    // into the thermal model, and the solve must dissipate all of it.
    let chip = high_frequency_cmp();
    let d = quick(chip.clone(), 3, CoolingParams::mineral_oil());
    let model = d.thermal_model().unwrap();
    let step = chip.vfs.max_step();
    let p = power_at(&d, &model, step, None).unwrap();
    let report = analyze(&chip, step, None);
    assert!((p.total() - 3.0 * report.total()).abs() < 1e-9);

    let sol = model.solve_steady(&p).unwrap();
    let out: f64 = model
        .conv_ties()
        .iter()
        .map(|&(n, g, amb)| g * (sol.temps()[n] - amb))
        .sum();
    assert!(
        (out - p.total()).abs() / p.total() < 1e-6,
        "energy balance: {out} W out vs {} W in",
        p.total()
    );
}

#[test]
fn explored_frequency_is_tight() {
    // The explorer's answer must be feasible, and one step higher must
    // not be (unless it found the top step).
    let chip = high_frequency_cmp();
    let d = quick(chip.clone(), 5, CoolingParams::water_immersion());
    let model = d.thermal_model().unwrap();
    let step = max_frequency(&d).expect("feasible");
    let t = solve_at(&d, &model, step, None).unwrap().die_max();
    assert!(t <= d.threshold() + 1e-9, "chosen step is infeasible: {t}");

    let steps = chip.vfs.steps();
    let idx = steps
        .iter()
        .position(|s| (s.freq_ghz - step.freq_ghz).abs() < 1e-9)
        .unwrap();
    if idx + 1 < steps.len() {
        let t_next = solve_at(&d, &model, steps[idx + 1], None)
            .unwrap()
            .die_max();
        assert!(
            t_next > d.threshold(),
            "a higher step was feasible: {t_next} C at {} GHz",
            steps[idx + 1].freq_ghz
        );
    }
}

#[test]
fn frequencies_feed_the_simulator_consistently() {
    // Running the suite through perf must equal running the simulator
    // by hand at the explorer's frequency.
    let d = quick(low_power_cmp(), 2, CoolingParams::water_immersion());
    let suite = run_npb_suite(&d, 3_000, 9);
    let f = suite.freq_ghz.expect("feasible");
    let cfg = SystemConfig::baseline(2, f);
    let gen = TraceGenerator::new(Benchmark::Ep.descriptor(), cfg.threads(), 3_000, 9);
    let manual = System::new(cfg).run(&gen);
    let from_suite = suite
        .results
        .iter()
        .find(|r| r.benchmark == Benchmark::Ep)
        .unwrap();
    assert_eq!(
        manual.cycles, from_suite.stats.cycles,
        "determinism across paths"
    );
}

#[test]
fn water_beats_pipe_end_to_end() {
    // The paper's headline, end to end: at 6 chips the water-immersed
    // CMP runs every NPB program at least as fast as the water-pipe
    // CMP, and strictly faster on the geomean.
    let chip = low_power_cmp();
    let water = run_npb_suite(
        &quick(chip.clone(), 6, CoolingParams::water_immersion()),
        4_000,
        9,
    );
    let pipe = run_npb_suite(&quick(chip, 6, CoolingParams::water_pipe()), 4_000, 9);
    let rel = relative_times(&water, &pipe).expect("both feasible");
    for (b, r) in &rel {
        assert!(*r <= 1.001, "{b:?}: water slower than pipe ({r})");
    }
    let geo = water_immersion::core_::perf::geomean_relative(&rel);
    assert!(geo < 0.99, "no meaningful end-to-end win: geomean {geo}");
}

#[test]
fn leakage_feedback_changes_power_not_protocol() {
    // With feedback on, the sustained frequency may differ, but the
    // simulator output at a given frequency is untouched (power and
    // performance models are decoupled, as in the paper's toolchain).
    let base = quick(high_frequency_cmp(), 4, CoolingParams::mineral_oil());
    let fb = base.clone().with_leakage_feedback(true);
    let f_base = max_frequency(&base).unwrap().freq_ghz;
    let f_fb = max_frequency(&fb).unwrap().freq_ghz;
    assert!(f_fb >= f_base, "sub-threshold feedback can only help");
}

#[test]
fn transient_approach_to_the_steady_operating_point() {
    // Extension: the transient solver converges to the steady solution
    // the explorer used.
    use water_immersion::thermal::transient::TransientSolver;
    let chip = low_power_cmp();
    let d = quick(chip.clone(), 2, CoolingParams::water_immersion());
    let model = d.thermal_model().unwrap();
    let step = max_frequency(&d).unwrap();
    let p = power_at(&d, &model, step, None).unwrap();
    let steady = model.solve_steady(&p).unwrap().max_temp();
    let mut ts = TransientSolver::new(&model, 5.0);
    let traj = ts.run(&p, 400).unwrap();
    let last = *traj.last().unwrap();
    assert!(
        (last - steady).abs() < 0.5,
        "transient {last} C vs steady {steady} C"
    );
    // And the approach is monotone from a cold start.
    for w in traj.windows(2) {
        assert!(w[1] >= w[0] - 1e-9);
    }
}
