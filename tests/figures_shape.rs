//! Shape tests for the figure-regeneration harness: every experiment
//! runs at quick quality, and the qualitative claims the paper makes
//! about each figure hold — who wins, by roughly what factor, where the
//! feasibility walls fall.

use immersion_bench::{run_experiment, Quality, EXPERIMENTS};
use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::explorer::max_frequency;
use water_immersion::power::chips::{high_frequency_cmp, low_power_cmp};
use water_immersion::thermal::stack3d::CoolingParams;

#[test]
fn every_experiment_produces_rows() {
    for name in EXPERIMENTS {
        // The NPB figures are exercised separately (they dominate the
        // runtime), and the DTM co-simulation is covered by its own
        // unit tests; everything else runs here.
        if (name.starts_with("fig1") && name.len() == 5) || *name == "dtm" {
            continue; // fig10..fig13, dtm
        }
        let tables = run_experiment(name, Quality::quick())
            .unwrap_or_else(|| panic!("unknown experiment {name}"));
        assert!(!tables.is_empty(), "{name}: no tables");
        for t in &tables {
            assert!(!t.is_empty(), "{name}: empty table '{}'", t.title());
        }
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(run_experiment("fig99", Quality::quick()).is_none());
}

#[test]
fn figure7_walls_are_ordered() {
    // Air dies first, then the water pipe; the immersion liquids go
    // deepest and water at least as deep as oil (Figure 7's story).
    let wall = |c: CoolingParams| {
        let base = CmpDesign::new(low_power_cmp(), 1, c).with_grid(8, 8);
        (1..=15)
            .map(|n| {
                let mut d = base.clone();
                d.chips = n;
                max_frequency(&d)
            })
            .take_while(|s| s.is_some())
            .count()
    };
    let air = wall(CoolingParams::air());
    let pipe = wall(CoolingParams::water_pipe());
    let oil = wall(CoolingParams::mineral_oil());
    let water = wall(CoolingParams::water_immersion());
    assert!(air < pipe, "air wall {air} !< pipe wall {pipe}");
    assert!(pipe < oil, "pipe wall {pipe} !< oil wall {oil}");
    assert!(water >= oil, "water wall {water} < oil wall {oil}");
    assert!(air <= 8, "air reaches implausibly deep: {air}");
    assert!(water >= 10, "water should stack deep: {water}");
}

#[test]
fn figure8_water_wins_at_every_height() {
    for n in [2usize, 4, 6, 8] {
        let f = |c: CoolingParams| {
            let d = CmpDesign::new(high_frequency_cmp(), n, c).with_grid(8, 8);
            max_frequency(&d).map(|s| s.freq_ghz).unwrap_or(0.0)
        };
        let water = f(CoolingParams::water_immersion());
        for c in [
            CoolingParams::air(),
            CoolingParams::water_pipe(),
            CoolingParams::mineral_oil(),
            CoolingParams::fluorinert(),
        ] {
            let other = f(c);
            assert!(
                water >= other,
                "{n} chips: water {water} GHz < {} {other} GHz",
                c.name
            );
        }
    }
}

#[test]
fn figure15_flip_never_hurts() {
    for cooling in [CoolingParams::air(), CoolingParams::water_immersion()] {
        let plain = CmpDesign::new(high_frequency_cmp(), 4, cooling).with_grid(16, 16);
        let flipped = plain.clone().with_flip(true);
        let f_plain = max_frequency(&plain).map(|s| s.freq_ghz).unwrap_or(0.0);
        let f_flip = max_frequency(&flipped).map(|s| s.freq_ghz).unwrap_or(0.0);
        assert!(
            f_flip >= f_plain,
            "{}: flip lowered frequency {f_plain} -> {f_flip}",
            cooling.name
        );
    }
}

#[test]
fn figure14_temperature_decreases_with_h() {
    let tables = run_experiment("fig14", Quality::quick()).unwrap();
    let csv = tables[0].to_csv();
    // Parse the numeric body: column 1 = low-power temps.
    let temps: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(1).unwrap().parse::<f64>().unwrap())
        .collect();
    for w in temps.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "temperature rose with h: {w:?}");
    }
    // And the §4.1 point: there is still a visible gain beyond water's
    // 800 W/m2K.
    let at_800 = temps[temps.len() - 4];
    let at_5000 = *temps.last().unwrap();
    assert!(
        at_800 - at_5000 > 0.5,
        "no headroom past water: {at_800} vs {at_5000}"
    );
}

#[test]
fn npb_figure10_shape() {
    let tables = run_experiment("fig10", Quality::quick()).unwrap();
    let csv = tables[0].to_csv();
    let mut water_geo = None;
    let mut pipe_geo = None;
    for line in csv.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        let geo: f64 = cells.last().unwrap().parse().unwrap_or(f64::NAN);
        match cells[0] {
            "water" => water_geo = Some(geo),
            "water-pipe" => pipe_geo = Some(geo),
            _ => {}
        }
    }
    let water = water_geo.expect("water row");
    let pipe = pipe_geo.expect("pipe row");
    assert!((pipe - 1.0).abs() < 1e-9, "pipe is the reference");
    assert!(water < 1.0, "water must beat the pipe: {water}");
    assert!(
        water > 0.75,
        "win should be bounded (paper: up to 14%): {water}"
    );
}
