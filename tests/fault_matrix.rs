//! The end-to-end fault matrix: every injection site crossed with
//! every fault kind, each cell asserting that the campaign/thermal
//! stack recovers to the bitwise-identical fault-free result, never
//! serves corrupt cache state, and re-runs exactly the jobs whose
//! entries the fault destroyed. A failing cell's panic message carries
//! the `watercool faultsim` command line that replays it.

use immersion_bench::faultharness::{
    cell_plan, reference_run, run_cell, run_matrix, MATRIX_KINDS, MATRIX_SITES,
};
use immersion_faultsim::FaultKind;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The injector is process-global; armed windows of one test must not
/// overlap another test's unarmed (reference/resume) runs.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "immersion-fault-matrix-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn full_matrix_recovers_bitwise_everywhere() {
    let _serial = serial();
    let root = scratch("matrix");
    let report = run_matrix(42, &root).expect("the harness itself must not fail");

    assert_eq!(
        report.cells.len(),
        MATRIX_SITES.len() * MATRIX_KINDS.len(),
        "every site × kind combination must be exercised"
    );
    assert!(
        report.cells.len() >= 25,
        "the matrix must cover >= 25 cells"
    );
    assert!(
        report.cells.iter().all(|c| c.injected >= 1),
        "every cell must actually fire its fault:\n{}",
        report.render()
    );
    // Corruption-producing kinds at write sites must be *observed*
    // corrupting (and then quarantined) somewhere in the matrix — a
    // matrix where nothing ever reached disk corrupt would be testing
    // nothing.
    assert!(
        report.cells.iter().any(|c| c.corrupt_entries > 0),
        "no cell produced a corrupt cache entry; the torn/garbage hooks are dead:\n{}",
        report.render()
    );
    assert!(report.passed(), "{}", report.render());

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cells_replay_identically_from_their_seed() {
    let _serial = serial();
    let root = scratch("replay");
    let reference = reference_run(&root.join("reference")).expect("reference run");

    // Representative cells across the stack: a corrupting cache write,
    // a forced solver divergence, and a scheduler-level panic.
    let cells = [
        (immersion_faultsim::site::CACHE_WRITE, FaultKind::TornWrite),
        (immersion_faultsim::site::THERMAL_CG, FaultKind::Diverge),
        (immersion_faultsim::site::SCHED_SPAWN, FaultKind::Panic),
    ];
    for (i, (site, kind)) in cells.into_iter().enumerate() {
        let first = run_cell(42, site, kind, &root.join(format!("a{i}")), &reference);
        let second = run_cell(42, site, kind, &root.join(format!("b{i}")), &reference);
        assert_eq!(
            first,
            second,
            "replaying ({site}, {}) from seed 42 must reproduce the cell exactly",
            kind.name()
        );
        assert!(first.passed, "{}: {}", first.replay_line(), first.detail);
    }

    // The occurrence choice is part of the seed contract too.
    for (site, kind) in cells {
        let (p1, n1) = cell_plan(42, site, kind);
        let (p2, n2) = cell_plan(42, site, kind);
        assert_eq!(n1, n2);
        assert_eq!(
            serde_json::to_string(&p1).unwrap(),
            serde_json::to_string(&p2).unwrap()
        );
    }

    let _ = std::fs::remove_dir_all(&root);
}
