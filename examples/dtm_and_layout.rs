//! Extensions in action: dynamic thermal management (§5.2) and
//! thermal-aware layout optimization (the paper's future work).
//!
//! ```sh
//! cargo run --release --example dtm_and_layout
//! ```

use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::dtm::{simulate, DtmController, PowerPhases};
use water_immersion::core_::layout::{evaluate_pattern, optimize_exhaustive};
use water_immersion::power::chips::high_frequency_cmp;
use water_immersion::thermal::stack3d::CoolingParams;

fn main() {
    let chip = high_frequency_cmp();

    // --- DTM: run hot, throttle when the sensor trips -------------------
    println!("DTM on the 4-chip high-frequency CMP (trip at 80 C):");
    let ctrl = DtmController::new(80.0, 4.0);
    for cooling in [CoolingParams::air(), CoolingParams::water_immersion()] {
        let d = CmpDesign::new(chip.clone(), 4, cooling).with_grid(8, 8);
        let out = simulate(&d, PowerPhases::worst_case(), ctrl, 700.0, 2.0).expect("dtm");
        let half = out.freq_trace.len() / 2;
        let settled: f64 =
            out.freq_trace[half..].iter().sum::<f64>() / (out.freq_trace.len() - half) as f64;
        println!(
            "  {:<7} settled at {:.2} GHz, peak {:.1} C, throttled {:.0}% of the time",
            cooling.name,
            settled,
            out.peak_temp,
            out.throttled_fraction * 100.0
        );
    }

    // --- Layout: search the rotation space the paper sampled ------------
    println!("\nrotation-pattern search (4 chips, water, 3.6 GHz):");
    let d = CmpDesign::new(chip.clone(), 4, CoolingParams::water_immersion()).with_grid(16, 16);
    let step = chip.vfs.max_step();
    let show = |label: &str, pattern: &[bool]| {
        let peak = evaluate_pattern(&d, step, pattern).expect("eval");
        let pat: String = pattern.iter().map(|&r| if r { 'R' } else { '.' }).collect();
        println!("  {label:<22} {pat}  peak {peak:.1} C");
    };
    show("no rotation", &[false; 4]);
    show("paper's flip", &[false, true, false, true]);
    let best = optimize_exhaustive(&d, step).expect("search");
    let pat: String = best
        .rotations
        .iter()
        .map(|&r| if r { 'R' } else { '.' })
        .collect();
    println!(
        "  {:<22} {}  peak {:.1} C   ({} patterns evaluated)",
        "exhaustive optimum", pat, best.peak_temp, best.evaluations
    );
}
