//! Quickstart: how much faster can a stacked CMP clock when you drop
//! the whole board in water?
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's high-frequency 16-tile CMP (Table 1), stacks it
//! four high, and asks the thermal-aware explorer for the maximum
//! sustainable frequency under each cooling option of §3.2 — then shows
//! the resulting peak temperature and the thermal map of the hottest
//! die.

use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::explorer::{max_frequency, solve_at};
use water_immersion::power::chips::high_frequency_cmp;
use water_immersion::thermal::stack3d::CoolingParams;

fn main() {
    let chip = high_frequency_cmp();
    println!(
        "chip: {} ({} cores, {:.1} W @ {:.1} GHz, threshold {} C)",
        chip.name,
        chip.cores,
        chip.max_power_watts,
        chip.vfs.max_step().freq_ghz,
        chip.temp_threshold_c
    );
    println!("stack: 4 chips, Table 2 package\n");

    println!("{:<14} {:>10} {:>12}", "cooling", "max freq", "peak temp");
    for cooling in CoolingParams::paper_options() {
        let design = CmpDesign::new(chip.clone(), 4, cooling);
        match max_frequency(&design) {
            Some(step) => {
                let model = design.thermal_model().expect("model builds");
                let sol = solve_at(&design, &model, step, None).expect("solve");
                println!(
                    "{:<14} {:>7.1} GHz {:>10.1} C",
                    cooling.name,
                    step.freq_ghz,
                    sol.die_max()
                );
            }
            None => println!("{:<14} {:>10} {:>12}", cooling.name, "-", "infeasible"),
        }
    }

    // The thermal map of the bottom (hottest) die under water at the
    // water-sustained frequency.
    let design = CmpDesign::new(chip.clone(), 4, CoolingParams::water_immersion());
    let step = max_frequency(&design).expect("water sustains the stack");
    let model = design.thermal_model().expect("model builds");
    let sol = solve_at(&design, &model, step, None).expect("solve");
    let map = sol.die_map(0).expect("bottom die");
    println!(
        "\nbottom die at {:.1} GHz under water ({:.1}..{:.1} C; cores are the hot band):",
        step.freq_ghz,
        map.min(),
        map.max()
    );
    print!("{}", map.ascii());
}
