//! NPB twice over: run the real mini-kernels natively under rayon, then
//! simulate their abstract traces on the 3-D CMP at the frequencies the
//! cooling options sustain — the §3.3 experiment end to end.
//!
//! ```sh
//! cargo run --release --example npb_on_cmp
//! ```

use water_immersion::archsim::{System, SystemConfig};
use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::explorer::max_frequency;
use water_immersion::npb::kernels::{self, Class};
use water_immersion::npb::{Benchmark, TraceGenerator};
use water_immersion::power::chips::low_power_cmp;
use water_immersion::thermal::stack3d::CoolingParams;

fn main() {
    // 1. The real kernels, verified, on this machine.
    println!("native NPB mini-kernels (class S, 4 rayon threads):");
    for r in kernels::run_all(Class::S, 4) {
        println!(
            "  {:<3} verified={:<5} checksum={:<14.6e} arithmetic intensity={:.3} flop/byte",
            r.name,
            r.verified,
            r.checksum,
            r.flops / r.bytes
        );
    }

    // 2. The same nine programs as abstract traces on the simulated
    // 6-chip low-power CMP (24 threads), at the frequency each cooling
    // option sustains.
    let chip = low_power_cmp();
    let chips = 6;
    println!("\nsimulated 6-chip CMP (24 threads), 20k instructions/thread:");
    let mut reference: Option<Vec<f64>> = None;
    for cooling in [
        CoolingParams::water_pipe(),
        CoolingParams::mineral_oil(),
        CoolingParams::water_immersion(),
    ] {
        let d = CmpDesign::new(chip.clone(), chips, cooling).with_grid(8, 8);
        let Some(step) = max_frequency(&d) else {
            println!("  {:<12} infeasible", cooling.name);
            continue;
        };
        let mut times = Vec::new();
        print!(
            "  {:<12} @ {:.1} GHz  rel-times:",
            cooling.name, step.freq_ghz
        );
        for bench in Benchmark::all() {
            let cfg = SystemConfig::baseline(chips, step.freq_ghz);
            let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), 20_000, 42);
            let stats = System::new(cfg).run(&gen);
            times.push(stats.exec_time_secs);
        }
        match &reference {
            None => {
                println!(" 1.000 (reference)");
                reference = Some(times);
            }
            Some(base) => {
                let rel: Vec<f64> = times.iter().zip(base).map(|(t, b)| t / b).collect();
                let geo = (rel.iter().map(|r| r.ln()).sum::<f64>() / rel.len() as f64).exp();
                for (bench, r) in Benchmark::all().iter().zip(&rel) {
                    print!(" {}={:.3}", bench.name(), r);
                }
                println!("  geomean={geo:.3}");
            }
        }
    }
    println!("\n(lower is better; water immersion sustains the highest frequency and");
    println!(" the compute-bound programs convert nearly all of it into speedup)");
}
