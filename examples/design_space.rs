//! Design-space exploration: the §3.2/§4 questions in one binary.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```
//!
//! 1. How deep can each coolant stack the low-power CMP (Figure 7)?
//! 2. What does a faster coolant flow (higher h, §4.1) buy?
//! 3. What does the thermal-aware flip layout (§4.2) buy?

use water_immersion::core_::design::CmpDesign;
use water_immersion::core_::explorer::{frequency_vs_chips, max_frequency, solve_at};
use water_immersion::power::chips::{high_frequency_cmp, low_power_cmp};
use water_immersion::thermal::stack3d::CoolingParams;
use water_immersion::thermal::units::HeatTransferCoeff;

fn main() {
    // 1. Frequency vs chips (Figure 7's series, coarse grid for speed).
    println!("max frequency (GHz) vs stack height, low-power CMP:");
    print!("{:<14}", "cooling");
    for n in 1..=12 {
        print!("{n:>5}");
    }
    println!();
    for cooling in CoolingParams::paper_options() {
        let base = CmpDesign::new(low_power_cmp(), 1, cooling).with_grid(8, 8);
        print!("{:<14}", cooling.name);
        for (_, step) in frequency_vs_chips(&base, 12) {
            match step {
                Some(s) => print!("{:>5.1}", s.freq_ghz),
                None => print!("{:>5}", "-"),
            }
        }
        println!();
    }

    // 2. The §4.1 h sweep: even past water's 800 W/m2K there is
    // headroom (pumps/turbines).
    println!("\npeak temp (C) of 4 stacked high-frequency chips at 3.6 GHz vs coolant h:");
    let chip = high_frequency_cmp();
    let step = chip.vfs.max_step();
    for h in [14.0, 160.0, 800.0, 1600.0, 3200.0] {
        let d = CmpDesign::new(
            chip.clone(),
            4,
            CoolingParams::custom_immersion("h", HeatTransferCoeff::new(h)),
        )
        .with_grid(8, 8);
        let model = d.thermal_model().expect("model builds");
        let t = solve_at(&d, &model, step, None).expect("solve").die_max();
        println!("  h = {h:>6.0} W/m2K -> {t:>6.1} C");
    }

    // 3. The §4.2 flip: rotate every second chip 180 degrees.
    println!("\nflip study (4-chip high-frequency CMP):");
    for cooling in [CoolingParams::air(), CoolingParams::water_immersion()] {
        for flip in [false, true] {
            let d = CmpDesign::new(chip.clone(), 4, cooling)
                .with_grid(16, 16)
                .with_flip(flip);
            let f = max_frequency(&d).map(|s| s.freq_ghz);
            println!(
                "  {:<7} flip={:<5} -> max {} GHz",
                cooling.name,
                flip,
                f.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into())
            );
        }
    }
}
