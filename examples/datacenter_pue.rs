//! The §4.4 datacenter story: direct natural-water cooling deletes the
//! secondary coolant loop, and the §2 reliability story says which
//! parts of the board may go under.
//!
//! ```sh
//! cargo run --release --example datacenter_pue
//! ```

use water_immersion::coolant::circuit::{PrototypeCooling, PrototypeServer};
use water_immersion::coolant::properties::{Coolant, CoolantKind};
use water_immersion::coolant::pue::{annual_cooling_energy_kwh, pue, CoolingArchitecture};
use water_immersion::coolant::reliability::{mean_lifetime, BoardConfig};

fn main() {
    // Coolant properties: why water (Table of §3.2 + §1's cost/safety
    // motivation).
    println!("coolant properties:");
    println!(
        "{:<13} {:>12} {:>14} {:>12} {:>10}",
        "coolant", "h (W/m2K)", "rho*c (MJ/m3K)", "USD/litre", "dielectric"
    );
    for c in Coolant::all() {
        println!(
            "{:<13} {:>12.0} {:>14.2} {:>12.3} {:>10}",
            format!("{:?}", c.kind),
            c.h,
            c.volumetric_heat_capacity() / 1e6,
            c.cost_usd_per_litre,
            c.dielectric
        );
    }

    // The prototype measurement (Figure 4).
    let proto = PrototypeServer::default();
    println!("\nPRIMERGY TX1320 M2 prototype (65 W stress):");
    for (label, opt) in [
        ("forced air", PrototypeCooling::ForcedAir),
        ("heatsink in water", PrototypeCooling::HeatsinkInWater),
        ("full immersion", PrototypeCooling::FullImmersion),
    ] {
        println!("  {:<18} {:>5.1} C", label, proto.chip_temperature(opt));
    }

    // PUE by architecture (§4.4).
    println!("\nfacility PUE at 1 MW IT load:");
    for arch in CoolingArchitecture::all() {
        println!(
            "  {:<26} PUE {:>5.3}  cooling energy {:>6.0} MWh/yr",
            arch.name,
            pue(&arch),
            annual_cooling_energy_kwh(&arch, 1000.0) / 1000.0
        );
    }
    let natural = Coolant::get(CoolantKind::NaturalWater);
    println!(
        "\n(natural water is free at {} USD/litre and arrives pre-cooled — the\n paper's Tokyo-Bay deployment ran 53 days on exactly this principle)",
        natural.cost_usd_per_litre
    );

    // Which parts go under? (§2.2–2.3)
    println!("\nexpected board lifetime (10-year horizon, 120 um parylene):");
    for (label, cfg) in [
        ("everything submerged", BoardConfig::server_naive(120.0)),
        (
            "recommended placement (connectors dry)",
            BoardConfig::server_recommended(120.0),
        ),
    ] {
        println!(
            "  {:<40} {:>5.2} years",
            label,
            mean_lifetime(&cfg, 10.0, 20_000, 7)
        );
    }
}
