//! Drop-in tracked wrappers over `std::sync` locks.
//!
//! Each wrapper carries a `&'static str` **name** that must equal the
//! static R11 analyser's `lock_id()` string for the declaration site
//! (`{crate}::{Type}.{field}` for `self.field` receivers,
//! `{crate}::{fn}()` for `OnceLock`-style accessor results, …), so
//! the dynamic lock graph recorded here diffs cleanly against
//! `watercool lint --emit-lockgraph`. The accessor methods keep the
//! `std` names — zero-argument `lock()` / `read()` / `write()` — so
//! the static analyser keeps seeing every call site after a type is
//! converted to its tracked form.
//!
//! Bookkeeping order matters for happens-before fidelity:
//!
//! - acquire: real lock **first**, then join the lock's vector clock —
//!   the previous holder finished its release bookkeeping before it
//!   unlocked, so the clock is current by the time we can run.
//! - release: publish the clock **first** (while still holding the
//!   real lock), then unlock. The [`Track`] token is declared before
//!   the inner guard in every guard struct, and Rust drops fields in
//!   declaration order.
//!
//! Poisoning passes through: a poisoned inner lock surfaces as a
//! poisoned tracked guard, so the workspace idiom
//! `.lock().unwrap_or_else(PoisonError::into_inner)` works unchanged.

use crate::{next_slot, on_acquire, on_release, Mode};
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{
    Condvar, LockResult, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// Release-on-drop token: runs the release bookkeeping for one held
/// acquisition. Declared before the inner guard in each tracked guard
/// so it drops (and publishes the clock) before the real unlock.
pub(crate) struct Track {
    slot: usize,
    name: &'static str,
    mode: Mode,
}

impl Drop for Track {
    fn drop(&mut self) {
        on_release(self.slot, self.mode);
    }
}

/// Lazily assign this lock instance's slot (never reused, so stale
/// guards from an earlier arm session stay harmless).
fn slot_of(cell: &AtomicUsize) -> usize {
    let cur = cell.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let fresh = next_slot();
    match cell.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(won) => won,
    }
}

// ---------------------------------------------------------------------------
// TrackedMutex
// ---------------------------------------------------------------------------

/// A [`Mutex`] that records acquisition order and happens-before
/// edges while the sanitizer is armed; a plain mutex plus one relaxed
/// load otherwise.
pub struct TrackedMutex<T> {
    name: &'static str,
    slot: AtomicUsize,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wrap `value` under the static lock name `name`.
    pub const fn new(name: &'static str, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            name,
            slot: AtomicUsize::new(0),
            inner: Mutex::new(value),
        }
    }

    /// The static lock name this instance reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, recording the acquisition against every lock already
    /// held by this thread.
    #[track_caller]
    pub fn lock(&self) -> LockResult<TrackedMutexGuard<'_, T>> {
        let loc = Location::caller();
        let (inner, poisoned) = match self.inner.lock() {
            Ok(g) => (g, false),
            Err(e) => (e.into_inner(), true),
        };
        let slot = slot_of(&self.slot);
        on_acquire(slot, self.name, Mode::Write, loc);
        let guard = TrackedMutexGuard {
            track: Track {
                slot,
                name: self.name,
                mode: Mode::Write,
            },
            inner,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Consume the mutex, returning the inner value. Not an
    /// acquisition — ownership proves exclusivity, so nothing is
    /// reported to the sanitizer (mirroring the static lock-order
    /// analysis, which only sees `.lock()`-shaped calls).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for a [`TrackedMutex`]. Field order is load-bearing: `track`
/// drops first, publishing the release before the real unlock.
pub struct TrackedMutexGuard<'a, T> {
    track: Track,
    inner: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// TrackedRwLock
// ---------------------------------------------------------------------------

/// An [`RwLock`] with the same tracking as [`TrackedMutex`]. Reader
/// acquisitions participate in the dynamic lock graph too (a
/// read-while-holding-read on the same name is exactly the
/// re-entrancy hazard R11 flags statically).
pub struct TrackedRwLock<T> {
    name: &'static str,
    slot: AtomicUsize,
    inner: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Wrap `value` under the static lock name `name`.
    pub const fn new(name: &'static str, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            name,
            slot: AtomicUsize::new(0),
            inner: RwLock::new(value),
        }
    }

    /// The static lock name this instance reports under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Shared acquire.
    #[track_caller]
    pub fn read(&self) -> LockResult<TrackedReadGuard<'_, T>> {
        let loc = Location::caller();
        let (inner, poisoned) = match self.inner.read() {
            Ok(g) => (g, false),
            Err(e) => (e.into_inner(), true),
        };
        let slot = slot_of(&self.slot);
        on_acquire(slot, self.name, Mode::Read, loc);
        let guard = TrackedReadGuard {
            _track: Track {
                slot,
                name: self.name,
                mode: Mode::Read,
            },
            inner,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Exclusive acquire.
    #[track_caller]
    pub fn write(&self) -> LockResult<TrackedWriteGuard<'_, T>> {
        let loc = Location::caller();
        let (inner, poisoned) = match self.inner.write() {
            Ok(g) => (g, false),
            Err(e) => (e.into_inner(), true),
        };
        let slot = slot_of(&self.slot);
        on_acquire(slot, self.name, Mode::Write, loc);
        let guard = TrackedWriteGuard {
            _track: Track {
                slot,
                name: self.name,
                mode: Mode::Write,
            },
            inner,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for a [`TrackedRwLock`].
pub struct TrackedReadGuard<'a, T> {
    _track: Track,
    inner: RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for a [`TrackedRwLock`].
pub struct TrackedWriteGuard<'a, T> {
    _track: Track,
    inner: RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// TrackedCondvar
// ---------------------------------------------------------------------------

/// A [`Condvar`] usable with [`TrackedMutexGuard`]s. A wait is a
/// release (bookkeeping runs before the real unlock inside the inner
/// wait) followed by a fresh acquire on wake-up, so the held-lock
/// stack never shows the mutex as held across the blocked window and
/// the happens-before edges match what the real condvar provides
/// through its mutex.
pub struct TrackedCondvar {
    inner: Condvar,
}

impl TrackedCondvar {
    /// A fresh condition variable.
    pub const fn new() -> TrackedCondvar {
        TrackedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Block until notified, releasing and re-acquiring the tracked
    /// mutex around the wait.
    #[track_caller]
    pub fn wait<'a, T>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
    ) -> LockResult<TrackedMutexGuard<'a, T>> {
        let loc = Location::caller();
        let TrackedMutexGuard { track, inner } = guard;
        let slot = track.slot;
        let name = track.name;
        drop(track); // release bookkeeping, before the real unlock in wait()
        let (inner, poisoned) = match self.inner.wait(inner) {
            Ok(g) => (g, false),
            Err(e) => (e.into_inner(), true),
        };
        on_acquire(slot, name, Mode::Write, loc);
        let guard = TrackedMutexGuard {
            track: Track {
                slot,
                name,
                mode: Mode::Write,
            },
            inner,
        };
        if poisoned {
            Err(PoisonError::new(guard))
        } else {
            Ok(guard)
        }
    }

    /// Block until notified or `dur` elapses.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: TrackedMutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(TrackedMutexGuard<'a, T>, WaitTimeoutResult)> {
        let loc = Location::caller();
        let TrackedMutexGuard { track, inner } = guard;
        let slot = track.slot;
        let name = track.name;
        drop(track);
        let (inner, timeout, poisoned) = match self.inner.wait_timeout(inner, dur) {
            Ok((g, t)) => (g, t, false),
            Err(e) => {
                let (g, t) = e.into_inner();
                (g, t, true)
            }
        };
        on_acquire(slot, name, Mode::Write, loc);
        let guard = TrackedMutexGuard {
            track: Track {
                slot,
                name,
                mode: Mode::Write,
            },
            inner,
        };
        if poisoned {
            Err(PoisonError::new((guard, timeout)))
        } else {
            Ok((guard, timeout))
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> TrackedCondvar {
        TrackedCondvar::new()
    }
}

impl std::fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedCondvar").finish()
    }
}
