//! # immersion-sanitizer
//!
//! A runtime concurrency sanitizer for the workspace: Eraser-style
//! lockset tracking plus vector-clock happens-before race detection,
//! with the same disarmed fast path as `immersion-faultsim` — one
//! relaxed atomic load of a false flag, so production binaries carry
//! the instrumentation at zero cost.
//!
//! ## What is tracked
//!
//! - **Locks**: [`TrackedMutex`] / [`TrackedRwLock`] /
//!   [`TrackedCondvar`] are drop-in wrappers over the `std::sync`
//!   types. While armed, every acquire joins the acquiring thread's
//!   vector clock with the lock's, every release publishes the
//!   holder's clock into the lock, and acquiring `B` while holding `A`
//!   records the edge `A → B` in the **dynamic lock-acquisition
//!   graph** — the runtime twin of the static R11 lock-order graph
//!   (`watercool lint --emit-lockgraph`). Wrapper names must equal the
//!   static analyser's `lock_id()` strings so the two graphs diff
//!   cleanly.
//! - **Fork/join**: [`fork`] / [`task_start`] / [`task_end`] /
//!   [`join`] thread happens-before edges through the vendored rayon
//!   pool's chunked regions and the campaign scheduler's scoped
//!   workers. [`chunk_claim`] additionally records each claimed chunk
//!   as a labeled write, so a double-claimed chunk surfaces as a
//!   write-write race.
//! - **Annotated shared state**: [`shared_read`] / [`shared_write`]
//!   mark the known hot shared state (solver-context take/put, the
//!   warm-model pool, the single-flight map, …). Each access is
//!   checked against the previous accesses' epochs; unordered
//!   conflicting accesses are reported as races. [`sync_write`] /
//!   [`sync_read`] give release/acquire semantics to out-of-band
//!   publication channels (content-addressed cache and store entries
//!   that flow between threads through the filesystem), and
//!   [`atomic_access`] records accesses to relaxed atomic counters —
//!   exempt from race checks (atomics cannot data-race) but present in
//!   the access inventory.
//!
//! ## Race verdicts
//!
//! Races come from the vector clocks only: two accesses to the same
//! `(name, instance)` cell, at least one a write, with neither
//! ordered before the other. The Eraser lockset (the intersection of
//! lock names held across all accesses to a cell) is advisory — an
//! empty lockset on a multi-threaded cell is reported as a note, not
//! a race, because happens-before already separates false alarms
//! (fork/join hand-off, publication) from real ones.
//!
//! ## Arming
//!
//! Disarmed, every entry point is one relaxed load of [`ARMED`] and a
//! predictable branch. [`install`] resets the shadow state, flips the
//! flag and returns an RAII [`Armed`] guard holding a process-wide
//! exclusivity lock; dropping it disarms. [`Armed::finish`] harvests
//! the [`report::Report`] (races, dynamic lock graph, lockset notes,
//! access inventory).

pub mod locks;
pub mod report;
pub mod vc;

pub use locks::{TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedRwLock};
pub use report::{Edge, Race, Report, VarStat};

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vc::VectorClock;

/// Fast-path flag: every instrumentation entry point returns
/// immediately while false.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Lock-instance slots are handed out once per `Tracked*` instance
/// and never reused, so a stale guard from a previous arm session can
/// release without touching a fresh session's state.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(1);

/// Is the sanitizer armed? One relaxed load — the disarmed fast path.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Claim a fresh lock-instance slot (used by the `Tracked*` wrappers).
pub(crate) fn next_slot() -> usize {
    NEXT_SLOT.fetch_add(1, Ordering::Relaxed)
}

/// Acquisition mode, for the held-lock stack and reader semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Exclusive: `Mutex::lock` / `RwLock::write`.
    Write,
    /// Shared: `RwLock::read`.
    Read,
}

/// One entry in a thread's held-lock stack.
#[derive(Debug, Clone)]
struct Held {
    slot: usize,
    name: &'static str,
}

/// Per-thread shadow state.
#[derive(Debug, Default)]
struct ThreadState {
    vc: VectorClock,
    held: Vec<Held>,
}

/// Per-`(name, instance)` shadow cell for annotated shared state.
#[derive(Debug, Default)]
struct VarState {
    /// Epoch of the last write: `(tid, clk)` plus its source location.
    write: Option<(usize, u64)>,
    write_loc: String,
    /// Reads since the last write: tid → (clk, location).
    reads: BTreeMap<usize, (u64, String)>,
    /// Eraser lockset: intersection of lock names held across all
    /// accesses. `None` until the first access.
    lockset: Option<BTreeSet<&'static str>>,
    /// Threads that have touched this cell.
    threads: BTreeSet<usize>,
    /// Whether any access was a write.
    written: bool,
    /// Marked by [`atomic_access`]: exempt from checks.
    atomic: bool,
    accesses: u64,
}

/// A fork region in flight: the opener's snapshot (joined by every
/// task) and the accumulator of finished tasks (joined at the join).
#[derive(Debug, Default)]
struct Region {
    snapshot: VectorClock,
    joined: VectorClock,
}

/// Everything the sanitizer knows, reset on every [`install`].
#[derive(Debug, Default)]
struct Global {
    /// Arm-session generation; thread-local tids are revalidated
    /// against it so a tid from a previous session re-registers.
    session: u64,
    threads: Vec<ThreadState>,
    /// Lock slot → the lock's vector clock.
    locks: BTreeMap<usize, VectorClock>,
    vars: BTreeMap<(String, u64), VarState>,
    /// Release/acquire publication points for [`sync_write`]/[`sync_read`].
    sync_vars: BTreeMap<(String, u64), VectorClock>,
    regions: BTreeMap<u64, Region>,
    next_region: u64,
    /// Dynamic lock graph: (held, acquired) → (witness, count).
    edges: BTreeMap<(String, String), (String, u64)>,
    races: Vec<Race>,
    race_keys: BTreeSet<String>,
}

fn global() -> &'static Mutex<Global> {
    static STATE: OnceLock<Mutex<Global>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(Global::default()))
}

fn exclusivity() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn lock_global() -> MutexGuard<'static, Global> {
    // Sanitizer bookkeeping never unwinds mid-section, so poison here
    // means a bug in the sanitizer itself; the state stays coherent.
    global().lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// (session, tid): tid is valid only while session matches the
    /// global generation.
    static TID: std::cell::Cell<(u64, usize)> = const { std::cell::Cell::new((0, 0)) };
}

/// The calling thread's tid for this session, registering it (with
/// the session birth clock) on first contact.
fn cur_tid(g: &mut Global) -> usize {
    TID.with(|c| {
        let (sess, t) = c.get();
        if sess == g.session {
            t
        } else {
            let t = g.threads.len();
            let mut vc = VectorClock::new();
            vc.set(t, 1);
            g.threads.push(ThreadState {
                vc,
                held: Vec::new(),
            });
            c.set((g.session, t));
            t
        }
    })
}

fn push_race(g: &mut Global, race: Race) {
    let key = format!(
        "{}|{}|{}|{}",
        race.kind, race.name, race.first_loc, race.second_loc
    );
    if g.race_keys.insert(key) {
        g.races.push(race);
    }
}

// ---------------------------------------------------------------------------
// Lock bookkeeping (called by the Tracked* wrappers)
// ---------------------------------------------------------------------------

/// After the real acquire: join the lock's clock, record dynamic lock
/// edges from everything already held, push the held entry.
pub(crate) fn on_acquire(slot: usize, name: &'static str, _mode: Mode, loc: &Location<'_>) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let lvc = g.locks.entry(slot).or_default().clone();
    g.threads[t].vc.join(&lvc);
    let held: Vec<&'static str> = g.threads[t].held.iter().map(|h| h.name).collect();
    for h in held {
        if h != name {
            let e = g
                .edges
                .entry((h.to_string(), name.to_string()))
                .or_insert_with(|| (format!("{}:{}", loc.file(), loc.line()), 0));
            e.1 += 1;
        }
    }
    g.threads[t].held.push(Held { slot, name });
}

/// Before the real release: publish the holder's clock into the lock,
/// pop the held entry, start a new epoch for the thread.
///
/// Writers could assign the lock clock (they joined at acquire, so
/// T ≥ L); a join is equivalent there and also correct for concurrent
/// readers, so both modes use it. Reader releases joining the same
/// clock is deliberately conservative: it adds reader→reader ordering
/// that the real `RwLock` does not provide, which can only mask races
/// on reader-side state, never invent them.
pub(crate) fn on_release(slot: usize, _mode: Mode) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    if let Some(pos) = g.threads[t].held.iter().rposition(|h| h.slot == slot) {
        g.threads[t].held.remove(pos);
    }
    let tvc = g.threads[t].vc.clone();
    g.locks.entry(slot).or_default().join(&tvc);
    g.threads[t].vc.bump(t);
}

// ---------------------------------------------------------------------------
// Shared-state annotations
// ---------------------------------------------------------------------------

/// A stable instance id for annotated shared state: the address of
/// the owning object, so two live objects never collide. A freed
/// object's address can be reused by a later allocation — owners of
/// short-lived annotated cells must [`retire`] them on `Drop` so the
/// successor does not inherit the dead object's epoch history.
pub fn obj_id<T>(r: &T) -> usize {
    r as *const T as usize
}

/// FNV-1a of a dynamic key (cache/store content hashes) for use as a
/// [`sync_write`]/[`sync_read`] instance id.
pub fn key_id(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

fn access(name: &'static str, inst: usize, is_write: bool, loc: &Location<'_>) {
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let tvc = g.threads[t].vc.clone();
    let here = format!("{}:{}", loc.file(), loc.line());
    let held: BTreeSet<&'static str> = g.threads[t].held.iter().map(|h| h.name).collect();
    let key = (name.to_string(), inst as u64);
    let var = g.vars.entry(key.clone()).or_default();
    var.accesses += 1;
    var.threads.insert(t);
    var.lockset = Some(match var.lockset.take() {
        None => held,
        Some(prev) => prev.intersection(&held).copied().collect(),
    });
    let mut found: Vec<Race> = Vec::new();
    if let Some((wt, wc)) = var.write {
        if wt != t && !tvc.covers(wt, wc) {
            found.push(Race {
                kind: if is_write {
                    "write-write"
                } else {
                    "write-read"
                }
                .to_string(),
                name: name.to_string(),
                instance: inst as u64,
                first_loc: var.write_loc.clone(),
                second_loc: here.clone(),
                first_thread: wt,
                second_thread: t,
            });
        }
    }
    if is_write {
        for (&rt, (rc, rloc)) in &var.reads {
            if rt != t && !tvc.covers(rt, *rc) {
                found.push(Race {
                    kind: "read-write".to_string(),
                    name: name.to_string(),
                    instance: inst as u64,
                    first_loc: rloc.clone(),
                    second_loc: here.clone(),
                    first_thread: rt,
                    second_thread: t,
                });
            }
        }
        var.written = true;
        var.write = Some((t, tvc.get(t)));
        var.write_loc = here;
        var.reads.clear();
    } else {
        var.reads.insert(t, (tvc.get(t), here));
    }
    for r in found {
        push_race(&mut g, r);
    }
}

/// Record a read of annotated shared state. Place it inside the
/// critical section when the state is lock-guarded, so the Eraser
/// lockset sees the guard. A write unordered with this read (by the
/// vector clocks) is a race.
#[track_caller]
pub fn shared_read(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    access(name, inst, false, Location::caller());
}

/// Retire the shadow cell `(name, inst)`: call from the owning
/// object's `Drop`. Ownership at drop time proves no other live
/// references exist, so every real access happens-before this point;
/// clearing the epoch history is therefore sound. Without retirement
/// a later allocation of the same shape at the reused address would
/// inherit the dead object's history and report phantom races (an
/// ABA on the address-derived instance id). The access/thread
/// inventory survives for the report.
pub fn retire(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    if let Some(var) = g.vars.get_mut(&(name.to_string(), inst as u64)) {
        var.write = None;
        var.write_loc.clear();
        var.reads.clear();
    }
}

/// Record a write of annotated shared state. Any unordered previous
/// access is a race.
#[track_caller]
pub fn shared_write(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    access(name, inst, true, Location::caller());
}

/// Release semantics: publish the calling thread's clock into the
/// `(name, inst)` publication point. Use at out-of-band hand-off
/// points the sanitizer cannot see (content-addressed cache/store
/// entries published through the filesystem).
pub fn sync_write(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let tvc = g.threads[t].vc.clone();
    g.sync_vars
        .entry((name.to_string(), inst as u64))
        .or_default()
        .join(&tvc);
    g.threads[t].vc.bump(t);
}

/// Acquire semantics: join the `(name, inst)` publication point into
/// the calling thread's clock. A no-op if nothing was published.
pub fn sync_read(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let key = (name.to_string(), inst as u64);
    if let Some(pvc) = g.sync_vars.get(&key).cloned() {
        g.threads[t].vc.join(&pvc);
    }
}

/// Record an access to a relaxed atomic (metrics counters). Atomics
/// cannot data-race, so this is inventory only: the cell is counted
/// and marked exempt, and no happens-before edge is created (relaxed
/// atomics provide none in the real memory model either).
pub fn atomic_access(name: &'static str, inst: usize) {
    if !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let var = g.vars.entry((name.to_string(), inst as u64)).or_default();
    var.accesses += 1;
    var.threads.insert(t);
    var.atomic = true;
}

// ---------------------------------------------------------------------------
// Fork/join happens-before
// ---------------------------------------------------------------------------

/// A handle to a fork region. `Copy` so the vendored rayon pool and
/// scoped-thread spawners can pass it into task closures freely. The
/// zero token (returned while disarmed) makes every operation a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForkToken(u64);

impl ForkToken {
    /// The inert token: all fork/join operations ignore it.
    pub const NONE: ForkToken = ForkToken(0);
}

/// Open a fork region: snapshot the opener's clock (tasks will join
/// it) and start a new opener epoch.
pub fn fork() -> ForkToken {
    if !enabled() {
        return ForkToken::NONE;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    g.next_region += 1;
    let id = g.next_region;
    let snapshot = g.threads[t].vc.clone();
    g.regions.insert(
        id,
        Region {
            snapshot,
            joined: VectorClock::new(),
        },
    );
    g.threads[t].vc.bump(t);
    ForkToken(id)
}

/// A forked task begins on the calling thread: the task happens after
/// the fork point.
pub fn task_start(tok: ForkToken) {
    if tok.0 == 0 || !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    if let Some(snapshot) = g.regions.get(&tok.0).map(|r| r.snapshot.clone()) {
        g.threads[t].vc.join(&snapshot);
    }
}

/// A forked task ends on the calling thread: fold its clock into the
/// region accumulator so the join point happens after it.
pub fn task_end(tok: ForkToken) {
    if tok.0 == 0 || !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    let tvc = g.threads[t].vc.clone();
    if let Some(r) = g.regions.get_mut(&tok.0) {
        r.joined.join(&tvc);
    }
    g.threads[t].vc.bump(t);
}

/// Close a fork region on the opener: the opener happens after every
/// task that called [`task_end`].
pub fn join(tok: ForkToken) {
    if tok.0 == 0 || !enabled() {
        return;
    }
    let mut g = lock_global();
    let t = cur_tid(&mut g);
    if let Some(r) = g.regions.remove(&tok.0) {
        g.threads[t].vc.join(&r.joined);
    }
}

/// A labeled access for a claimed parallel chunk: chunk `c` of the
/// region behind `tok` is recorded as a write to the cell
/// `("rayon::chunk", region << 16 | c)` — two threads running the
/// same chunk (a claim bug) surface as a write-write race.
#[track_caller]
pub fn chunk_claim(tok: ForkToken, c: usize) {
    if tok.0 == 0 || !enabled() {
        return;
    }
    access(
        "rayon::chunk",
        ((tok.0 as usize) << 16) | (c & 0xffff),
        true,
        Location::caller(),
    );
}

// ---------------------------------------------------------------------------
// Arming
// ---------------------------------------------------------------------------

/// RAII guard for an armed sanitizer. Holding it excludes every other
/// would-be installer (concurrent sessions would share shadow state);
/// dropping it disarms, so a panicking test cannot leak an armed
/// sanitizer into its neighbours.
pub struct Armed {
    _exclusive: MutexGuard<'static, ()>,
}

impl Armed {
    /// Snapshot the current report without disarming.
    pub fn report(&self) -> Report {
        snapshot_report()
    }

    /// Harvest the final report and disarm.
    pub fn finish(self) -> Report {
        let r = self.report();
        drop(self);
        r
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
    }
}

/// Arm the sanitizer: reset the shadow state and flip the fast-path
/// flag. Blocks until any previously armed session drops its guard.
pub fn install() -> Armed {
    let exclusive = exclusivity().lock().unwrap_or_else(PoisonError::into_inner);
    {
        let mut g = lock_global();
        let session = g.session + 1;
        *g = Global {
            session,
            ..Global::default()
        };
    }
    ARMED.store(true, Ordering::SeqCst);
    Armed {
        _exclusive: exclusive,
    }
}

fn snapshot_report() -> Report {
    let g = lock_global();
    let mut vars: BTreeMap<String, VarStat> = BTreeMap::new();
    let mut notes: Vec<String> = Vec::new();
    for ((name, _inst), v) in &g.vars {
        let stat = vars.entry(name.clone()).or_insert_with(|| VarStat {
            name: name.clone(),
            instances: 0,
            accesses: 0,
            threads: 0,
            atomic: v.atomic,
            lockset: Vec::new(),
        });
        stat.instances += 1;
        stat.accesses += v.accesses;
        stat.threads = stat.threads.max(v.threads.len());
        if let Some(ls) = &v.lockset {
            stat.lockset = ls.iter().map(|s| s.to_string()).collect();
            if ls.is_empty() && v.written && v.threads.len() > 1 && !v.atomic {
                let note = format!(
                    "lockset empty: `{name}` written by {} thread(s) with no common lock \
                     (ordering comes from fork/join or publication edges)",
                    v.threads.len()
                );
                if !notes.contains(&note) {
                    notes.push(note);
                }
            }
        }
    }
    Report {
        races: g.races.clone(),
        edges: g
            .edges
            .iter()
            .map(|((from, to), (witness, count))| Edge {
                from: from.clone(),
                to: to.clone(),
                witness: witness.clone(),
                count: *count,
            })
            .collect(),
        lockset_notes: notes,
        threads: g.threads.len(),
        regions: g.next_region,
        vars: vars.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // The sanitizer is process-global; serialize tests that arm it so
    // assertions about the disarmed state cannot race a concurrent
    // install (the exclusivity lock only serializes armed windows).
    fn serial() -> MutexGuard<'static, ()> {
        static SERIAL: Mutex<()> = Mutex::new(());
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_everything_is_inert() {
        let _serial = serial();
        assert!(!enabled());
        shared_write("x", 1);
        shared_read("x", 1);
        let tok = fork();
        assert_eq!(tok, ForkToken::NONE);
        task_start(tok);
        task_end(tok);
        join(tok);
        // Nothing recorded: arm and check the state is empty.
        let armed = install();
        let r = armed.finish();
        assert!(r.races.is_empty());
        assert!(r.vars.is_empty());
        assert!(r.edges.is_empty());
    }

    #[test]
    fn unsynchronized_writes_race() {
        let _serial = serial();
        let armed = install();
        let done = std::thread::spawn(|| shared_write("cell", 7))
            .join()
            .is_ok();
        assert!(done);
        shared_write("cell", 7);
        let r = armed.finish();
        assert_eq!(r.races.len(), 1, "{:?}", r.races);
        assert_eq!(r.races[0].kind, "write-write");
        assert_eq!(r.races[0].name, "cell");
    }

    #[test]
    fn fork_join_orders_accesses() {
        let _serial = serial();
        let armed = install();
        shared_write("fj", 1);
        let tok = fork();
        let handle = std::thread::spawn(move || {
            task_start(tok);
            shared_write("fj", 1);
            task_end(tok);
        });
        assert!(handle.join().is_ok());
        join(tok);
        shared_read("fj", 1);
        let r = armed.finish();
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn mutex_orders_accesses_and_write_without_lock_races() {
        let _serial = serial();
        let armed = install();
        let m: Arc<TrackedMutex<u64>> = Arc::new(TrackedMutex::new("test::cell_lock", 0));
        let inst = 99;
        {
            let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
            *g += 1;
            shared_write("locked_cell", inst);
        }
        let m2 = Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            let mut g = m2.lock().unwrap_or_else(PoisonError::into_inner);
            *g += 1;
            shared_write("locked_cell", inst);
        });
        assert!(handle.join().is_ok());
        let r = armed.report();
        assert!(r.races.is_empty(), "{:?}", r.races);
        // Now an unlocked write from a third thread: unordered.
        let handle = std::thread::spawn(move || shared_write("locked_cell", inst));
        assert!(handle.join().is_ok());
        let r = armed.finish();
        assert_eq!(r.races.len(), 1, "{:?}", r.races);
    }

    #[test]
    fn nested_acquire_records_dynamic_edge() {
        let _serial = serial();
        let armed = install();
        let a = TrackedMutex::new("test::outer", ());
        let b = TrackedMutex::new("test::inner", ());
        {
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        }
        let r = armed.finish();
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "test::outer");
        assert_eq!(r.edges[0].to, "test::inner");
        assert_eq!(r.edges[0].count, 1);
    }

    #[test]
    fn sync_publication_orders_cross_thread_handoff() {
        let _serial = serial();
        let armed = install();
        shared_write("published", 3);
        sync_write("chan", 42);
        let handle = std::thread::spawn(|| {
            sync_read("chan", 42);
            shared_read("published", 3);
        });
        assert!(handle.join().is_ok());
        let r = armed.finish();
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn atomic_cells_are_exempt() {
        let _serial = serial();
        let armed = install();
        let handle = std::thread::spawn(|| atomic_access("ctr", 5));
        assert!(handle.join().is_ok());
        atomic_access("ctr", 5);
        let r = armed.finish();
        assert!(r.races.is_empty());
        assert_eq!(r.vars.len(), 1);
        assert!(r.vars[0].atomic);
        assert_eq!(r.vars[0].accesses, 2);
    }

    #[test]
    fn double_claimed_chunk_is_a_race() {
        let _serial = serial();
        let armed = install();
        let tok = fork();
        let h1 = std::thread::spawn(move || {
            task_start(tok);
            chunk_claim(tok, 4);
            task_end(tok);
        });
        assert!(h1.join().is_ok());
        let h2 = std::thread::spawn(move || {
            task_start(tok);
            chunk_claim(tok, 4);
            task_end(tok);
        });
        assert!(h2.join().is_ok());
        join(tok);
        let r = armed.finish();
        assert_eq!(r.races.len(), 1, "{:?}", r.races);
        assert_eq!(r.races[0].name, "rayon::chunk");
    }

    #[test]
    fn lockset_note_reported_for_fork_join_state() {
        let _serial = serial();
        let armed = install();
        let tok = fork();
        let h = std::thread::spawn(move || {
            task_start(tok);
            shared_write("no_lock_cell", 8);
            task_end(tok);
        });
        assert!(h.join().is_ok());
        join(tok);
        shared_write("no_lock_cell", 8);
        let r = armed.finish();
        assert!(r.races.is_empty(), "{:?}", r.races);
        assert_eq!(r.lockset_notes.len(), 1, "{:?}", r.lockset_notes);
    }
}
