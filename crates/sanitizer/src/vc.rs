//! Vector clocks over sanitizer thread ids.
//!
//! A clock maps thread id → logical time. Thread ids are the small
//! dense indices handed out by the sanitizer's thread registry, so a
//! plain growable `Vec<u64>` (missing slots read as 0) beats a map:
//! join and comparison are straight component loops.

/// A vector clock: component `i` is the last observed logical time of
/// sanitizer thread `i`. Absent components are implicitly zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> VectorClock {
        VectorClock { slots: Vec::new() }
    }

    /// Component `i`, zero if never set.
    pub fn get(&self, i: usize) -> u64 {
        self.slots.get(i).copied().unwrap_or(0)
    }

    /// Set component `i`, growing the clock as needed.
    pub fn set(&mut self, i: usize, v: u64) {
        if self.slots.len() <= i {
            self.slots.resize(i + 1, 0);
        }
        self.slots[i] = v;
    }

    /// Advance component `i` by one (a new epoch for thread `i`).
    pub fn bump(&mut self, i: usize) {
        let v = self.get(i) + 1;
        self.set(i, v);
    }

    /// Pointwise maximum: after `self.join(o)`, everything ordered
    /// before `o` is also ordered before `self`.
    pub fn join(&mut self, other: &VectorClock) {
        for (i, &v) in other.slots.iter().enumerate() {
            if v > self.get(i) {
                self.set(i, v);
            }
        }
    }

    /// Does the epoch `(tid, clk)` happen before (or equal) this
    /// clock? This is the FastTrack-style race test: an earlier access
    /// by thread `tid` at its local time `clk` is ordered before the
    /// current access iff the current thread's clock has absorbed it.
    pub fn covers(&self, tid: usize, clk: u64) -> bool {
        clk <= self.get(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock_covers_nothing_but_zero() {
        let vc = VectorClock::new();
        assert!(vc.covers(0, 0));
        assert!(vc.covers(7, 0));
        assert!(!vc.covers(0, 1));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn bump_advances_one_component() {
        let mut a = VectorClock::new();
        a.bump(4);
        a.bump(4);
        assert_eq!(a.get(4), 2);
        assert_eq!(a.get(3), 0);
    }

    #[test]
    fn covers_tracks_join() {
        let mut a = VectorClock::new();
        assert!(!a.covers(1, 2));
        let mut b = VectorClock::new();
        b.set(1, 2);
        a.join(&b);
        assert!(a.covers(1, 2));
        assert!(!a.covers(1, 3));
    }
}
