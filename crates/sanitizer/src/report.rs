//! The sanitizer's teardown artifacts: the race list, the dynamic
//! lock-acquisition graph, the Eraser lockset advisories, and the
//! annotated-state access inventory — renderable as JSON, SARIF
//! 2.1.0, and Graphviz DOT (the dynamic twin of
//! `watercool lint --emit-lockgraph`).

use serde_json::Value;
use std::collections::BTreeMap;

/// One detected race: two accesses to the same shadow cell, at least
/// one a write, unordered by the vector clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// `write-write`, `read-write` or `write-read` (first kind named
    /// first in program order of discovery).
    pub kind: String,
    /// The annotated cell name (e.g. `serve::ModelPool.entries`).
    pub name: String,
    /// Instance id the cell was keyed by.
    pub instance: u64,
    /// `file:line` of the earlier access.
    pub first_loc: String,
    /// `file:line` of the later access.
    pub second_loc: String,
    /// Sanitizer tid of the earlier access.
    pub first_thread: usize,
    /// Sanitizer tid of the later access.
    pub second_thread: usize,
}

/// One dynamic lock-graph edge: `from` was held when `to` was
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Name of the held lock.
    pub from: String,
    /// Name of the acquired lock.
    pub to: String,
    /// `file:line` of the first acquisition that created the edge.
    pub witness: String,
    /// How many times the edge was exercised.
    pub count: u64,
}

/// Access inventory for one annotated cell name (aggregated over
/// instances).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarStat {
    /// Cell name.
    pub name: String,
    /// Distinct instances seen.
    pub instances: u64,
    /// Total accesses across instances.
    pub accesses: u64,
    /// Max distinct threads touching any one instance.
    pub threads: usize,
    /// Relaxed-atomic cell (exempt from race checks).
    pub atomic: bool,
    /// Final Eraser lockset (lock names held at every access).
    pub lockset: Vec<String>,
}

/// Everything harvested from an armed session.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Detected races (empty on a clean run).
    pub races: Vec<Race>,
    /// The dynamic lock-acquisition graph.
    pub edges: Vec<Edge>,
    /// Advisory notes: multi-thread written cells whose lockset went
    /// empty (ordering proven by fork/join or publication instead).
    pub lockset_notes: Vec<String>,
    /// Threads registered during the session.
    pub threads: usize,
    /// Fork regions opened during the session.
    pub regions: u64,
    /// Access inventory per annotated cell name.
    pub vars: Vec<VarStat>,
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<String, Value>>(),
    )
}

impl Report {
    /// No races detected?
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }

    /// The full report as a JSON value (deterministic key order).
    pub fn to_json(&self) -> Value {
        let races: Vec<Value> = self
            .races
            .iter()
            .map(|r| {
                obj(vec![
                    ("kind", Value::Str(r.kind.clone())),
                    ("name", Value::Str(r.name.clone())),
                    ("instance", Value::U64(r.instance)),
                    ("first", Value::Str(r.first_loc.clone())),
                    ("second", Value::Str(r.second_loc.clone())),
                    ("first_thread", Value::U64(r.first_thread as u64)),
                    ("second_thread", Value::U64(r.second_thread as u64)),
                ])
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                obj(vec![
                    ("from", Value::Str(e.from.clone())),
                    ("to", Value::Str(e.to.clone())),
                    ("witness", Value::Str(e.witness.clone())),
                    ("count", Value::U64(e.count)),
                ])
            })
            .collect();
        let vars: Vec<Value> = self
            .vars
            .iter()
            .map(|v| {
                obj(vec![
                    ("name", Value::Str(v.name.clone())),
                    ("instances", Value::U64(v.instances)),
                    ("accesses", Value::U64(v.accesses)),
                    ("threads", Value::U64(v.threads as u64)),
                    ("atomic", Value::Bool(v.atomic)),
                    (
                        "lockset",
                        Value::Seq(v.lockset.iter().map(|l| Value::Str(l.clone())).collect()),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("races", Value::Seq(races)),
            ("dynamic_lock_edges", Value::Seq(edges)),
            (
                "lockset_notes",
                Value::Seq(
                    self.lockset_notes
                        .iter()
                        .map(|n| Value::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("threads", Value::U64(self.threads as u64)),
            ("regions", Value::U64(self.regions)),
            ("vars", Value::Seq(vars)),
        ])
    }

    /// The dynamic lock graph in the same DOT dialect as the static
    /// `--emit-lockgraph` output, with exercise counts on the edges.
    pub fn dynamic_dot(&self) -> String {
        let mut out = String::from("digraph lockorder_dynamic {\n    rankdir=LR;\n");
        let mut nodes: Vec<&str> = Vec::new();
        for e in &self.edges {
            for n in [e.from.as_str(), e.to.as_str()] {
                if !nodes.contains(&n) {
                    nodes.push(n);
                }
            }
        }
        nodes.sort_unstable();
        for n in nodes {
            out.push_str(&format!("    \"{n}\";\n"));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "    \"{}\" -> \"{}\" [label=\"{} (x{})\"];\n",
                e.from, e.to, e.witness, e.count
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Races as a SARIF 2.1.0 log (one result per race, rule id
    /// `SAN-RACE`), mirroring the lint SARIF shape so both feed the
    /// same viewers.
    pub fn to_sarif(&self) -> Value {
        let results: Vec<Value> = self
            .races
            .iter()
            .map(|r| {
                let (file, line) = split_loc(&r.second_loc);
                obj(vec![
                    ("ruleId", Value::Str("SAN-RACE".to_string())),
                    ("level", Value::Str("error".to_string())),
                    (
                        "message",
                        obj(vec![(
                            "text",
                            Value::Str(format!(
                                "{} race on `{}`: {} (thread {}) vs {} (thread {})",
                                r.kind,
                                r.name,
                                r.first_loc,
                                r.first_thread,
                                r.second_loc,
                                r.second_thread
                            )),
                        )]),
                    ),
                    (
                        "locations",
                        Value::Seq(vec![obj(vec![(
                            "physicalLocation",
                            obj(vec![
                                (
                                    "artifactLocation",
                                    obj(vec![("uri", Value::Str(file.to_string()))]),
                                ),
                                ("region", obj(vec![("startLine", Value::U64(line))])),
                            ]),
                        )])]),
                    ),
                ])
            })
            .collect();
        obj(vec![
            (
                "$schema",
                Value::Str(
                    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                        .to_string(),
                ),
            ),
            ("version", Value::Str("2.1.0".to_string())),
            (
                "runs",
                Value::Seq(vec![obj(vec![
                    (
                        "tool",
                        obj(vec![(
                            "driver",
                            obj(vec![
                                ("name", Value::Str("immersion-sanitizer".to_string())),
                                (
                                    "informationUri",
                                    Value::Str(
                                        "https://github.com/example/water-immersion".to_string(),
                                    ),
                                ),
                            ]),
                        )]),
                    ),
                    ("results", Value::Seq(results)),
                ])]),
            ),
        ])
    }
}

/// Split `file:line` (line defaults to 1 when absent or unparsable).
fn split_loc(loc: &str) -> (&str, u64) {
    match loc.rsplit_once(':') {
        Some((file, line)) => (file, line.parse().unwrap_or(1)),
        None => (loc, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            races: vec![Race {
                kind: "write-write".to_string(),
                name: "cell".to_string(),
                instance: 7,
                first_loc: "crates/x/src/a.rs:10".to_string(),
                second_loc: "crates/x/src/b.rs:20".to_string(),
                first_thread: 0,
                second_thread: 1,
            }],
            edges: vec![Edge {
                from: "serve::SingleFlight.slots".to_string(),
                to: "serve::joiners".to_string(),
                witness: "crates/serve/src/flight.rs:75".to_string(),
                count: 3,
            }],
            lockset_notes: vec!["note".to_string()],
            threads: 2,
            regions: 1,
            vars: vec![VarStat {
                name: "cell".to_string(),
                instances: 1,
                accesses: 2,
                threads: 2,
                atomic: false,
                lockset: Vec::new(),
            }],
        }
    }

    #[test]
    fn json_round_trip_has_stable_shape() {
        let v = sample().to_json();
        let txt = serde_json::to_string_pretty(&v).unwrap();
        let back: Value = serde_json::from_str(&txt).unwrap();
        assert_eq!(v, back);
        assert!(txt.contains("dynamic_lock_edges"));
        assert!(txt.contains("write-write"));
    }

    #[test]
    fn dot_lists_nodes_and_labeled_edges() {
        let dot = sample().dynamic_dot();
        assert!(dot.starts_with("digraph lockorder_dynamic"));
        assert!(dot.contains("\"serve::SingleFlight.slots\" -> \"serve::joiners\""));
        assert!(dot.contains("(x3)"));
    }

    #[test]
    fn sarif_carries_one_result_per_race() {
        let v = sample().to_sarif();
        let txt = serde_json::to_string(&v).unwrap();
        assert!(txt.contains("SAN-RACE"));
        assert!(txt.contains("2.1.0"));
        assert!(txt.contains("crates/x/src/b.rs"));
    }

    #[test]
    fn clean_report_is_clean() {
        assert!(Report::default().is_clean());
        assert!(!sample().is_clean());
    }
}
