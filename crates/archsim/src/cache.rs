//! Set-associative cache tag arrays with LRU replacement.
//!
//! Used for both the per-core L1D and the per-tile L2 banks. Only tags
//! are simulated (the simulator is trace-driven; data values never
//! matter), so a "cache" here is a set-indexed array of `(tag, meta)`
//! ways with LRU stamps.

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access<M> {
    /// Line present.
    Hit,
    /// Line absent; no eviction was needed for the fill.
    Miss,
    /// Line absent; filling evicted the returned line address, which
    /// held the returned metadata.
    MissEvict(u64, M),
}

/// One way of a set.
#[derive(Debug, Clone, Copy)]
struct Way<M> {
    tag: u64,
    lru: u64,
    valid: bool,
    meta: M,
}

/// A set-associative tag array holding per-line metadata `M`.
#[derive(Debug, Clone)]
pub struct CacheArray<M: Copy + Default> {
    sets: usize,
    ways: Vec<Way<M>>,
    assoc: usize,
    line_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<M: Copy + Default> CacheArray<M> {
    /// A cache of `size_kib` KiB with `assoc` ways and `line_bytes`
    /// lines.
    ///
    /// # Panics
    /// Panics unless sizes are powers of two and consistent.
    pub fn new(size_kib: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two());
        let lines = size_kib * 1024 / line_bytes;
        assert!(lines as usize >= assoc && assoc >= 1);
        let sets = (lines as usize / assoc).next_power_of_two();
        CacheArray {
            sets,
            ways: vec![
                Way {
                    tag: 0,
                    lru: 0,
                    valid: false,
                    meta: M::default(),
                };
                sets * assoc
            ],
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The line-aligned address of `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        ((line >> self.line_shift) as usize) & (self.sets - 1)
    }

    /// Probe without changing state. Returns the metadata if present.
    pub fn probe(&self, addr: u64) -> Option<M> {
        let line = self.line_of(addr);
        let s = self.set_of(line);
        self.ways[s * self.assoc..(s + 1) * self.assoc]
            .iter()
            .find(|w| w.valid && w.tag == line)
            .map(|w| w.meta)
    }

    /// Access `addr`: on a hit, refresh LRU and return `Hit`; on a
    /// miss, install the line (evicting the LRU way if all ways are
    /// valid) and return `Miss`/`MissEvict`.
    pub fn access(&mut self, addr: u64, meta_on_fill: M) -> Access<M> {
        let line = self.line_of(addr);
        let s = self.set_of(line);
        self.clock += 1;
        let base = s * self.assoc;
        // Hit?
        for w in &mut self.ways[base..base + self.assoc] {
            if w.valid && w.tag == line {
                w.lru = self.clock;
                self.hits += 1;
                return Access::Hit;
            }
        }
        self.misses += 1;
        // Fill: free way, else evict LRU.
        let mut victim = base;
        let mut oldest = u64::MAX;
        for i in base..base + self.assoc {
            if !self.ways[i].valid {
                victim = i;
                break;
            }
            if self.ways[i].lru < oldest {
                oldest = self.ways[i].lru;
                victim = i;
            }
        }
        let evicted = self.ways[victim]
            .valid
            .then_some((self.ways[victim].tag, self.ways[victim].meta));
        self.ways[victim] = Way {
            tag: line,
            lru: self.clock,
            valid: true,
            meta: meta_on_fill,
        };
        match evicted {
            Some((e, m)) => Access::MissEvict(e, m),
            None => Access::Miss,
        }
    }

    /// Update the metadata of a resident line. Returns false if absent.
    pub fn update_meta(&mut self, addr: u64, meta: M) -> bool {
        let line = self.line_of(addr);
        let s = self.set_of(line);
        for w in &mut self.ways[s * self.assoc..(s + 1) * self.assoc] {
            if w.valid && w.tag == line {
                w.meta = meta;
                return true;
            }
        }
        false
    }

    /// Invalidate a line. Returns its metadata if it was present.
    pub fn invalidate(&mut self, addr: u64) -> Option<M> {
        let line = self.line_of(addr);
        let s = self.set_of(line);
        for w in &mut self.ways[s * self.assoc..(s + 1) * self.assoc] {
            if w.valid && w.tag == line {
                w.valid = false;
                return Some(w.meta);
            }
        }
        None
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1] (zero when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c: CacheArray<()> = CacheArray::new(4, 2, 64);
        assert_eq!(c.access(0x1000, ()), Access::Miss);
        assert_eq!(c.access(0x1000, ()), Access::Hit);
        assert_eq!(c.access(0x1004, ()), Access::Hit, "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, 64B lines, 4 KiB => 32 sets. Conflict three lines in
        // one set: set stride = 32*64 = 2048 bytes.
        let mut c: CacheArray<()> = CacheArray::new(4, 2, 64);
        let (a, b, d) = (0x0, 0x800 * 4, 0x800 * 8);
        assert_eq!(c.access(a, ()), Access::Miss);
        assert_eq!(c.access(b, ()), Access::Miss);
        c.access(a, ()); // refresh a: b is now LRU
        match c.access(d, ()) {
            Access::MissEvict(e, ()) => assert_eq!(e, b),
            x => panic!("expected eviction, got {x:?}"),
        }
        assert_eq!(c.access(a, ()), Access::Hit);
        assert!(matches!(c.access(b, ()), Access::MissEvict(..)));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c: CacheArray<u8> = CacheArray::new(4, 2, 64);
        c.access(0x40, 7);
        assert_eq!(c.probe(0x40), Some(7));
        assert_eq!(c.probe(0x80), None);
        assert_eq!(c.hits(), 0, "probe must not count");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c: CacheArray<u8> = CacheArray::new(4, 2, 64);
        c.access(0x40, 3);
        assert_eq!(c.invalidate(0x40), Some(3));
        assert_eq!(c.probe(0x40), None);
        assert_eq!(c.invalidate(0x40), None);
    }

    #[test]
    fn update_meta_works_only_when_present() {
        let mut c: CacheArray<u8> = CacheArray::new(4, 2, 64);
        c.access(0x40, 1);
        assert!(c.update_meta(0x40, 9));
        assert_eq!(c.probe(0x40), Some(9));
        assert!(!c.update_meta(0x1_0000, 9));
    }

    #[test]
    fn working_set_behaviour() {
        // A working set that fits has ~perfect reuse hit rate; one that
        // is 4x the cache thrashes.
        let mut small: CacheArray<()> = CacheArray::new(64, 8, 64); // 64 KiB
        for _ in 0..4 {
            for a in (0..32 * 1024u64).step_by(64) {
                small.access(a, ());
            }
        }
        assert!(small.hit_rate() > 0.7, "fit: {}", small.hit_rate());

        let mut big: CacheArray<()> = CacheArray::new(64, 8, 64);
        for _ in 0..4 {
            for a in (0..256 * 1024u64).step_by(64) {
                big.access(a, ());
            }
        }
        assert!(big.hit_rate() < 0.1, "thrash: {}", big.hit_rate());
    }

    #[test]
    fn line_alignment() {
        let c: CacheArray<()> = CacheArray::new(4, 2, 64);
        assert_eq!(c.line_of(0x1234), 0x1200);
        assert_eq!(c.line_of(0x1240), 0x1240);
    }
}
