//! The MOESI directory protocol (Table 1: "Protocol: MOESI directory").
//!
//! Private L1 data caches are kept coherent by directories co-located
//! with the distributed shared L2 banks (the line's *home*). Three
//! message classes ride three virtual channels:
//!
//! * **Request** (core → home): `GetS`, `GetM`, `PutM`;
//! * **Forward** (home → remote L1): `FwdGetS`, `FwdGetM`, `Inv`;
//! * **Response** (anyone → core/home): `Data`, `InvAck`, `WbAck`,
//!   `OwnerDone`.
//!
//! The home serialises transactions per line (a *blocking* directory):
//! requests arriving for a busy line queue at the home and are replayed
//! in arrival order. That design removes the transient-state explosion
//! of a full MOESI implementation while preserving its message counts,
//! latencies and sharing behaviour — the quantities the evaluation
//! depends on. One genuine race remains — a forward chasing a line the
//! owner is in the middle of evicting — and is handled the way real
//! protocols do: the owner keeps evicted-dirty lines in a small
//! writeback buffer until the home acknowledges the `PutM`, so it can
//! still answer forwards from that buffer; the home drops the stale
//! `PutM` of a line whose ownership has since moved.

use serde::{Deserialize, Serialize};

/// L1 line states of MOESI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum L1State {
    /// Shared, read-only.
    #[default]
    S,
    /// Exclusive, clean — silently upgradable to M.
    E,
    /// Owned: dirty but shared; this cache answers forwards.
    O,
    /// Modified: dirty, sole copy.
    M,
}

impl L1State {
    /// Can a load be satisfied locally in this state?
    pub fn readable(self) -> bool {
        true // every valid MOESI state is readable
    }

    /// Can a store be satisfied locally (without a GetM)?
    pub fn writable(self) -> bool {
        matches!(self, L1State::M | L1State::E)
    }

    /// Is the line dirty (must write back on eviction)?
    pub fn dirty(self) -> bool {
        matches!(self, L1State::M | L1State::O)
    }
}

/// Directory entry for one line at its home bank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DirEntry {
    /// The exclusive/dirty owner (a core id), if any (M/O/E at the
    /// owner).
    pub owner: Option<u32>,
    /// Bitmask of cores holding the line in S.
    pub sharers: u64,
}

impl DirEntry {
    /// No cached copies at all.
    pub fn is_idle(&self) -> bool {
        self.owner.is_none() && self.sharers == 0
    }

    /// Add a sharer.
    pub fn add_sharer(&mut self, core: u32) {
        self.sharers |= 1 << core;
    }

    /// Remove a sharer.
    pub fn remove_sharer(&mut self, core: u32) {
        self.sharers &= !(1 << core);
    }

    /// Is `core` recorded as a sharer?
    pub fn is_sharer(&self, core: u32) -> bool {
        self.sharers & (1 << core) != 0
    }

    /// Iterate over sharer core ids.
    pub fn sharer_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..64).filter(|&c| self.sharers & (1 << c) != 0)
    }

    /// Number of sharers.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }
}

/// Protocol messages (payload of a routed packet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgKind {
    /// Read request.
    GetS,
    /// Write/ownership request.
    GetM,
    /// Dirty writeback of an evicted M/O line.
    PutM,
    /// Home asks the owner to supply data to a reader.
    FwdGetS {
        /// The requesting core.
        requester: u32,
    },
    /// Home asks the owner to surrender the line to a writer. The
    /// home has already sent `acks_expected` invalidations whose acks
    /// converge at the requester; the owner copies the count into its
    /// data grant.
    FwdGetM {
        /// The requesting core.
        requester: u32,
        /// Invalidation acks the requester must collect.
        acks_expected: u32,
    },
    /// Home asks a sharer to invalidate; the ack goes to the requester.
    Inv {
        /// The requesting core collecting the acks.
        requester: u32,
    },
    /// Data grant to a requester.
    Data {
        /// State the requester installs the line in.
        to_state: L1State,
        /// Invalidation acks the requester must collect before
        /// proceeding (GetM only).
        acks_expected: u32,
    },
    /// A sharer's invalidation acknowledgement (sent to the requester).
    InvAck,
    /// Home acknowledges a PutM; the evicting core frees its writeback
    /// buffer entry.
    WbAck,
    /// The previous owner tells the home a forward completed, carrying
    /// the directory update (unblocks the line).
    OwnerDone {
        /// How the directory should change.
        update: DirUpdate,
        /// The requester of the forward that completed.
        requester: u32,
    },
}

/// Directory update carried by [`MsgKind::OwnerDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirUpdate {
    /// FwdGetM completed: the requester is the new exclusive owner.
    Transfer,
    /// FwdGetS on a dirty line: the owner downgraded M→O and keeps
    /// ownership; the requester joins the sharers.
    KeepOwnerAddSharer,
    /// FwdGetS on a clean (E) line: the owner downgraded to S; both
    /// the old owner and the requester are sharers now.
    DropOwnerBothShare,
}

impl MsgKind {
    /// Which virtual channel the message rides.
    pub fn class(self) -> crate::noc::MsgClass {
        use crate::noc::MsgClass::*;
        match self {
            MsgKind::GetS | MsgKind::GetM | MsgKind::PutM => Request,
            MsgKind::FwdGetS { .. } | MsgKind::FwdGetM { .. } | MsgKind::Inv { .. } => Forward,
            MsgKind::Data { .. } | MsgKind::InvAck | MsgKind::WbAck | MsgKind::OwnerDone { .. } => {
                Response
            }
        }
    }

    /// Whether the message carries a cache line (5 flits) or is control
    /// (1 flit). `PutM` and `Data` carry data; a `Data` grant for an
    /// upgrading sharer is shrunk to control size by the caller.
    pub fn carries_data(self) -> bool {
        matches!(self, MsgKind::Data { .. } | MsgKind::PutM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noc::MsgClass;

    #[test]
    fn state_predicates() {
        assert!(L1State::M.writable() && L1State::M.dirty());
        assert!(L1State::E.writable() && !L1State::E.dirty());
        assert!(!L1State::S.writable() && !L1State::S.dirty());
        assert!(!L1State::O.writable() && L1State::O.dirty());
        for s in [L1State::S, L1State::E, L1State::O, L1State::M] {
            assert!(s.readable());
        }
    }

    #[test]
    fn dir_entry_sharer_ops() {
        let mut d = DirEntry::default();
        assert!(d.is_idle());
        d.add_sharer(3);
        d.add_sharer(17);
        assert!(d.is_sharer(3) && d.is_sharer(17) && !d.is_sharer(4));
        assert_eq!(d.sharer_count(), 2);
        assert_eq!(d.sharer_ids().collect::<Vec<_>>(), vec![3, 17]);
        d.remove_sharer(3);
        assert!(!d.is_sharer(3));
        assert!(!d.is_idle());
        d.remove_sharer(17);
        assert!(d.is_idle());
    }

    #[test]
    fn message_classes_are_the_three_vcs() {
        assert_eq!(MsgKind::GetS.class(), MsgClass::Request);
        assert_eq!(MsgKind::PutM.class(), MsgClass::Request);
        assert_eq!(MsgKind::Inv { requester: 0 }.class(), MsgClass::Forward);
        assert_eq!(
            MsgKind::FwdGetM {
                requester: 1,
                acks_expected: 0
            }
            .class(),
            MsgClass::Forward
        );
        assert_eq!(MsgKind::InvAck.class(), MsgClass::Response);
        assert_eq!(
            MsgKind::Data {
                to_state: L1State::S,
                acks_expected: 0
            }
            .class(),
            MsgClass::Response
        );
    }

    #[test]
    fn data_sized_messages() {
        assert!(MsgKind::PutM.carries_data());
        assert!(MsgKind::Data {
            to_state: L1State::M,
            acks_expected: 2
        }
        .carries_data());
        assert!(!MsgKind::GetS.carries_data());
        assert!(!MsgKind::InvAck.carries_data());
    }
}
