//! The 3-D mesh network-on-chip.
//!
//! Per chip: a 4×4 mesh of 3-stage wormhole routers (\[RC]\[VSA]\[ST/LT],
//! Table 1) with one virtual channel per message class (request /
//! forward / response — the three-class split that makes the MOESI
//! protocol deadlock-free). Stacked chips are joined by vertical
//! (TSV/TCI) links between corresponding routers; routing is
//! deterministic dimension-order X → Y → Z.
//!
//! Packets are simulated at packet granularity with flit-time link
//! serialisation: each hop waits for its output link's per-class
//! reservation, spends the 3-cycle router pipeline, and then occupies
//! the link for one cycle per flit. This keeps the simulator fast while
//! preserving distance, serialisation and class isolation — see the
//! crate docs for the fidelity discussion.

use crate::config::SystemConfig;
use immersion_desim::{Clock, Time};
use serde::{Deserialize, Serialize};

/// A network endpoint: a tile on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Node {
    /// Chip index (Z coordinate).
    pub chip: u16,
    /// Tile index within the chip's mesh, row-major.
    pub tile: u16,
}

impl Node {
    /// Construct a node.
    pub fn new(chip: usize, tile: usize) -> Node {
        Node {
            chip: chip as u16,
            tile: tile as u16,
        }
    }
}

/// Message class = virtual channel (Table 1: 3 VCs, one per class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgClass {
    /// Requests: GetS / GetM / PutM.
    Request = 0,
    /// Forwards and invalidations from the directory.
    Forward = 1,
    /// Data and acknowledgements.
    Response = 2,
}

/// Output directions of a router.
const DIR_E: usize = 0;
const DIR_W: usize = 1;
const DIR_N: usize = 2;
const DIR_S: usize = 3;
const DIR_UP: usize = 4;
const DIR_DOWN: usize = 5;
const N_DIRS: usize = 6;
const N_CLASSES: usize = 3;

/// Aggregate NoC statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NocStats {
    /// Packets routed.
    pub packets: u64,
    /// Total hops traversed.
    pub hops: u64,
    /// Total flits × hops (link occupancy).
    pub flit_hops: u64,
    /// Total queueing delay waiting for busy links, in picoseconds.
    pub contention_ps: u64,
    /// Vertical (inter-chip) hops.
    pub vertical_hops: u64,
}

/// The mesh interconnect with per-link per-class reservations.
pub struct Mesh {
    cfg: SystemConfig,
    clock: Clock,
    /// `next_free[node][dir][class]`, flattened.
    next_free: Vec<Time>,
    stats: NocStats,
}

impl Mesh {
    /// Build the NoC for a configuration.
    pub fn new(cfg: SystemConfig) -> Mesh {
        let nodes = cfg.chips * cfg.tiles_per_chip();
        Mesh {
            cfg,
            clock: Clock::from_ghz(cfg.freq_ghz),
            next_free: vec![Time::ZERO; nodes * N_DIRS * N_CLASSES],
            stats: NocStats::default(),
        }
    }

    #[inline]
    fn link_index(&self, node: Node, dir: usize, class: MsgClass) -> usize {
        let n = node.chip as usize * self.cfg.tiles_per_chip() + node.tile as usize;
        (n * N_DIRS + dir) * N_CLASSES + class as usize
    }

    /// Coordinates of a tile.
    #[inline]
    fn coords(&self, tile: u16) -> (usize, usize) {
        (
            tile as usize % self.cfg.mesh_x,
            tile as usize / self.cfg.mesh_x,
        )
    }

    /// Number of hops of the dimension-order route (diagnostic).
    pub fn hops(&self, src: Node, dst: Node) -> u64 {
        let (sx, sy) = self.coords(src.tile);
        let (dx, dy) = self.coords(dst.tile);
        (sx.abs_diff(dx) + sy.abs_diff(dy) + (src.chip).abs_diff(dst.chip) as usize) as u64
    }

    /// Route a packet of `flits` flits from `src` to `dst` on `class`,
    /// departing at `now`. Returns the arrival time of the packet tail
    /// at the destination, after contention.
    pub fn route(&mut self, src: Node, dst: Node, class: MsgClass, flits: u64, now: Time) -> Time {
        self.stats.packets += 1;
        let pipeline = self.clock.cycles(self.cfg.router_stages);
        let serialise = self.clock.cycles(flits);

        if src == dst {
            // Local delivery through the ejection port: one pipeline pass.
            return now + pipeline;
        }

        let mut t = now;
        let mut cur = src;
        loop {
            // Dimension-order next hop: X, then Y, then Z.
            let (cx, cy) = self.coords(cur.tile);
            let (dx, dy) = self.coords(dst.tile);
            let (dir, next) = if cx != dx {
                if cx < dx {
                    (DIR_E, Node::new(cur.chip as usize, cur.tile as usize + 1))
                } else {
                    (DIR_W, Node::new(cur.chip as usize, cur.tile as usize - 1))
                }
            } else if cy != dy {
                if cy < dy {
                    (
                        DIR_N,
                        Node::new(cur.chip as usize, cur.tile as usize + self.cfg.mesh_x),
                    )
                } else {
                    (
                        DIR_S,
                        Node::new(cur.chip as usize, cur.tile as usize - self.cfg.mesh_x),
                    )
                }
            } else if cur.chip != dst.chip {
                if cur.chip < dst.chip {
                    (DIR_UP, Node::new(cur.chip as usize + 1, cur.tile as usize))
                } else {
                    (
                        DIR_DOWN,
                        Node::new(cur.chip as usize - 1, cur.tile as usize),
                    )
                }
            } else {
                break;
            };

            let li = self.link_index(cur, dir, class);
            let free_at = self.next_free[li];
            let start = if free_at > t { free_at } else { t };
            self.stats.contention_ps += start.saturating_sub(t).as_ps();
            // Router pipeline, then the link is held for the packet's
            // flits (wormhole serialisation).
            let mut depart = start + pipeline;
            if dir == DIR_UP || dir == DIR_DOWN {
                depart += self.clock.cycles(self.cfg.vertical_hop_cycles);
                self.stats.vertical_hops += 1;
            }
            let tail = depart + serialise;
            self.next_free[li] = tail;
            self.stats.hops += 1;
            self.stats.flit_hops += flits;
            t = tail;
            cur = next;
        }
        t
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// The clock this mesh runs on.
    pub fn clock(&self) -> Clock {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(chips: usize, ghz: f64) -> Mesh {
        Mesh::new(SystemConfig::baseline(chips, ghz))
    }

    #[test]
    fn hop_counts() {
        let m = mesh(2, 2.0);
        assert_eq!(m.hops(Node::new(0, 0), Node::new(0, 0)), 0);
        assert_eq!(m.hops(Node::new(0, 0), Node::new(0, 3)), 3);
        assert_eq!(m.hops(Node::new(0, 0), Node::new(0, 15)), 6);
        assert_eq!(m.hops(Node::new(0, 0), Node::new(1, 0)), 1);
        assert_eq!(m.hops(Node::new(0, 5), Node::new(1, 10)), 3);
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut m = mesh(1, 2.0);
        let t1 = m.route(
            Node::new(0, 0),
            Node::new(0, 1),
            MsgClass::Request,
            1,
            Time::ZERO,
        );
        let mut m = mesh(1, 2.0);
        let t3 = m.route(
            Node::new(0, 0),
            Node::new(0, 3),
            MsgClass::Request,
            1,
            Time::ZERO,
        );
        assert!(t3 > t1);
        // 1 hop at 2 GHz: 3-stage pipeline + 1 flit = 4 cycles = 2000 ps.
        assert_eq!(t1, Time::from_ps(2000));
    }

    #[test]
    fn data_packets_take_longer_than_control() {
        let mut m = mesh(1, 2.0);
        let ctrl = m.route(
            Node::new(0, 0),
            Node::new(0, 3),
            MsgClass::Request,
            1,
            Time::ZERO,
        );
        let mut m = mesh(1, 2.0);
        let data = m.route(
            Node::new(0, 0),
            Node::new(0, 3),
            MsgClass::Response,
            5,
            Time::ZERO,
        );
        assert!(data > ctrl);
    }

    #[test]
    fn contention_serialises_same_link() {
        let mut m = mesh(1, 2.0);
        let a = m.route(
            Node::new(0, 0),
            Node::new(0, 1),
            MsgClass::Request,
            5,
            Time::ZERO,
        );
        let b = m.route(
            Node::new(0, 0),
            Node::new(0, 1),
            MsgClass::Request,
            5,
            Time::ZERO,
        );
        assert!(b > a, "second packet must queue behind the first");
        assert!(m.stats().contention_ps > 0);
    }

    #[test]
    fn classes_do_not_block_each_other() {
        let mut m = mesh(1, 2.0);
        let a = m.route(
            Node::new(0, 0),
            Node::new(0, 1),
            MsgClass::Request,
            5,
            Time::ZERO,
        );
        let b = m.route(
            Node::new(0, 0),
            Node::new(0, 1),
            MsgClass::Response,
            5,
            Time::ZERO,
        );
        // Different VCs: same physical link modelled per-class, so the
        // response is not delayed behind the request.
        assert_eq!(a, b);
    }

    #[test]
    fn vertical_hops_counted() {
        let mut m = mesh(4, 2.0);
        m.route(
            Node::new(0, 5),
            Node::new(3, 5),
            MsgClass::Request,
            1,
            Time::ZERO,
        );
        assert_eq!(m.stats().vertical_hops, 3);
    }

    #[test]
    fn higher_frequency_is_faster() {
        let mut slow = mesh(1, 1.0);
        let mut fast = mesh(1, 3.6);
        let a = slow.route(
            Node::new(0, 0),
            Node::new(0, 15),
            MsgClass::Request,
            5,
            Time::ZERO,
        );
        let b = fast.route(
            Node::new(0, 0),
            Node::new(0, 15),
            MsgClass::Request,
            5,
            Time::ZERO,
        );
        assert!(b < a);
    }

    #[test]
    fn local_delivery_is_one_pipeline() {
        let mut m = mesh(1, 2.0);
        let t = m.route(
            Node::new(0, 7),
            Node::new(0, 7),
            MsgClass::Response,
            5,
            Time::ZERO,
        );
        assert_eq!(t, Time::from_ps(1500)); // 3 cycles at 2 GHz
    }
}
