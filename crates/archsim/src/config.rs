//! System configuration — Table 1 of the paper.

use serde::{Deserialize, Serialize};

/// Full configuration of the simulated CMP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of stacked chips.
    pub chips: usize,
    /// Cores per chip (Table 1: 4, the bottom mesh row).
    pub cores_per_chip: usize,
    /// L2 banks per chip (Table 1: 12, the remaining tiles).
    pub l2_banks_per_chip: usize,
    /// Mesh width (Table 1: 4×4).
    pub mesh_x: usize,
    /// Mesh height.
    pub mesh_y: usize,
    /// Core clock, GHz (all chips run the same step, §3.2).
    pub freq_ghz: f64,
    /// Cache line size, bytes (Table 1: 64 B).
    pub line_bytes: u64,
    /// L1 data cache size, KiB (Table 1: 128).
    pub l1d_kib: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L1 hit latency, cycles (Table 1: 1).
    pub l1_latency: u64,
    /// One L2 bank's size, KiB (12 banks × 1 MiB = Table 1's 12 MiB).
    pub l2_bank_kib: u64,
    /// L2 associativity (Table 1: 8).
    pub l2_assoc: usize,
    /// L2 hit latency, cycles (Table 1: 6).
    pub l2_latency: u64,
    /// DRAM access time, nanoseconds (Table 1's 160 cycles at 2.0 GHz).
    pub dram_ns: f64,
    /// Router pipeline depth (Table 1: \[RC]\[VSA]\[ST/LT] = 3).
    pub router_stages: u64,
    /// Per-VC buffer, flits (Table 1: 5).
    pub vc_buffer_flits: u64,
    /// Control packet size, flits (Table 1: 1).
    pub ctrl_flits: u64,
    /// Data packet size, flits (Table 1: 5).
    pub data_flits: u64,
    /// Extra latency of a vertical (TSV/TCI) hop, cycles.
    pub vertical_hop_cycles: u64,
    /// Enable the L1 stride prefetcher (extension; off reproduces
    /// the paper's baseline).
    pub prefetch_next_line: bool,
    /// Prefetch distance in cache lines (how far ahead of the demand
    /// stream the prefetcher runs; an in-order blocking core needs a
    /// large distance to hide an 80 ns DRAM behind ~2-cycle accesses).
    pub prefetch_distance: u64,
}

impl SystemConfig {
    /// The Table 1 baseline with `chips` stacked chips at `freq_ghz`.
    pub fn baseline(chips: usize, freq_ghz: f64) -> Self {
        assert!(chips >= 1, "at least one chip");
        assert!(freq_ghz > 0.0);
        SystemConfig {
            chips,
            cores_per_chip: 4,
            l2_banks_per_chip: 12,
            mesh_x: 4,
            mesh_y: 4,
            freq_ghz,
            line_bytes: 64,
            l1d_kib: 128,
            l1_assoc: 8,
            l1_latency: 1,
            l2_bank_kib: 1024,
            l2_assoc: 8,
            l2_latency: 6,
            dram_ns: 80.0,
            router_stages: 3,
            vc_buffer_flits: 5,
            ctrl_flits: 1,
            data_flits: 5,
            vertical_hop_cycles: 1,
            prefetch_next_line: false,
            prefetch_distance: 16,
        }
    }

    /// The baseline with the next-line prefetcher enabled.
    pub fn with_prefetcher(mut self) -> Self {
        self.prefetch_next_line = true;
        self
    }

    /// Total hardware threads (one per core; the paper runs 24 or 32
    /// threads on 6- or 8-chip CMPs).
    pub fn threads(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Tiles per chip.
    pub fn tiles_per_chip(&self) -> usize {
        self.mesh_x * self.mesh_y
    }

    /// Total L2 banks in the system.
    pub fn total_l2_banks(&self) -> usize {
        self.chips * self.l2_banks_per_chip
    }

    /// Aggregate L2 capacity per chip, KiB (Table 1 check: 12 MiB).
    pub fn l2_total_kib(&self) -> u64 {
        self.l2_bank_kib * self.l2_banks_per_chip as u64
    }

    /// DRAM latency in core cycles at this configuration's frequency.
    pub fn dram_cycles(&self) -> u64 {
        (self.dram_ns * self.freq_ghz).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_anchors() {
        let c = SystemConfig::baseline(1, 2.0);
        assert_eq!(c.l2_total_kib(), 12 * 1024); // 12 MiB
        assert_eq!(c.threads(), 4);
        assert_eq!(c.tiles_per_chip(), 16);
        // 160-cycle memory at 2.0 GHz (the Table 1 row).
        assert_eq!(c.dram_cycles(), 160);
    }

    #[test]
    fn dram_cycles_scale_with_frequency() {
        // Fixed 80 ns: more cycles at higher frequency — the key
        // mechanism limiting memory-bound speedup.
        let slow = SystemConfig::baseline(1, 1.0);
        let fast = SystemConfig::baseline(1, 3.6);
        assert_eq!(slow.dram_cycles(), 80);
        assert_eq!(fast.dram_cycles(), 288);
    }

    #[test]
    fn thread_counts_match_paper() {
        assert_eq!(SystemConfig::baseline(6, 2.0).threads(), 24);
        assert_eq!(SystemConfig::baseline(8, 2.0).threads(), 32);
    }

    #[test]
    #[should_panic]
    fn zero_chips_rejected() {
        SystemConfig::baseline(0, 2.0);
    }
}
