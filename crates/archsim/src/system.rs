//! The full CMP: cores + L2/directory banks + NoC + DRAM + barriers,
//! driven by the discrete-event engine.
//!
//! See the crate docs for the architecture and the fidelity notes.

use crate::cache::{Access, CacheArray};
use crate::coherence::{DirEntry, DirUpdate, L1State, MsgKind};
use crate::config::SystemConfig;
use crate::cpu::{Core, CoreState};
use crate::noc::{Mesh, NocStats, Node};
use immersion_desim::{Clock, EventQueue, Histogram, Time};
use immersion_npb::trace::{Op, ThreadTrace};
use immersion_npb::TraceGenerator;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Sentinel requester meaning "invalidate without acking anyone"
/// (used for L2 victim recalls).
const NO_ACK: u32 = u32::MAX;

/// Max instructions a core retires per event before rescheduling
/// itself — bounds run-ahead skew between cores.
const STEP_QUANTUM: u64 = 8192;

/// A routed protocol message.
#[derive(Debug, Clone, Copy)]
struct Msg {
    kind: MsgKind,
    line: u64,
    /// Originating core for requests; `NO_ACK` for home-originated
    /// messages.
    sender: u32,
}

/// Event payloads.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Resume core execution.
    Step(u32),
    /// A message arrives at an L2/home bank.
    AtHome { bank: u32, msg: Msg },
    /// A message arrives at a core's L1 controller.
    AtCore { core: u32, msg: Msg },
    /// The DRAM access a home was blocked on completes.
    MemDone { bank: u32, line: u64 },
    /// A thread's barrier-arrive message reaches the master.
    BarrierArrive { core: u32 },
    /// The master's release message reaches a core.
    BarrierRelease { core: u32 },
}

/// Why a home has a line blocked.
#[derive(Debug, Clone, Copy)]
enum BusyKind {
    /// Waiting for the owner's `OwnerDone`.
    AwaitOwner,
    /// Waiting for DRAM; the original request and its pre-sent
    /// invalidation count ride along.
    AwaitMem {
        req: Msg,
        acks: u32,
        was_sharer: bool,
    },
}

struct Busy {
    kind: BusyKind,
    waiting: VecDeque<Msg>,
}

/// Per-line L2 metadata: dirty bit.
type L2Meta = bool;

/// One L2 bank with its directory slice.
struct Bank {
    node: Node,
    l2: CacheArray<L2Meta>,
    dir: HashMap<u64, DirEntry>,
    busy: HashMap<u64, Busy>,
    dram_accesses: u64,
}

/// End-of-run statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecStats {
    /// Simulated execution time, seconds.
    pub exec_time_secs: f64,
    /// Execution time in core cycles.
    pub cycles: u64,
    /// Total instructions retired.
    pub instructions: u64,
    /// Total memory instructions.
    pub mem_ops: u64,
    /// L1 miss rate over memory instructions.
    pub l1_miss_rate: f64,
    /// L2 hit rate over L2 accesses.
    pub l2_hit_rate: f64,
    /// DRAM line fetches.
    pub dram_accesses: u64,
    /// Mean L1-miss (transaction) latency, nanoseconds.
    pub avg_miss_latency_ns: f64,
    /// Fraction of core time spent waiting at barriers.
    pub barrier_fraction: f64,
    /// NoC statistics.
    pub noc: NocStats,
    /// Aggregate IPC (instructions / cycles / cores).
    pub ipc: f64,
    /// Prefetches issued (0 when the prefetcher is off).
    pub prefetches: u64,
    /// Median transaction latency, ns (power-of-two bucket resolution).
    pub p50_miss_latency_ns: u64,
    /// 99th-percentile transaction latency, ns.
    pub p99_miss_latency_ns: u64,
}

impl ExecStats {
    /// Render in gem5's `stats.txt` style: one `name value # comment`
    /// line per statistic, bracketed by begin/end markers — so existing
    /// gem5 post-processing scripts can consume our output.
    pub fn to_stats_txt(&self) -> String {
        let mut out = String::new();
        out.push_str("---------- Begin Simulation Statistics ----------\n");
        let mut line = |name: &str, value: String, desc: &str| {
            out.push_str(&format!("{name:<40} {value:>20}  # {desc}\n"));
        };
        line(
            "sim_seconds",
            format!("{:.9}", self.exec_time_secs),
            "Number of seconds simulated",
        );
        line(
            "sim_cycles",
            format!("{}", self.cycles),
            "Core cycles simulated",
        );
        line(
            "sim_insts",
            format!("{}", self.instructions),
            "Number of instructions committed",
        );
        line(
            "system.cpu.ipc_total",
            format!("{:.6}", self.ipc),
            "IPC: total IPC of all threads",
        );
        line(
            "system.cpu.dcache.overall_accesses",
            format!("{}", self.mem_ops),
            "number of overall (read+write) accesses",
        );
        line(
            "system.cpu.dcache.overall_miss_rate",
            format!("{:.6}", self.l1_miss_rate),
            "miss rate for overall accesses",
        );
        line(
            "system.l2.overall_hit_rate",
            format!("{:.6}", self.l2_hit_rate),
            "hit rate for overall accesses",
        );
        line(
            "system.mem_ctrls.num_reads",
            format!("{}", self.dram_accesses),
            "Number of DRAM line fetches",
        );
        line(
            "system.cpu.dcache.overall_avg_miss_latency",
            format!("{:.3}", self.avg_miss_latency_ns),
            "average overall miss latency (ns)",
        );
        line(
            "system.cpu.dcache.miss_latency_p50",
            format!("{}", self.p50_miss_latency_ns),
            "median miss latency (ns)",
        );
        line(
            "system.cpu.dcache.miss_latency_p99",
            format!("{}", self.p99_miss_latency_ns),
            "99th percentile miss latency (ns)",
        );
        line(
            "system.ruby.network.packets_injected",
            format!("{}", self.noc.packets),
            "Packets injected into the NoC",
        );
        line(
            "system.ruby.network.total_hops",
            format!("{}", self.noc.hops),
            "Total hops traversed",
        );
        line(
            "system.ruby.network.avg_hops",
            format!(
                "{:.4}",
                if self.noc.packets == 0 {
                    0.0
                } else {
                    self.noc.hops as f64 / self.noc.packets as f64
                }
            ),
            "Average hops per packet",
        );
        line(
            "system.cpu.prefetcher.num_issued",
            format!("{}", self.prefetches),
            "Prefetches issued",
        );
        line(
            "barrier_time_fraction",
            format!("{:.6}", self.barrier_fraction),
            "Fraction of core-time at barriers",
        );
        out.push_str("---------- End Simulation Statistics   ----------\n");
        out
    }
}

/// The simulator.
pub struct System {
    cfg: SystemConfig,
    clock: Clock,
    mesh: Mesh,
    cores: Vec<Core>,
    banks: Vec<Bank>,
    queue: EventQueue<Ev>,
    traces: Vec<Option<ThreadTrace>>,
    barrier_master: Node,
    barrier_count: usize,
    done_count: usize,
    finish: Time,
    stale_forwards: u64,
    /// Distribution of transaction latencies, nanoseconds.
    miss_latency_hist: Histogram,
}

impl System {
    /// Build a system for `cfg`.
    pub fn new(cfg: SystemConfig) -> System {
        let clock = Clock::from_ghz(cfg.freq_ghz);
        let cores = (0..cfg.threads())
            .map(|id| {
                let node = Node::new(id / cfg.cores_per_chip, id % cfg.cores_per_chip);
                Core::new(id as u32, node, cfg.l1d_kib, cfg.l1_assoc, cfg.line_bytes)
            })
            .collect();
        let banks = (0..cfg.total_l2_banks())
            .map(|b| {
                let chip = b / cfg.l2_banks_per_chip;
                let tile = cfg.cores_per_chip + b % cfg.l2_banks_per_chip;
                Bank {
                    node: Node::new(chip, tile),
                    l2: CacheArray::new(cfg.l2_bank_kib, cfg.l2_assoc, cfg.line_bytes),
                    dir: HashMap::new(),
                    busy: HashMap::new(),
                    dram_accesses: 0,
                }
            })
            .collect();
        System {
            cfg,
            clock,
            mesh: Mesh::new(cfg),
            cores,
            banks,
            queue: EventQueue::new(),
            traces: Vec::new(),
            barrier_master: Node::new(0, 0),
            barrier_count: 0,
            done_count: 0,
            finish: Time::ZERO,
            stale_forwards: 0,
            miss_latency_hist: Histogram::new(),
        }
    }

    /// The home bank of a line.
    fn home_of(&self, line: u64) -> u32 {
        ((line / self.cfg.line_bytes) % self.cfg.total_l2_banks() as u64) as u32
    }

    fn flits_of(&self, kind: MsgKind, data_sized: bool) -> u64 {
        if kind.carries_data() && data_sized {
            self.cfg.data_flits
        } else {
            self.cfg.ctrl_flits
        }
    }

    /// Route a message and schedule its arrival event.
    fn send_to_home(&mut self, from: Node, bank: u32, msg: Msg, now: Time, data_sized: bool) {
        let to = self.banks[bank as usize].node;
        let flits = self.flits_of(msg.kind, data_sized);
        let arrive = self.mesh.route(from, to, msg.kind.class(), flits, now);
        self.queue.schedule(arrive, 0, Ev::AtHome { bank, msg });
    }

    fn send_to_core(&mut self, from: Node, core: u32, msg: Msg, now: Time, data_sized: bool) {
        let to = self.cores[core as usize].node;
        let flits = self.flits_of(msg.kind, data_sized);
        let arrive = self.mesh.route(from, to, msg.kind.class(), flits, now);
        self.queue.schedule(arrive, 0, Ev::AtCore { core, msg });
    }

    /// Run the traces of `gen` to completion and report statistics.
    ///
    /// # Panics
    /// Panics if the generator's thread count differs from the
    /// configuration's.
    pub fn run(mut self, gen: &TraceGenerator) -> ExecStats {
        assert_eq!(
            gen.threads(),
            self.cfg.threads(),
            "trace threads must match the CMP's cores"
        );
        self.traces = (0..gen.threads())
            .map(|t| Some(gen.thread_stream(t)))
            .collect();
        for c in 0..self.cores.len() {
            self.queue.schedule(Time::ZERO, 1, Ev::Step(c as u32));
        }
        while let Some(ev) = self.queue.pop() {
            let now = ev.time;
            match ev.payload {
                Ev::Step(c) => self.step_core(c, now),
                Ev::AtHome { bank, msg } => self.home_handle(bank, msg, now),
                Ev::AtCore { core, msg } => self.core_handle(core, msg, now),
                Ev::MemDone { bank, line } => self.mem_done(bank, line, now),
                Ev::BarrierArrive { core } => self.barrier_arrive(core, now),
                Ev::BarrierRelease { core } => self.barrier_release(core, now),
            }
        }
        if self.done_count != self.cores.len() {
            for core in &self.cores {
                eprintln!(
                    "core {}: state {:?} pending {:?} inflight {:?} barrier_count {}",
                    core.id, core.state, core.pending, core.prefetch_inflight, self.barrier_count
                );
            }
        }
        assert!(
            self.done_count == self.cores.len(),
            "simulation drained with {} of {} threads unfinished — protocol deadlock",
            self.done_count,
            self.cores.len()
        );
        self.collect_stats()
    }

    // ----- core execution -------------------------------------------------

    fn step_core(&mut self, c: u32, now: Time) {
        let mut t = now;
        let mut retired: u64 = 0;
        loop {
            if retired >= STEP_QUANTUM {
                self.queue.schedule(t, 1, Ev::Step(c));
                return;
            }
            let op = match self.traces[c as usize].as_mut() {
                Some(trace) => trace.next(),
                // A Step event for a core whose stream is gone is a
                // stale wakeup; there is nothing left to retire.
                None => return,
            };
            let core = &mut self.cores[c as usize];
            match op {
                None => {
                    core.state = CoreState::Done;
                    self.done_count += 1;
                    if t > self.finish {
                        self.finish = t;
                    }
                    return;
                }
                Some(Op::Compute { int_ops, fp_ops }) => {
                    let n = (int_ops + fp_ops) as u64;
                    core.stats.instructions += n;
                    retired += n;
                    t += self.clock.cycles(n);
                }
                Some(Op::Load { addr }) | Some(Op::Store { addr }) => {
                    let is_write = matches!(op, Some(Op::Store { .. }));
                    core.stats.instructions += 1;
                    core.stats.mem_ops += 1;
                    retired += 1;
                    t += self.clock.cycles(self.cfg.l1_latency);
                    let hit = core.l1_satisfies(addr, is_write);
                    let line = core.l1d.line_of(addr);
                    let upgrade = !hit && is_write && core.l1d.probe(addr).is_some();
                    if !hit {
                        core.open_transaction(line, is_write, t, upgrade);
                    }
                    // Stride prefetch: run `prefetch_distance` lines
                    // ahead of every load, hit or miss.
                    if self.cfg.prefetch_next_line && !is_write {
                        let ahead = line + self.cfg.prefetch_distance * self.cfg.line_bytes;
                        self.issue_prefetch(c, ahead, t);
                    }
                    if hit {
                        continue;
                    }
                    // L1 miss or upgrade: request the line and block.
                    // A read whose line is already being prefetched can
                    // simply wait for that fill.
                    let core = &mut self.cores[c as usize];
                    let from = core.node;
                    let already_inflight = !is_write && core.prefetch_inflight.remove(&line);
                    if !already_inflight {
                        let kind = if is_write {
                            MsgKind::GetM
                        } else {
                            MsgKind::GetS
                        };
                        let home = self.home_of(line);
                        self.send_to_home(
                            from,
                            home,
                            Msg {
                                kind,
                                line,
                                sender: c,
                            },
                            t,
                            false,
                        );
                    }
                    return;
                }
                Some(Op::Barrier) => {
                    core.state = CoreState::AtBarrier;
                    core.barrier_arrived = t;
                    core.stats.barriers += 1;
                    let from = core.node;
                    let arrive = self.mesh.route(
                        from,
                        self.barrier_master,
                        crate::noc::MsgClass::Request,
                        self.cfg.ctrl_flits,
                        t,
                    );
                    self.queue
                        .schedule(arrive, 0, Ev::BarrierArrive { core: c });
                    return;
                }
            }
        }
    }

    /// Issue a non-blocking next-line prefetch (extension).
    fn issue_prefetch(&mut self, c: u32, line: u64, now: Time) {
        let core = &mut self.cores[c as usize];
        if core.l1d.probe(line).is_some()
            || core.prefetch_inflight.contains(&line)
            || core.pending.map(|p| p.line) == Some(line)
        {
            return;
        }
        core.prefetch_inflight.insert(line);
        core.stats.prefetches += 1;
        let from = core.node;
        let home = self.home_of(line);
        self.send_to_home(
            from,
            home,
            Msg {
                kind: MsgKind::GetS,
                line,
                sender: c,
            },
            now,
            false,
        );
    }

    fn barrier_arrive(&mut self, _core: u32, now: Time) {
        self.barrier_count += 1;
        if self.barrier_count == self.cores.len() {
            self.barrier_count = 0;
            for c in 0..self.cores.len() as u32 {
                let to = self.cores[c as usize].node;
                let arrive = self.mesh.route(
                    self.barrier_master,
                    to,
                    crate::noc::MsgClass::Response,
                    self.cfg.ctrl_flits,
                    now,
                );
                self.queue
                    .schedule(arrive, 0, Ev::BarrierRelease { core: c });
            }
        }
    }

    fn barrier_release(&mut self, c: u32, now: Time) {
        let core = &mut self.cores[c as usize];
        debug_assert_eq!(core.state, CoreState::AtBarrier);
        core.stats.barrier_wait_ps += now.saturating_sub(core.barrier_arrived).as_ps();
        core.state = CoreState::Running;
        self.queue.schedule(now, 1, Ev::Step(c));
    }

    // ----- L1 controller ---------------------------------------------------

    fn core_handle(&mut self, c: u32, msg: Msg, now: Time) {
        match msg.kind {
            MsgKind::FwdGetS { requester } => {
                let core = &mut self.cores[c as usize];
                let from = core.node;
                let (have, dirty) = match core.l1d.probe(msg.line) {
                    Some(st) => (true, st.dirty()),
                    None => match core.wb_buffer.get(&msg.line) {
                        Some(st) => (true, st.dirty()),
                        None => (false, false),
                    },
                };
                if !have {
                    // Stale forward (the copy was recalled in flight):
                    // answer as a clean owner so the requester and the
                    // home both make progress.
                    self.stale_forwards += 1;
                }
                let update = if have && dirty {
                    core.l1d.update_meta(msg.line, L1State::O);
                    DirUpdate::KeepOwnerAddSharer
                } else {
                    core.l1d.update_meta(msg.line, L1State::S);
                    DirUpdate::DropOwnerBothShare
                };
                self.send_to_core(
                    from,
                    requester,
                    Msg {
                        kind: MsgKind::Data {
                            to_state: L1State::S,
                            acks_expected: 0,
                        },
                        line: msg.line,
                        sender: c,
                    },
                    now,
                    true,
                );
                let home = self.home_of(msg.line);
                self.send_to_home(
                    from,
                    home,
                    Msg {
                        kind: MsgKind::OwnerDone { update, requester },
                        line: msg.line,
                        sender: c,
                    },
                    now,
                    false,
                );
            }
            MsgKind::FwdGetM {
                requester,
                acks_expected,
            } => {
                let core = &mut self.cores[c as usize];
                let from = core.node;
                core.l1d.invalidate(msg.line);
                self.send_to_core(
                    from,
                    requester,
                    Msg {
                        kind: MsgKind::Data {
                            to_state: L1State::M,
                            acks_expected,
                        },
                        line: msg.line,
                        sender: c,
                    },
                    now,
                    true,
                );
                let home = self.home_of(msg.line);
                self.send_to_home(
                    from,
                    home,
                    Msg {
                        kind: MsgKind::OwnerDone {
                            update: DirUpdate::Transfer,
                            requester,
                        },
                        line: msg.line,
                        sender: c,
                    },
                    now,
                    false,
                );
            }
            MsgKind::Inv { requester } => {
                let core = &mut self.cores[c as usize];
                let from = core.node;
                core.l1d.invalidate(msg.line);
                if requester != NO_ACK {
                    self.send_to_core(
                        from,
                        requester,
                        Msg {
                            kind: MsgKind::InvAck,
                            line: msg.line,
                            sender: c,
                        },
                        now,
                        false,
                    );
                }
            }
            MsgKind::Data {
                to_state,
                acks_expected,
            } => {
                let core = &mut self.cores[c as usize];
                // A grant answers the demand only when the line matches
                // AND the state suffices: a store must wait for its M
                // grant, not a racing prefetch's E/S grant.
                let is_demand = match core.pending.as_mut() {
                    Some(p) if p.line == msg.line && (!p.is_write || to_state == L1State::M) => {
                        p.have_data = true;
                        p.acks_needed += acks_expected as i64;
                        p.granted = if p.is_write { L1State::M } else { to_state };
                        true
                    }
                    _ => false,
                };
                if is_demand {
                    self.maybe_finish_transaction(c, now);
                } else {
                    // Prefetch fill (or a late duplicate): install
                    // without waking the core.
                    let core = &mut self.cores[c as usize];
                    core.prefetch_inflight.remove(&msg.line);
                    self.install_line(c, msg.line, to_state, now);
                }
            }
            MsgKind::InvAck => {
                let core = &mut self.cores[c as usize];
                // Acks for a transaction that already completed (e.g. a
                // store satisfied while its invalidations were still in
                // flight) are stale; only count acks for the line the
                // core is actually waiting on.
                match core.pending.as_mut() {
                    Some(p) if p.line == msg.line => {
                        p.acks_needed -= 1;
                        self.maybe_finish_transaction(c, now);
                    }
                    _ => {}
                }
            }
            MsgKind::WbAck => {
                self.cores[c as usize].wb_buffer.remove(&msg.line);
            }
            MsgKind::GetS | MsgKind::GetM | MsgKind::PutM | MsgKind::OwnerDone { .. } => {
                unreachable!("request-class message at a core: {:?}", msg.kind)
            }
        }
    }

    fn maybe_finish_transaction(&mut self, c: u32, now: Time) {
        if !self.cores[c as usize].transaction_complete() {
            return;
        }
        let Some(p) = self.cores[c as usize].pending.take() else {
            // transaction_complete() treats an idle core as complete;
            // with nothing pending there is nothing to install.
            return;
        };
        let latency_ps = now.saturating_sub(p.started).as_ps();
        self.cores[c as usize].stats.miss_latency_ps += latency_ps;
        self.miss_latency_hist.record(latency_ps / 1000); // ns buckets
        self.install_line(c, p.line, p.granted, now);
        self.cores[c as usize].state = CoreState::Running;
        self.queue.schedule(now, 1, Ev::Step(c));
    }

    /// Install (or upgrade) a line in a core's L1, writing back the
    /// victim if it was dirty or exclusive.
    fn install_line(&mut self, c: u32, line: u64, state: L1State, now: Time) {
        let core = &mut self.cores[c as usize];
        if core.l1d.probe(line).is_some() {
            core.l1d.update_meta(line, state);
        } else if let Access::MissEvict(victim, vstate) = core.l1d.access(line, state) {
            if matches!(vstate, L1State::M | L1State::O | L1State::E) {
                core.wb_buffer.insert(victim, vstate);
                let from = core.node;
                let dirty = vstate.dirty();
                let home = self.home_of(victim);
                self.send_to_home(
                    from,
                    home,
                    Msg {
                        kind: MsgKind::PutM,
                        line: victim,
                        sender: c,
                    },
                    now,
                    dirty,
                );
            }
        }
    }

    // ----- home / directory ------------------------------------------------

    fn home_handle(&mut self, b: u32, msg: Msg, now: Time) {
        match msg.kind {
            MsgKind::GetS | MsgKind::GetM | MsgKind::PutM => {
                if let Some(busy) = self.banks[b as usize].busy.get_mut(&msg.line) {
                    busy.waiting.push_back(msg);
                    return;
                }
                match msg.kind {
                    MsgKind::PutM => self.home_putm(b, msg, now),
                    _ => self.home_request(b, msg, now),
                }
            }
            MsgKind::OwnerDone { update, requester } => {
                {
                    let bank = &mut self.banks[b as usize];
                    let entry = bank.dir.entry(msg.line).or_default();
                    match update {
                        DirUpdate::Transfer => {
                            entry.owner = Some(requester);
                            entry.sharers = 0;
                        }
                        DirUpdate::KeepOwnerAddSharer => {
                            entry.add_sharer(requester);
                        }
                        DirUpdate::DropOwnerBothShare => {
                            if let Some(o) = entry.owner.take() {
                                entry.add_sharer(o);
                            }
                            entry.add_sharer(requester);
                        }
                    }
                }
                self.unblock(b, msg.line, now);
            }
            other => unreachable!("unexpected message at home: {other:?}"),
        }
    }

    /// Process a GetS/GetM for an unblocked line.
    fn home_request(&mut self, b: u32, msg: Msg, now: Time) {
        let t0 = now + self.clock.cycles(self.cfg.l2_latency);
        let req = msg.sender;
        let bank_node = self.banks[b as usize].node;

        // Snapshot / normalise the directory entry.
        let mut owner;
        {
            let bank = &mut self.banks[b as usize];
            let entry = bank.dir.entry(msg.line).or_default();
            owner = entry.owner;
            // A requester listed as owner lost the line to its own
            // in-flight writeback; treat as no owner.
            if owner == Some(req) {
                entry.owner = None;
                owner = None;
            }
        }

        match msg.kind {
            MsgKind::GetS => {
                if let Some(o) = owner {
                    self.banks[b as usize].busy.insert(
                        msg.line,
                        Busy {
                            kind: BusyKind::AwaitOwner,
                            waiting: VecDeque::new(),
                        },
                    );
                    self.send_to_core(
                        bank_node,
                        o,
                        Msg {
                            kind: MsgKind::FwdGetS { requester: req },
                            line: msg.line,
                            sender: NO_ACK,
                        },
                        t0,
                        false,
                    );
                    return;
                }
                // Serve from L2 or memory.
                let hit = {
                    let bank = &mut self.banks[b as usize];
                    matches!(bank.l2.access(msg.line, false), Access::Hit)
                };
                if hit {
                    let to_state = {
                        let bank = &mut self.banks[b as usize];
                        let entry = bank.dir.entry(msg.line).or_default();
                        if entry.is_idle() {
                            entry.owner = Some(req);
                            L1State::E
                        } else {
                            entry.add_sharer(req);
                            L1State::S
                        }
                    };
                    self.send_to_core(
                        bank_node,
                        req,
                        Msg {
                            kind: MsgKind::Data {
                                to_state,
                                acks_expected: 0,
                            },
                            line: msg.line,
                            sender: NO_ACK,
                        },
                        t0,
                        true,
                    );
                } else {
                    self.begin_mem(b, msg, 0, false, t0);
                }
            }
            MsgKind::GetM => {
                // Invalidate sharers (other than the requester) now; the
                // acks converge at the requester.
                let (acks, was_sharer) = {
                    let bank = &mut self.banks[b as usize];
                    let entry = bank.dir.entry(msg.line).or_default();
                    let was_sharer = entry.is_sharer(req);
                    let targets: Vec<u32> = entry.sharer_ids().filter(|&s| s != req).collect();
                    entry.sharers = 0;
                    (targets, was_sharer)
                };
                for &s in &acks {
                    self.send_to_core(
                        bank_node,
                        s,
                        Msg {
                            kind: MsgKind::Inv { requester: req },
                            line: msg.line,
                            sender: NO_ACK,
                        },
                        t0,
                        false,
                    );
                }
                let n_acks = acks.len() as u32;

                if let Some(o) = owner {
                    self.banks[b as usize].busy.insert(
                        msg.line,
                        Busy {
                            kind: BusyKind::AwaitOwner,
                            waiting: VecDeque::new(),
                        },
                    );
                    self.send_to_core(
                        bank_node,
                        o,
                        Msg {
                            kind: MsgKind::FwdGetM {
                                requester: req,
                                acks_expected: n_acks,
                            },
                            line: msg.line,
                            sender: NO_ACK,
                        },
                        t0,
                        false,
                    );
                    return;
                }
                let hit = {
                    let bank = &mut self.banks[b as usize];
                    matches!(bank.l2.access(msg.line, false), Access::Hit)
                };
                if hit || was_sharer {
                    {
                        let bank = &mut self.banks[b as usize];
                        let entry = bank.dir.entry(msg.line).or_default();
                        entry.owner = Some(req);
                        entry.sharers = 0;
                    }
                    self.send_to_core(
                        bank_node,
                        req,
                        Msg {
                            kind: MsgKind::Data {
                                to_state: L1State::M,
                                acks_expected: n_acks,
                            },
                            line: msg.line,
                            sender: NO_ACK,
                        },
                        t0,
                        // An upgrading sharer needs no data flits.
                        !was_sharer,
                    );
                } else {
                    self.begin_mem(b, msg, n_acks, was_sharer, t0);
                }
            }
            _ => unreachable!(),
        }
    }

    fn begin_mem(&mut self, b: u32, req: Msg, acks: u32, was_sharer: bool, t0: Time) {
        let bank = &mut self.banks[b as usize];
        bank.dram_accesses += 1;
        bank.busy.insert(
            req.line,
            Busy {
                kind: BusyKind::AwaitMem {
                    req,
                    acks,
                    was_sharer,
                },
                waiting: VecDeque::new(),
            },
        );
        let done = t0 + Time::from_ns_f64(self.cfg.dram_ns);
        self.queue.schedule(
            done,
            0,
            Ev::MemDone {
                bank: b,
                line: req.line,
            },
        );
    }

    fn mem_done(&mut self, b: u32, line: u64, now: Time) {
        let Some(busy) = self.banks[b as usize].busy.get(&line) else {
            // Each begin_mem schedules exactly one MemDone, so an idle
            // line here means the entry was already resolved; the
            // completion is stale and carries no grant to deliver.
            return;
        };
        let BusyKind::AwaitMem {
            req,
            acks,
            was_sharer,
        } = busy.kind
        else {
            // Only begin_mem schedules MemDone, and it always installs
            // an AwaitMem entry for the line.
            unreachable!("MemDone while awaiting owner");
        };
        // Install the fetched line in L2, recalling any victim.
        let victim = {
            let bank = &mut self.banks[b as usize];
            match bank.l2.access(line, false) {
                Access::MissEvict(v, _dirty) => Some(v),
                _ => None,
            }
        };
        if let Some(v) = victim {
            self.recall_victim(b, v, now);
        }
        // Grant.
        let bank_node = self.banks[b as usize].node;
        let to_state = {
            let bank = &mut self.banks[b as usize];
            let entry = bank.dir.entry(line).or_default();
            match req.kind {
                MsgKind::GetS => {
                    if entry.is_idle() {
                        entry.owner = Some(req.sender);
                        L1State::E
                    } else {
                        entry.add_sharer(req.sender);
                        L1State::S
                    }
                }
                MsgKind::GetM => {
                    entry.owner = Some(req.sender);
                    entry.sharers = 0;
                    L1State::M
                }
                _ => unreachable!(),
            }
        };
        self.send_to_core(
            bank_node,
            req.sender,
            Msg {
                kind: MsgKind::Data {
                    to_state,
                    acks_expected: acks,
                },
                line,
                sender: NO_ACK,
            },
            now,
            !was_sharer,
        );
        self.unblock(b, line, now);
    }

    /// An L2 victim is dropped: tell any cached copies to go away
    /// (timing-approximate recall without ack collection).
    fn recall_victim(&mut self, b: u32, victim: u64, now: Time) {
        // A line with an in-flight transaction keeps its directory entry
        // (the L2 array drops the data, the directory does not forget) —
        // recalling it would race the forward already heading to its
        // owner.
        if self.banks[b as usize].busy.contains_key(&victim) {
            return;
        }
        let Some(entry) = self.banks[b as usize].dir.remove(&victim) else {
            return;
        };
        let bank_node = self.banks[b as usize].node;
        let mut targets: Vec<u32> = entry.sharer_ids().collect();
        if let Some(o) = entry.owner {
            targets.push(o);
        }
        for t in targets {
            self.send_to_core(
                bank_node,
                t,
                Msg {
                    kind: MsgKind::Inv { requester: NO_ACK },
                    line: victim,
                    sender: NO_ACK,
                },
                now,
                false,
            );
        }
    }

    fn home_putm(&mut self, b: u32, msg: Msg, now: Time) {
        let t0 = now + self.clock.cycles(self.cfg.l2_latency);
        let stale = {
            let bank = &mut self.banks[b as usize];
            let entry = bank.dir.entry(msg.line).or_default();
            entry.owner != Some(msg.sender)
        };
        if !stale {
            {
                let bank = &mut self.banks[b as usize];
                let entry = bank.dir.entry(msg.line).or_default();
                entry.owner = None;
            }
            let victim = {
                let bank = &mut self.banks[b as usize];
                match bank.l2.access(msg.line, true) {
                    Access::MissEvict(v, _m) => Some(v),
                    Access::Hit => {
                        bank.l2.update_meta(msg.line, true);
                        None
                    }
                    Access::Miss => None,
                }
            };
            if let Some(v) = victim {
                self.recall_victim(b, v, now);
            }
        }
        let bank_node = self.banks[b as usize].node;
        self.send_to_core(
            bank_node,
            msg.sender,
            Msg {
                kind: MsgKind::WbAck,
                line: msg.line,
                sender: NO_ACK,
            },
            t0,
            false,
        );
    }

    /// Release a line and replay its queued requests in order.
    fn unblock(&mut self, b: u32, line: u64, now: Time) {
        let Some(busy) = self.banks[b as usize].busy.remove(&line) else {
            return;
        };
        for msg in busy.waiting {
            // Re-enter the normal path; the first replayed request may
            // re-block the line, queueing the rest again.
            self.home_handle(b, msg, now);
        }
    }

    // ----- reporting ---------------------------------------------------------

    fn collect_stats(&self) -> ExecStats {
        let instructions: u64 = self.cores.iter().map(|c| c.stats.instructions).sum();
        let mem_ops: u64 = self.cores.iter().map(|c| c.stats.mem_ops).sum();
        let misses: u64 = self.cores.iter().map(|c| c.stats.l1_misses).sum();
        let miss_lat: u64 = self.cores.iter().map(|c| c.stats.miss_latency_ps).sum();
        let barrier_ps: u64 = self.cores.iter().map(|c| c.stats.barrier_wait_ps).sum();
        let (l2_hits, l2_misses) = self.banks.iter().fold((0u64, 0u64), |(h, m), b| {
            (h + b.l2.hits(), m + b.l2.misses())
        });
        let dram: u64 = self.banks.iter().map(|b| b.dram_accesses).sum();
        let exec = self.finish.as_secs_f64();
        let cycles = self.clock.cycles_in(self.finish);
        ExecStats {
            exec_time_secs: exec,
            cycles,
            instructions,
            mem_ops,
            l1_miss_rate: if mem_ops == 0 {
                0.0
            } else {
                misses as f64 / mem_ops as f64
            },
            l2_hit_rate: if l2_hits + l2_misses == 0 {
                0.0
            } else {
                l2_hits as f64 / (l2_hits + l2_misses) as f64
            },
            dram_accesses: dram,
            avg_miss_latency_ns: if misses == 0 {
                0.0
            } else {
                miss_lat as f64 / misses as f64 / 1e3
            },
            barrier_fraction: if exec <= 0.0 {
                0.0
            } else {
                barrier_ps as f64 / 1e12 / (exec * self.cores.len() as f64)
            },
            noc: self.mesh.stats().clone(),
            ipc: if cycles == 0 {
                0.0
            } else {
                instructions as f64 / cycles as f64 / self.cores.len() as f64
            },
            prefetches: self.cores.iter().map(|c| c.stats.prefetches).sum(),
            p50_miss_latency_ns: self.miss_latency_hist.quantile(0.5).unwrap_or(0),
            p99_miss_latency_ns: self.miss_latency_hist.quantile(0.99).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immersion_npb::Benchmark;

    fn run(bench: Benchmark, chips: usize, ghz: f64, ops: u64) -> ExecStats {
        let cfg = SystemConfig::baseline(chips, ghz);
        let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 7);
        System::new(cfg).run(&gen)
    }

    #[test]
    fn completes_and_counts_instructions() {
        let stats = run(Benchmark::Ep, 1, 2.0, 10_000);
        assert_eq!(stats.instructions, 4 * 10_000);
        assert!(stats.exec_time_secs > 0.0);
        assert!(stats.ipc > 0.0 && stats.ipc <= 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(Benchmark::Cg, 2, 2.0, 5_000);
        let b = run(Benchmark::Cg, 2, 2.0, 5_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses, b.dram_accesses);
    }

    #[test]
    fn ep_is_faster_than_cg_per_instruction() {
        let ep = run(Benchmark::Ep, 1, 2.0, 20_000);
        let cg = run(Benchmark::Cg, 1, 2.0, 20_000);
        assert!(
            ep.ipc > cg.ipc,
            "EP ipc {} should beat CG ipc {}",
            ep.ipc,
            cg.ipc
        );
        assert!(cg.l1_miss_rate > ep.l1_miss_rate);
    }

    #[test]
    fn frequency_speeds_up_compute_more_than_memory_bound() {
        let ops = 20_000;
        let speedup = |b: Benchmark| {
            let slow = run(b, 1, 1.0, ops).exec_time_secs;
            let fast = run(b, 1, 3.6, ops).exec_time_secs;
            slow / fast
        };
        let ep = speedup(Benchmark::Ep);
        let cg = speedup(Benchmark::Cg);
        assert!(ep > cg, "EP speedup {ep} should exceed CG speedup {cg}");
        // EP tracks frequency far better than CG even at this short,
        // cold-miss-dominated trace length (longer traces approach the
        // 3.6x/1.0x ideal).
        assert!(ep > 1.8, "EP speedup {ep}");
        // CG leaves most of the frequency on the table (fixed-ns DRAM).
        assert!(cg < 1.7, "CG speedup {cg}");
    }

    #[test]
    fn more_chips_mean_more_aggregate_work() {
        // Same per-thread ops; 2 chips run 8 threads vs 4.
        let one = run(Benchmark::Ft, 1, 2.0, 5_000);
        let two = run(Benchmark::Ft, 2, 2.0, 5_000);
        assert_eq!(two.instructions, 2 * one.instructions);
        // Sharing across twice the threads slows each thread somewhat.
        assert!(two.exec_time_secs >= one.exec_time_secs * 0.9);
    }

    #[test]
    fn coherence_traffic_flows_for_shared_workloads() {
        let stats = run(Benchmark::Is, 2, 2.0, 10_000);
        assert!(stats.noc.packets > 0);
        assert!(stats.noc.hops > 0);
        assert!(stats.dram_accesses > 0);
        assert!(stats.l1_miss_rate > 0.01);
    }

    #[test]
    fn barriers_cost_time() {
        // LU has dense barriers; its barrier fraction must be visible.
        let lu = run(Benchmark::Lu, 2, 2.0, 20_000);
        assert!(lu.barrier_fraction > 0.0);
        assert!(lu.barrier_fraction < 0.9);
    }

    #[test]
    #[should_panic(expected = "trace threads")]
    fn thread_mismatch_panics() {
        let cfg = SystemConfig::baseline(2, 2.0);
        let gen = TraceGenerator::new(Benchmark::Ep.descriptor(), 4, 1_000, 7);
        System::new(cfg).run(&gen);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use immersion_npb::Benchmark;

    fn run(bench: Benchmark, prefetch: bool, ops: u64) -> ExecStats {
        let mut cfg = SystemConfig::baseline(1, 2.0);
        cfg.prefetch_next_line = prefetch;
        let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 7);
        System::new(cfg).run(&gen)
    }

    #[test]
    fn prefetcher_off_issues_nothing() {
        let s = run(Benchmark::Mg, false, 10_000);
        assert_eq!(s.prefetches, 0);
    }

    #[test]
    fn prefetcher_helps_streaming_workloads() {
        // MG streams with a 64 B stride: the next-line prefetcher must
        // cut its miss rate and execution time.
        let off = run(Benchmark::Mg, false, 20_000);
        let on = run(Benchmark::Mg, true, 20_000);
        assert!(on.prefetches > 0);
        assert!(
            on.l1_miss_rate < off.l1_miss_rate * 0.9,
            "miss rate {} !< {}",
            on.l1_miss_rate,
            off.l1_miss_rate
        );
        assert!(
            on.exec_time_secs < off.exec_time_secs,
            "exec {} !< {}",
            on.exec_time_secs,
            off.exec_time_secs
        );
    }

    #[test]
    fn prefetcher_never_breaks_correctness() {
        // Same instruction counts, protocol still terminates, for a
        // sharing-heavy workload.
        let off = run(Benchmark::Is, false, 10_000);
        let on = run(Benchmark::Is, true, 10_000);
        assert_eq!(on.instructions, off.instructions);
        assert!(on.exec_time_secs > 0.0);
    }
}

#[cfg(test)]
mod latency_stats_tests {
    use super::*;
    use immersion_npb::Benchmark;

    #[test]
    fn latency_percentiles_are_ordered_and_plausible() {
        let cfg = SystemConfig::baseline(2, 2.0);
        let gen = TraceGenerator::new(Benchmark::Cg.descriptor(), cfg.threads(), 10_000, 7);
        let s = System::new(cfg).run(&gen);
        assert!(s.p50_miss_latency_ns > 0);
        assert!(s.p99_miss_latency_ns >= s.p50_miss_latency_ns);
        // A CG miss crosses the NoC and usually DRAM: tens of ns at
        // the median, bounded above by queueing (power-of-two buckets).
        assert!(s.p50_miss_latency_ns >= 10 && s.p50_miss_latency_ns <= 512);
        assert!(s.p99_miss_latency_ns <= 16_384);
    }
}

#[cfg(test)]
mod stats_txt_tests {
    use super::*;
    use immersion_npb::Benchmark;

    #[test]
    fn stats_txt_has_gem5_shape() {
        let cfg = SystemConfig::baseline(1, 2.0);
        let gen = TraceGenerator::new(Benchmark::Ep.descriptor(), cfg.threads(), 2_000, 7);
        let s = System::new(cfg).run(&gen);
        let txt = s.to_stats_txt();
        assert!(txt.starts_with("---------- Begin Simulation Statistics"));
        assert!(txt
            .trim_end()
            .ends_with("End Simulation Statistics   ----------"));
        assert!(txt.contains("sim_insts"));
        assert!(txt.contains("system.cpu.dcache.overall_miss_rate"));
        // Every stat line carries a gem5-style comment.
        for l in txt.lines().filter(|l| !l.starts_with('-')) {
            assert!(l.contains('#'), "line without comment: {l}");
        }
        // sim_insts value round-trips.
        let insts_line = txt.lines().find(|l| l.starts_with("sim_insts")).unwrap();
        let v: u64 = insts_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(v, s.instructions);
    }
}
