//! # immersion-archsim
//!
//! A gem5-like cycle-approximate simulator of the paper's 3-D chip
//! multiprocessor (Table 1):
//!
//! * in-order **cores** ([`cpu`]) executing the abstract per-thread op
//!   streams produced by `immersion-npb`'s trace generators;
//! * a two-level **cache hierarchy** ([`cache`]) — 32/128 KiB L1 I/D
//!   per core (1 cycle), twelve 1 MiB L2 banks per chip (6 cycles,
//!   8-way), 64 B lines — kept coherent by a **MOESI directory
//!   protocol** ([`coherence`]) with three message classes;
//! * a 4×4 **mesh NoC per chip** with vertical links between stacked
//!   chips ([`noc`]): dimension-order X-Y-Z routing, 3-stage routers
//!   (\[RC]\[VSA]\[ST/LT]), one virtual channel per message class,
//!   5-flit buffers, 1-flit control / 5-flit data packets;
//! * a fixed-wall-clock-latency **DRAM** (160 core cycles at 2.0 GHz ⇒
//!   80 ns), which is what makes memory-bound programs gain less from
//!   higher core frequency — the effect behind Figures 10–13;
//! * OpenMP-style **barriers** joining all threads.
//!
//! The simulator is trace-driven and fully deterministic: the same
//! configuration and seed produce the same cycle counts.
//!
//! ## Fidelity notes (vs gem5)
//!
//! The NoC is simulated at packet granularity with flit-time link
//! serialisation and per-class (virtual-channel) link reservations —
//! the standard "Garnet-lite" approximation — rather than per-flit
//! events; the directory serialises transactions per line (a blocking
//! home), which sidesteps the transient-race states of a full MOESI
//! implementation while preserving its traffic and latency structure.
//! Instruction fetch is assumed to hit in the 32 KiB L1I (the NPB
//! kernels are small loops).
//!
//! ## Example
//!
//! ```
//! use immersion_archsim::{SystemConfig, System};
//! use immersion_npb::{Benchmark, TraceGenerator};
//!
//! let cfg = SystemConfig::baseline(2, 2.0); // 2 chips at 2.0 GHz
//! let gen = TraceGenerator::new(
//!     Benchmark::Ep.descriptor(), cfg.threads(), 20_000, 42);
//! let stats = System::new(cfg).run(&gen);
//! assert!(stats.exec_time_secs > 0.0);
//! ```

pub mod cache;
pub mod coherence;
pub mod config;
pub mod cpu;
pub mod noc;
pub mod system;

pub use config::SystemConfig;
pub use system::{ExecStats, System};
