//! The in-order core model.
//!
//! A core executes its thread's abstract op stream: compute batches
//! retire at one instruction per cycle; loads and stores probe the L1
//! and either continue (hit) or open a coherence transaction and block
//! (miss / upgrade); barriers block until every thread arrives. The
//! heavy lifting (protocol, NoC, events) lives in [`crate::system`] —
//! this module holds the per-core state and bookkeeping.

use crate::cache::CacheArray;
use crate::coherence::L1State;
use crate::noc::Node;
use immersion_desim::Time;
use std::collections::HashMap;

/// What a core is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Executing its stream.
    Running,
    /// Blocked on an outstanding memory transaction.
    BlockedOnMemory,
    /// Waiting at a barrier.
    AtBarrier,
    /// Stream exhausted.
    Done,
}

/// An outstanding miss/upgrade transaction.
#[derive(Debug, Clone, Copy)]
pub struct Pending {
    /// The line being acquired.
    pub line: u64,
    /// Store (needs M) or load (S/E suffices).
    pub is_write: bool,
    /// True once the data/grant arrived.
    pub have_data: bool,
    /// State granted with the data.
    pub granted: L1State,
    /// Invalidation acks still outstanding (may dip negative while
    /// acks overtake the data message).
    pub acks_needed: i64,
    /// When the transaction started (for latency stats).
    pub started: Time,
}

/// Per-core counters.
#[derive(Debug, Clone, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Memory instructions executed.
    pub mem_ops: u64,
    /// L1 misses (transactions opened).
    pub l1_misses: u64,
    /// Store upgrades (had the line in S/O, needed M).
    pub upgrades: u64,
    /// Sum of transaction latencies, ps.
    pub miss_latency_ps: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Barriers participated in.
    pub barriers: u64,
    /// Time spent blocked at barriers, ps.
    pub barrier_wait_ps: u64,
}

/// One simulated core.
pub struct Core {
    /// Core id (global across chips).
    pub id: u32,
    /// Mesh endpoint of this core's tile.
    pub node: Node,
    /// L1 data cache with MOESI state per line.
    pub l1d: CacheArray<L1State>,
    /// Execution state.
    pub state: CoreState,
    /// Outstanding transaction, if any.
    pub pending: Option<Pending>,
    /// Evicted-dirty (or exclusive) lines awaiting the home's WbAck;
    /// forwards are answered from here during the window.
    pub wb_buffer: HashMap<u64, L1State>,
    /// Prefetch requests in flight (next-line prefetcher).
    pub prefetch_inflight: std::collections::HashSet<u64>,
    /// When the core arrived at the current barrier.
    pub barrier_arrived: Time,
    /// Counters.
    pub stats: CoreStats,
}

impl Core {
    /// A fresh core at `node` with an L1 of `l1d_kib` KiB.
    pub fn new(id: u32, node: Node, l1d_kib: u64, assoc: usize, line_bytes: u64) -> Core {
        Core {
            id,
            node,
            l1d: CacheArray::new(l1d_kib, assoc, line_bytes),
            state: CoreState::Running,
            pending: None,
            wb_buffer: HashMap::new(),
            prefetch_inflight: std::collections::HashSet::new(),
            barrier_arrived: Time::ZERO,
            stats: CoreStats::default(),
        }
    }

    /// Whether an access to `addr` hits locally: loads hit in any valid
    /// state; stores hit in M/E (E upgrades to M silently).
    pub fn l1_satisfies(&mut self, addr: u64, is_write: bool) -> bool {
        match self.l1d.probe(addr) {
            None => false,
            Some(state) => {
                if is_write {
                    if state.writable() {
                        if state == L1State::E {
                            self.l1d.update_meta(addr, L1State::M);
                        }
                        true
                    } else {
                        false
                    }
                } else {
                    state.readable()
                }
            }
        }
    }

    /// Open a transaction for `line`.
    pub fn open_transaction(&mut self, line: u64, is_write: bool, now: Time, upgrade: bool) {
        debug_assert!(self.pending.is_none(), "core {} double-miss", self.id);
        self.pending = Some(Pending {
            line,
            is_write,
            have_data: false,
            granted: L1State::S,
            acks_needed: 0,
            started: now,
        });
        self.state = CoreState::BlockedOnMemory;
        self.stats.l1_misses += 1;
        if upgrade {
            self.stats.upgrades += 1;
        }
    }

    /// Whether the pending transaction is finished (data + all acks).
    pub fn transaction_complete(&self) -> bool {
        self.pending
            .map(|p| p.have_data && p.acks_needed == 0)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(0, Node::new(0, 0), 4, 2, 64)
    }

    #[test]
    fn loads_hit_any_valid_state_stores_need_writable() {
        let mut c = core();
        c.l1d.access(0x100, L1State::S);
        assert!(c.l1_satisfies(0x100, false));
        assert!(!c.l1_satisfies(0x100, true), "S cannot take a store");
        c.l1d.update_meta(0x100, L1State::O);
        assert!(!c.l1_satisfies(0x100, true), "O cannot take a store");
        c.l1d.update_meta(0x100, L1State::M);
        assert!(c.l1_satisfies(0x100, true));
    }

    #[test]
    fn store_to_e_silently_upgrades() {
        let mut c = core();
        c.l1d.access(0x200, L1State::E);
        assert!(c.l1_satisfies(0x200, true));
        assert_eq!(c.l1d.probe(0x200), Some(L1State::M));
    }

    #[test]
    fn missing_line_never_satisfies() {
        let mut c = core();
        assert!(!c.l1_satisfies(0x300, false));
        assert!(!c.l1_satisfies(0x300, true));
    }

    #[test]
    fn transaction_lifecycle() {
        let mut c = core();
        c.open_transaction(0x400, true, Time::from_ns(1), false);
        assert_eq!(c.state, CoreState::BlockedOnMemory);
        assert!(!c.transaction_complete());
        let p = c.pending.as_mut().unwrap();
        p.acks_needed += 2;
        p.have_data = true;
        assert!(!c.transaction_complete());
        let p = c.pending.as_mut().unwrap();
        p.acks_needed -= 2;
        assert!(c.transaction_complete());
    }

    #[test]
    fn acks_may_overtake_data() {
        let mut c = core();
        c.open_transaction(0x500, true, Time::ZERO, true);
        let p = c.pending.as_mut().unwrap();
        p.acks_needed -= 1; // InvAck arrives first
        assert!(!c.transaction_complete());
        let p = c.pending.as_mut().unwrap();
        p.have_data = true;
        p.acks_needed += 1; // Data says one ack expected
        assert!(c.transaction_complete());
    }
}
