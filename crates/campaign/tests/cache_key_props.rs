//! Property tests for cache-key stability: a job config that goes
//! through a serde round trip (serialize to JSON text, parse back)
//! must land on the same content-addressed key, or resumed campaigns
//! would silently recompute everything.

use immersion_campaign::hash::cache_key;
use proptest::prelude::*;
use serde_json::Value;
use std::collections::BTreeMap;

/// Short lowercase identifier strings.
fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..10)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

/// A leaf JSON value: finite floats, signed/unsigned ints, bools,
/// strings, null.
fn arb_leaf() -> impl Strategy<Value = Value> {
    (
        0u8..6,
        -1.0e9f64..1.0e9,
        0u64..1_000_000_000,
        -1_000_000i64..1_000_000,
        proptest::bool::ANY,
        arb_name(),
    )
        .prop_map(|(tag, f, u, i, b, s)| match tag {
            0 => Value::F64(f),
            1 => Value::U64(u),
            // Through to_value so integers get the same U64/I64
            // normalisation the engine's configs get.
            2 => serde_json::to_value(&i).unwrap(),
            3 => Value::Bool(b),
            4 => Value::Str(s),
            _ => Value::Null,
        })
}

/// A config shaped like a real experiment config: a map of leaves,
/// sequences of leaves, and one nested map (e.g. `quality`).
fn arb_config() -> impl Strategy<Value = Value> {
    (
        proptest::collection::vec((arb_name(), arb_leaf()), 1..8),
        proptest::collection::vec(arb_leaf(), 0..6),
        proptest::collection::vec((arb_name(), arb_leaf()), 0..5),
        arb_name(),
    )
        .prop_map(|(fields, seq, nested, seq_key)| {
            let mut map: BTreeMap<String, Value> = fields.into_iter().collect();
            map.insert(seq_key, Value::Seq(seq));
            map.insert(
                "quality".to_string(),
                Value::Map(nested.into_iter().collect()),
            );
            Value::Map(map)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize -> parse -> rehash is the identity on cache keys.
    #[test]
    fn serde_round_trip_preserves_cache_key(config in arb_config()) {
        let key = cache_key(&config, &[]);
        let text = serde_json::to_string(&config).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&reparsed, &config, "round trip changed the value");
        prop_assert_eq!(cache_key(&reparsed, &[]), key);
        // Pretty-printing must not matter either.
        let pretty: Value =
            serde_json::from_str(&serde_json::to_string_pretty(&config).unwrap()).unwrap();
        prop_assert_eq!(cache_key(&pretty, &[]), key);
    }

    /// Keys commit to dependency keys: permuting dep order must not
    /// change the key (the material is key-sorted), but changing any
    /// dep key must.
    #[test]
    fn dep_keys_feed_the_hash(config in arb_config(), flip in proptest::bool::ANY) {
        let deps = vec![
            ("alpha".to_string(), "0011223344556677".to_string()),
            ("beta".to_string(), "8899aabbccddeeff".to_string()),
        ];
        let mut reversed = deps.clone();
        reversed.reverse();
        prop_assert_eq!(cache_key(&config, &deps), cache_key(&config, &reversed));
        let mut mutated = deps.clone();
        mutated[usize::from(flip)].1 = "ffffffffffffffff".to_string();
        prop_assert!(cache_key(&config, &deps) != cache_key(&config, &mutated));
    }
}
