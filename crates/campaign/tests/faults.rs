//! Fault-injection regressions for the cache write path: kill a write
//! mid-stream through the faultsim hooks and prove the cache can
//! neither serve the wreckage as a hit nor get stuck on it.

use immersion_campaign::{Cache, CacheEntry, Lookup};
use immersion_faultsim::{self as faultsim, FaultKind, FaultPlan, FaultRule, Trigger};
use serde_json::Value;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The injector is process-global state; hold this across each test
/// body so the armed windows of parallel tests never interleave.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn scratch_cache(tag: &str) -> Cache {
    let d = std::env::temp_dir().join(format!("immersion-faults-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&d);
    Cache::open(d).unwrap()
}

fn entry(output: u64) -> CacheEntry {
    CacheEntry {
        job: "victim".into(),
        config: Value::Str("cfg".into()),
        output: Value::U64(output),
        wall_ms: 1,
    }
}

fn plan_always(site: &str, kind: FaultKind) -> FaultPlan {
    FaultPlan::new(0).with_rule(FaultRule::new(site, kind, Trigger::Always))
}

#[test]
fn torn_write_is_quarantined_never_hit() {
    let _serial = serial();
    let cache = scratch_cache("torn");

    // Kill the store mid-stream: only a prefix of the JSON reaches the
    // final path.
    let armed = faultsim::install(plan_always(
        faultsim::site::CACHE_WRITE,
        FaultKind::TornWrite,
    ));
    assert!(cache.store("k", &entry(7)).is_err());
    assert_eq!(armed.hit_count(), 1);
    drop(armed);

    // The torn bytes are on disk at the entry's real path...
    assert!(cache.path_for("k").exists());
    // ...but the first probe quarantines them instead of hitting.
    assert!(matches!(cache.lookup("k"), Lookup::Poisoned));
    assert!(cache.poison_path_for("k").exists());
    assert_eq!(cache.quarantined(), 1);
    assert!(matches!(cache.lookup("k"), Lookup::Miss));

    // The key is fully recomputable: a clean store hits again, and the
    // quarantined evidence stays aside.
    cache.store("k", &entry(7)).unwrap();
    match cache.lookup("k") {
        Lookup::Hit(e) => assert_eq!(e.output, Value::U64(7)),
        other => panic!("expected a hit after re-store, got {other:?}"),
    }
    assert_eq!(cache.quarantined(), 1);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn garbage_write_is_quarantined_never_hit() {
    let _serial = serial();
    let cache = scratch_cache("garbage");

    let armed = faultsim::install(plan_always(faultsim::site::FS_WRITE, FaultKind::Garbage));
    assert!(cache.store("k", &entry(1)).is_err());
    drop(armed);

    assert!(matches!(cache.lookup("k"), Lookup::Poisoned));
    assert!(cache.load("k").is_none());
    assert_eq!(cache.quarantined(), 1);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn crash_before_rename_leaves_a_miss_and_open_sweeps_the_droppings() {
    let _serial = serial();
    let cache = scratch_cache("crash");

    // The temp file is written and synced, then the process "dies"
    // before the rename: the final path must not exist.
    let armed = faultsim::install(plan_always(faultsim::site::FS_RENAME, FaultKind::CrashSkip));
    assert!(cache.store("k", &entry(3)).is_err());
    drop(armed);

    assert!(!cache.path_for("k").exists());
    assert!(matches!(cache.lookup("k"), Lookup::Miss));
    let droppings = std::fs::read_dir(cache.dir())
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .count();
    assert_eq!(droppings, 1, "the aborted temp file is the crash evidence");

    // Reopening the cache (what a resumed campaign does) sweeps it.
    let reopened = Cache::open(cache.dir()).unwrap();
    assert!(reopened.is_empty());
    let droppings = std::fs::read_dir(cache.dir())
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .count();
    assert_eq!(droppings, 0);
    let _ = std::fs::remove_dir_all(cache.dir());
}

#[test]
fn io_error_on_store_leaves_no_partial_state() {
    let _serial = serial();
    let cache = scratch_cache("ioerr");

    let armed = faultsim::install(plan_always(faultsim::site::FS_WRITE, FaultKind::IoError));
    assert!(cache.store("k", &entry(9)).is_err());
    drop(armed);

    assert!(!cache.path_for("k").exists());
    assert!(matches!(cache.lookup("k"), Lookup::Miss));
    assert_eq!(cache.quarantined(), 0);
    // And with the fault gone the same store succeeds verbatim.
    cache.store("k", &entry(9)).unwrap();
    assert!(matches!(cache.lookup("k"), Lookup::Hit(_)));
    let _ = std::fs::remove_dir_all(cache.dir());
}
