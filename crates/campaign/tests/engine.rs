//! Integration tests for the campaign engine: scheduling order,
//! concurrency, cache-key stability, resume after partial failure,
//! and retry exhaustion.

use immersion_campaign::{Campaign, Event, Job, JobStatus, Manifest, RunOptions};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "immersion-campaign-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn quiet() -> impl Fn(&Event) + Sync {
    |_: &Event| {}
}

fn no_retry() -> RunOptions {
    RunOptions {
        retries: 0,
        backoff_base_ms: 0,
        ..RunOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Scheduling
// ---------------------------------------------------------------------------

#[test]
fn dependencies_run_before_dependents() {
    let order = Arc::new(Mutex::new(Vec::<String>::new()));
    let mut c = Campaign::new();
    for (name, deps) in [
        ("d", vec!["b", "c"]),
        ("b", vec!["a"]),
        ("c", vec!["a"]),
        ("a", vec![]),
    ] {
        let order = Arc::clone(&order);
        let mut job = Job::new(name, &name, move |ctx| {
            order.lock().unwrap().push(ctx.name().to_string());
            Ok(Value::Null)
        });
        for d in deps {
            job = job.after(d);
        }
        c.add(job);
    }
    let report = c.run(&no_retry(), &quiet()).unwrap();
    assert!(report.all_ok());
    let order = order.lock().unwrap();
    let pos = |n: &str| order.iter().position(|x| x == n).unwrap();
    assert!(pos("a") < pos("b"));
    assert!(pos("a") < pos("c"));
    assert!(pos("b") < pos("d"));
    assert!(pos("c") < pos("d"));
    // Report rows come back in registration order.
    let names: Vec<&str> = report.jobs.iter().map(|j| j.name.as_str()).collect();
    assert_eq!(names, ["d", "b", "c", "a"]);
}

#[test]
fn independent_jobs_run_concurrently() {
    let running = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let mut c = Campaign::new();
    for name in ["left", "right"] {
        let running = Arc::clone(&running);
        let peak = Arc::clone(&peak);
        c.add(Job::new(name, &name, move |_| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(150));
            running.fetch_sub(1, Ordering::SeqCst);
            Ok(Value::Null)
        }));
    }
    let opts = RunOptions {
        workers: 2,
        ..no_retry()
    };
    let report = c.run(&opts, &quiet()).unwrap();
    assert!(report.all_ok());
    assert_eq!(
        peak.load(Ordering::SeqCst),
        2,
        "two independent jobs with two workers never overlapped"
    );
}

#[test]
fn cycles_and_unknown_deps_are_rejected() {
    let mut c = Campaign::new();
    c.add(Job::new("a", &1u32, |_| Ok(Value::Null)).after("b"));
    c.add(Job::new("b", &2u32, |_| Ok(Value::Null)).after("a"));
    assert!(matches!(
        c.run(&no_retry(), &quiet()),
        Err(immersion_campaign::CampaignError::Cycle(_))
    ));

    let mut c = Campaign::new();
    c.add(Job::new("a", &1u32, |_| Ok(Value::Null)).after("ghost"));
    assert!(matches!(
        c.run(&no_retry(), &quiet()),
        Err(immersion_campaign::CampaignError::UnknownDependency { .. })
    ));
}

#[test]
fn filter_selects_matching_jobs_plus_their_deps() {
    let mut c = Campaign::new();
    c.add(Job::new("base", &0u32, |_| Ok(Value::U64(1))));
    c.add(Job::new("fig7", &7u32, |_| Ok(Value::U64(7))).after("base"));
    c.add(Job::new("fig8", &8u32, |_| Ok(Value::U64(8))));
    c.add(Job::new("table1", &1u32, |_| Ok(Value::U64(10))));
    let opts = RunOptions {
        filter: Some("fig*".to_string()),
        ..no_retry()
    };
    let report = c.run(&opts, &quiet()).unwrap();
    let mut names: Vec<&str> = report.jobs.iter().map(|j| j.name.as_str()).collect();
    names.sort_unstable();
    assert_eq!(names, ["base", "fig7", "fig8"]);
}

// ---------------------------------------------------------------------------
// Caching and resume
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct ExperimentConfig {
    name: String,
    grid: (usize, usize),
    trials: usize,
    threshold: f64,
}

#[test]
fn second_run_is_all_cache_hits() {
    let dir = scratch_dir("rerun");
    let runs = Arc::new(AtomicUsize::new(0));
    let build = |runs: Arc<AtomicUsize>| {
        let mut c = Campaign::new();
        for name in ["x", "y", "z"] {
            let runs = Arc::clone(&runs);
            c.add(Job::new(name, &name, move |_| {
                runs.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Str(name.to_string()))
            }));
        }
        c
    };
    let opts = RunOptions {
        cache_dir: Some(dir.clone()),
        ..no_retry()
    };
    let first = build(Arc::clone(&runs)).run(&opts, &quiet()).unwrap();
    assert_eq!(first.cache_misses, 3);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(runs.load(Ordering::SeqCst), 3);

    let second = build(Arc::clone(&runs)).run(&opts, &quiet()).unwrap();
    assert_eq!(second.cache_hits, 3);
    assert_eq!(second.cache_misses, 0);
    assert_eq!(runs.load(Ordering::SeqCst), 3, "cached jobs re-ran");
    assert!((second.cache_hit_rate() - 1.0).abs() < 1e-12);
    // Outputs are identical either way.
    assert_eq!(first.output("x"), second.output("x"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_change_invalidates_only_that_job() {
    let dir = scratch_dir("invalidate");
    let run_with_trials = |trials: usize| {
        let mut c = Campaign::new();
        for name in ["stable", "tuned"] {
            let cfg = ExperimentConfig {
                name: name.to_string(),
                grid: (8, 8),
                trials: if name == "tuned" { trials } else { 1 },
                threshold: 0.5,
            };
            c.add(Job::new(name, &cfg, move |_| Ok(Value::U64(trials as u64))));
        }
        let opts = RunOptions {
            cache_dir: Some(dir.clone()),
            ..no_retry()
        };
        c.run(&opts, &quiet()).unwrap()
    };
    run_with_trials(3);
    let second = run_with_trials(5);
    assert_eq!(second.cache_hits, 1, "unchanged job should hit");
    assert_eq!(second.cache_misses, 1, "changed config should miss");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_partial_failure_redoes_only_the_failure() {
    let dir = scratch_dir("resume");
    let healthy = Arc::new(AtomicBool::new(false));
    let build = |healthy: Arc<AtomicBool>| {
        let mut c = Campaign::new();
        c.add(Job::new("good", &"good", |_| Ok(Value::U64(1))));
        c.add(Job::new("flaky", &"flaky", move |_| {
            if healthy.load(Ordering::SeqCst) {
                Ok(Value::U64(2))
            } else {
                Err("injected failure".to_string())
            }
        }));
        c.add(
            Job::new("downstream", &"downstream", |ctx| {
                Ok(ctx.dep("flaky").cloned().unwrap())
            })
            .after("flaky"),
        );
        c
    };
    let opts = RunOptions {
        cache_dir: Some(dir.clone()),
        ..no_retry()
    };

    let first = build(Arc::clone(&healthy)).run(&opts, &quiet()).unwrap();
    let status = |r: &immersion_campaign::CampaignReport, n: &str| {
        r.jobs.iter().find(|j| j.name == n).unwrap().status
    };
    assert_eq!(status(&first, "good"), JobStatus::Completed);
    assert_eq!(status(&first, "flaky"), JobStatus::Failed);
    assert_eq!(status(&first, "downstream"), JobStatus::Skipped);
    assert!(!first.all_ok());

    // "Fix the bug" and resume: completed work is not redone.
    healthy.store(true, Ordering::SeqCst);
    let second = build(Arc::clone(&healthy)).run(&opts, &quiet()).unwrap();
    assert_eq!(status(&second, "good"), JobStatus::Cached);
    assert_eq!(status(&second, "flaky"), JobStatus::Completed);
    assert_eq!(status(&second, "downstream"), JobStatus::Completed);
    assert!(second.all_ok());
    assert_eq!(second.output("downstream"), Some(&Value::U64(2)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn no_cache_flag_reruns_but_still_stores() {
    let dir = scratch_dir("nocache");
    let runs = Arc::new(AtomicUsize::new(0));
    let build = |runs: Arc<AtomicUsize>| {
        let mut c = Campaign::new();
        let r = Arc::clone(&runs);
        c.add(Job::new("j", &"j", move |_| {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(Value::Null)
        }));
        c
    };
    let fresh = RunOptions {
        cache_dir: Some(dir.clone()),
        use_cache: false,
        ..no_retry()
    };
    build(Arc::clone(&runs)).run(&fresh, &quiet()).unwrap();
    build(Arc::clone(&runs)).run(&fresh, &quiet()).unwrap();
    assert_eq!(runs.load(Ordering::SeqCst), 2, "--no-cache must re-run");
    // But the stored entry serves a later cached run.
    let cached = RunOptions {
        cache_dir: Some(dir.clone()),
        ..no_retry()
    };
    let report = build(Arc::clone(&runs)).run(&cached, &quiet()).unwrap();
    assert_eq!(report.cache_hits, 1);
    assert_eq!(runs.load(Ordering::SeqCst), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Retries
// ---------------------------------------------------------------------------

#[test]
fn transient_failures_are_retried_to_success() {
    let attempts_seen = Arc::new(AtomicUsize::new(0));
    let mut c = Campaign::new();
    let a = Arc::clone(&attempts_seen);
    c.add(Job::new("transient", &"transient", move |_| {
        if a.fetch_add(1, Ordering::SeqCst) < 2 {
            Err("not yet".to_string())
        } else {
            Ok(Value::Bool(true))
        }
    }));
    let opts = RunOptions {
        retries: 3,
        backoff_base_ms: 0,
        ..RunOptions::default()
    };
    let report = c.run(&opts, &quiet()).unwrap();
    let job = &report.jobs[0];
    assert_eq!(job.status, JobStatus::Completed);
    assert_eq!(job.attempts, 3);
}

#[test]
fn retry_exhaustion_fails_the_job_and_reports_every_attempt() {
    let events = Arc::new(Mutex::new(Vec::<String>::new()));
    let mut c = Campaign::new();
    c.add(Job::new("doomed", &"doomed", |_| {
        Err("always broken".to_string())
    }));
    let opts = RunOptions {
        retries: 2,
        backoff_base_ms: 0,
        ..RunOptions::default()
    };
    let sink = {
        let events = Arc::clone(&events);
        move |ev: &Event| {
            let tag = match ev {
                Event::Started { .. } => "started",
                Event::Retrying { .. } => "retrying",
                Event::Failed { .. } => "failed",
                _ => "other",
            };
            events.lock().unwrap().push(tag.to_string());
        }
    };
    let report = c.run(&opts, &sink).unwrap();
    let job = &report.jobs[0];
    assert_eq!(job.status, JobStatus::Failed);
    assert_eq!(job.attempts, 3, "1 try + 2 retries");
    assert_eq!(job.error.as_deref(), Some("always broken"));
    assert_eq!(
        events.lock().unwrap().as_slice(),
        ["started", "retrying", "retrying", "failed"]
    );
}

#[test]
fn panicking_jobs_are_caught_not_fatal() {
    let mut c = Campaign::new();
    c.add(Job::new("boom", &"boom", |_| -> Result<Value, String> {
        panic!("kaboom");
    }));
    c.add(Job::new("fine", &"fine", |_| Ok(Value::Null)));
    let report = c.run(&no_retry(), &quiet()).unwrap();
    let boom = report.jobs.iter().find(|j| j.name == "boom").unwrap();
    assert_eq!(boom.status, JobStatus::Failed);
    assert!(boom.error.as_deref().unwrap().contains("kaboom"));
    let fine = report.jobs.iter().find(|j| j.name == "fine").unwrap();
    assert_eq!(fine.status, JobStatus::Completed);
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

#[test]
fn manifest_records_jobs_and_artifacts() {
    let dir = scratch_dir("manifest");
    let mut c = Campaign::new();
    c.add(Job::new("fig7", &7u32, |_| Ok(Value::U64(7))));
    let opts = RunOptions {
        cache_dir: Some(dir.clone()),
        ..no_retry()
    };
    let report = c.run(&opts, &quiet()).unwrap();
    let cache = immersion_campaign::Cache::open(&dir).unwrap();
    let mut manifest = Manifest::from_report(&report, 2, Some(&cache));
    manifest.add_artifact("fig7", "results/fig7_0.csv");
    let path = dir.join("campaign_manifest.json");
    manifest.write(&path).unwrap();

    let raw = std::fs::read_to_string(&path).unwrap();
    let v: Value = serde_json::from_str(&raw).unwrap();
    assert_eq!(v.get("schema").and_then(Value::as_u64), Some(1));
    let jobs = v.get("jobs").and_then(Value::as_seq).unwrap();
    assert_eq!(jobs.len(), 1);
    let row = jobs[0].as_map().unwrap();
    assert_eq!(row["name"].as_str(), Some("fig7"));
    assert_eq!(row["status"].as_str(), Some("Completed"));
    assert_eq!(
        row["artifacts"].as_seq().unwrap()[0].as_str(),
        Some("results/fig7_0.csv")
    );
    assert!(row["cache_file"].as_str().unwrap().ends_with(".json"));
    let _ = std::fs::remove_dir_all(&dir);
}
