//! Content hashing for cache keys: FNV-1a over the canonical JSON
//! encoding of a job's config. Canonical means object keys are sorted
//! — which the JSON layer guarantees by construction (objects are
//! `BTreeMap`s) — so a config hashes identically no matter how it was
//! built or round-tripped.

use serde_json::Value;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The cache key for a job: a 16-hex-digit digest of its canonical
/// JSON config plus the cache keys of its dependencies (so a change
/// anywhere upstream invalidates everything downstream).
pub fn cache_key(config: &Value, dep_keys: &[(String, String)]) -> String {
    let mut material = std::collections::BTreeMap::new();
    material.insert("config".to_string(), config.clone());
    material.insert(
        "deps".to_string(),
        Value::Map(
            dep_keys
                .iter()
                .map(|(name, key)| (name.clone(), Value::Str(key.clone())))
                .collect(),
        ),
    );
    // Serializing an already-constructed `Value` tree cannot fail; the
    // fallback keeps the key deterministic even if that ever changes.
    let canonical = serde_json::to_string(&Value::Map(material))
        .unwrap_or_else(|e| format!("<unserializable cache material: {e}>"));
    format!("{:016x}", fnv1a64(canonical.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_ignores_map_insertion_order() {
        let a: Value = serde_json::from_str(r#"{"x": 1, "y": 2}"#).unwrap();
        let b: Value = serde_json::from_str(r#"{"y": 2, "x": 1}"#).unwrap();
        assert_eq!(cache_key(&a, &[]), cache_key(&b, &[]));
    }

    #[test]
    fn key_changes_with_config_and_deps() {
        let a: Value = serde_json::from_str(r#"{"x": 1}"#).unwrap();
        let b: Value = serde_json::from_str(r#"{"x": 2}"#).unwrap();
        assert_ne!(cache_key(&a, &[]), cache_key(&b, &[]));
        let with_dep = cache_key(&a, &[("d".into(), "00".into())]);
        assert_ne!(cache_key(&a, &[]), with_dep);
        assert_ne!(cache_key(&a, &[("d".into(), "01".into())]), with_dep);
    }
}
