//! Job definitions: a stable name, a serializable config (the cache
//! identity), dependency edges, and the work closure itself.

use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;

/// The work a job performs: given its context (dependency outputs),
/// produce a JSON payload or a failure message.
pub type Work = Box<dyn Fn(&JobCtx) -> Result<Value, String> + Send + Sync>;

/// One unit of schedulable work.
pub struct Job {
    pub(crate) name: String,
    pub(crate) config: Value,
    pub(crate) deps: Vec<String>,
    pub(crate) work: Work,
}

impl Job {
    /// A job named `name` whose identity is `config` (serialized
    /// canonically and hashed into the cache key). Two jobs with equal
    /// configs and equal dependency results share a cache entry.
    pub fn new<C, F>(name: impl Into<String>, config: &C, work: F) -> Job
    where
        C: Serialize,
        F: Fn(&JobCtx) -> Result<Value, String> + Send + Sync + 'static,
    {
        Job {
            name: name.into(),
            // A config that refuses to serialize still gets a stable
            // cache identity: the error message itself.
            config: serde_json::to_value(config)
                .unwrap_or_else(|e| Value::Str(format!("<unserializable job config: {e}>"))),
            deps: Vec::new(),
            work: Box::new(work),
        }
    }

    /// Require `dep` to complete successfully before this job runs;
    /// its output becomes visible through [`JobCtx::dep`].
    pub fn after(mut self, dep: impl Into<String>) -> Job {
        self.deps.push(dep.into());
        self
    }

    /// This job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This job's canonical config.
    pub fn config(&self) -> &Value {
        &self.config
    }

    /// Declared dependencies, in declaration order.
    pub fn deps(&self) -> &[String] {
        &self.deps
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// What a running job can see: its own name and the outputs of its
/// dependencies.
pub struct JobCtx {
    pub(crate) name: String,
    pub(crate) dep_outputs: BTreeMap<String, Value>,
}

impl JobCtx {
    /// The running job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The output of dependency `name`, if declared and completed.
    pub fn dep(&self, name: &str) -> Option<&Value> {
        self.dep_outputs.get(name)
    }

    /// All dependency outputs, keyed by job name.
    pub fn deps(&self) -> &BTreeMap<String, Value> {
        &self.dep_outputs
    }
}
