//! Minimal glob matching for `--filter`: `*` matches any run of
//! characters, `?` matches exactly one. No character classes, no
//! separators — job names are flat.

/// Does `text` match `pattern`?
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Iterative matcher with single-star backtracking.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after *, text idx)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::glob_match;

    #[test]
    fn literals_and_wildcards() {
        assert!(glob_match("fig7", "fig7"));
        assert!(!glob_match("fig7", "fig8"));
        assert!(glob_match("fig*", "fig12"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("fig?", "fig7"));
        assert!(!glob_match("fig?", "fig12"));
        assert!(glob_match("*oil*", "mineral_oil_sweep"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-b-y"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "x"));
    }
}
