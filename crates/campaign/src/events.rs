//! Structured scheduler events, plus a human-readable progress
//! reporter. The engine emits every state transition through a
//! callback; consumers can render live progress, log to a file, or
//! ignore events entirely.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One scheduler state transition.
#[derive(Debug, Clone)]
pub enum Event {
    /// A job left the ready queue and began executing.
    Started {
        /// Job name.
        job: String,
    },
    /// A job was satisfied straight from the result cache.
    CacheHit {
        /// Job name.
        job: String,
        /// The content-addressed key that hit.
        key: String,
    },
    /// A corrupt cache entry for this job was quarantined to
    /// `<key>.poison`; the job re-runs as if the key had missed.
    CachePoisoned {
        /// Job name.
        job: String,
        /// The key whose entry was quarantined.
        key: String,
    },
    /// A job ran to completion.
    Finished {
        /// Job name.
        job: String,
        /// The key its result was stored under.
        key: String,
        /// Wall time of this run in milliseconds.
        wall_ms: u64,
        /// Number of attempts it took (1 = first try).
        attempts: u32,
    },
    /// An attempt failed and the job will be retried after a backoff.
    Retrying {
        /// Job name.
        job: String,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// The failure message.
        error: String,
        /// Backoff before the next attempt, in milliseconds.
        backoff_ms: u64,
    },
    /// A job exhausted its retries.
    Failed {
        /// Job name.
        job: String,
        /// Total attempts made.
        attempts: u32,
        /// The final failure message.
        error: String,
    },
    /// A job was skipped because a dependency failed or was skipped.
    Skipped {
        /// Job name.
        job: String,
        /// The dependency that caused the skip.
        because: String,
    },
}

impl Event {
    /// The job this event concerns.
    pub fn job(&self) -> &str {
        match self {
            Event::Started { job }
            | Event::CacheHit { job, .. }
            | Event::CachePoisoned { job, .. }
            | Event::Finished { job, .. }
            | Event::Retrying { job, .. }
            | Event::Failed { job, .. }
            | Event::Skipped { job, .. } => job,
        }
    }
}

/// Renders events as `[done/total]` progress lines on stderr.
pub struct ProgressPrinter {
    total: usize,
    done: AtomicUsize,
}

impl ProgressPrinter {
    /// A printer expecting `total` terminal events.
    pub fn new(total: usize) -> ProgressPrinter {
        ProgressPrinter {
            total,
            done: AtomicUsize::new(0),
        }
    }

    /// Handle one event (thread-safe).
    pub fn handle(&self, ev: &Event) {
        let line = match ev {
            Event::Started { .. } => return, // only report terminal transitions
            Event::CacheHit { job, key } => {
                let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                format!("[{n}/{}] {job}: cached ({key})", self.total)
            }
            // Informational, not terminal: the job goes on to execute.
            Event::CachePoisoned { job, key } => {
                format!("      {job}: corrupt cache entry quarantined ({key}.poison)")
            }
            Event::Finished {
                job,
                wall_ms,
                attempts,
                ..
            } => {
                let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                let retry = if *attempts > 1 {
                    format!(" after {attempts} attempts")
                } else {
                    String::new()
                };
                format!(
                    "[{n}/{}] {job}: done in {:.1}s{retry}",
                    self.total,
                    *wall_ms as f64 / 1000.0
                )
            }
            Event::Retrying {
                job,
                attempt,
                error,
                backoff_ms,
            } => format!(
                "      {job}: attempt {attempt} failed ({error}); retrying in {backoff_ms} ms"
            ),
            Event::Failed {
                job,
                attempts,
                error,
            } => {
                let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                format!(
                    "[{n}/{}] {job}: FAILED after {attempts} attempts: {error}",
                    self.total
                )
            }
            Event::Skipped { job, because } => {
                let n = self.done.fetch_add(1, Ordering::Relaxed) + 1;
                format!(
                    "[{n}/{}] {job}: skipped ({because} did not complete)",
                    self.total
                )
            }
        };
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{line}");
    }
}
