//! Content-addressed on-disk result cache: one JSON file per cache
//! key under `<dir>/<key>.json`. Entries self-describe (job name,
//! config, output, wall time), so a cache directory is inspectable
//! with nothing but `cat`. Corrupt or unreadable entries are treated
//! as misses, never as errors — a killed run can always resume.

use crate::fsutil::atomic_write;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// One cached job result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The job that produced this entry.
    pub job: String,
    /// The job's full config (provenance; the key already commits to it).
    pub config: Value,
    /// The job's output payload.
    pub output: Value,
    /// Wall time of the producing run, in milliseconds.
    pub wall_ms: u64,
}

/// A cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating if needed) a cache at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache { dir })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given key maps to.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Look up a key. Missing or corrupt entries are `None`.
    pub fn load(&self, key: &str) -> Option<CacheEntry> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    /// Store an entry under `key` (atomic; concurrent writers of the
    /// same key are idempotent because the content is identical).
    pub fn store(&self, key: &str, entry: &CacheEntry) -> io::Result<PathBuf> {
        let path = self.path_for(key);
        let json = serde_json::to_string_pretty(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_write(&path, json.as_bytes())?;
        Ok(path)
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_cache(tag: &str) -> Cache {
        let d =
            std::env::temp_dir().join(format!("immersion-cache-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&d);
        Cache::open(d).unwrap()
    }

    #[test]
    fn round_trips_entries() {
        let cache = scratch_cache("rt");
        let entry = CacheEntry {
            job: "fig7".into(),
            config: serde_json::from_str(r#"{"grid": [8, 8]}"#).unwrap(),
            output: serde_json::from_str(r#"[1, 2, 3]"#).unwrap(),
            wall_ms: 42,
        };
        assert!(cache.load("abc").is_none());
        cache.store("abc", &entry).unwrap();
        let back = cache.load("abc").unwrap();
        assert_eq!(back.job, "fig7");
        assert_eq!(back.wall_ms, 42);
        assert_eq!(back.output, entry.output);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = scratch_cache("corrupt");
        std::fs::write(cache.path_for("bad"), b"{not json").unwrap();
        assert!(cache.load("bad").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
