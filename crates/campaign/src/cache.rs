//! Content-addressed on-disk result cache: one JSON file per cache
//! key under `<dir>/<key>.json`. Entries self-describe (job name,
//! config, output, wall time), so a cache directory is inspectable
//! with nothing but `cat`.
//!
//! A cache must stay safe to resume from after *any* interruption, so
//! unreadable state is handled in degrees: a missing entry is a miss;
//! a present-but-unparsable entry (a torn or garbage write that
//! somehow reached the final path) is **quarantined** — renamed to
//! `<key>.poison`, preserving the evidence — and then treated as a
//! miss, so it can never satisfy a hit and never blocks recomputation;
//! orphaned temp files from a mid-write kill are swept on open.

use crate::fsutil::{apply_write_fault, atomic_write};
use immersion_faultsim as faultsim;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// One cached job result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntry {
    /// The job that produced this entry.
    pub job: String,
    /// The job's full config (provenance; the key already commits to it).
    pub config: Value,
    /// The job's output payload.
    pub output: Value,
    /// Wall time of the producing run, in milliseconds.
    pub wall_ms: u64,
}

/// What a cache probe found.
#[derive(Debug)]
pub enum Lookup {
    /// A valid entry.
    Hit(Box<CacheEntry>),
    /// No entry on disk.
    Miss,
    /// An entry was present but unparsable; it has been quarantined to
    /// `<key>.poison` and the key now reads as a miss.
    Poisoned,
}

/// A cache directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (creating if needed) a cache at `dir`. Sweeps temp files
    /// orphaned by a previous run's mid-write crash — they are
    /// droppings of the atomic-write protocol, never valid entries.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if let Ok(rd) = std::fs::read_dir(&dir) {
            for entry in rd.filter_map(Result::ok) {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with('.') && name.contains(".tmp.") {
                    crate::fsutil::remove_best_effort(&entry.path());
                }
            }
        }
        Ok(Cache { dir })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a given key maps to.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// The quarantine file a corrupt entry for `key` is moved to.
    pub fn poison_path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.poison"))
    }

    /// Probe a key, distinguishing a clean miss from a quarantined
    /// corrupt entry (which this call moves to `<key>.poison`).
    pub fn lookup(&self, key: &str) -> Lookup {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => return Lookup::Miss,
        };
        match serde_json::from_slice::<CacheEntry>(&bytes) {
            Ok(entry) => {
                // A successful read observes the publishing store's
                // atomic rename; tell the sanitizer so cross-thread
                // reuse of a cached entry is ordered after its write.
                immersion_sanitizer::sync_read(
                    "campaign::Cache.entry",
                    immersion_sanitizer::key_id(key),
                );
                Lookup::Hit(Box::new(entry))
            }
            Err(_) => {
                // Quarantine, preserving the corrupt bytes for
                // inspection. If even the rename fails, fall back to
                // deleting so the poison can never be read as a hit.
                if std::fs::rename(&path, self.poison_path_for(key)).is_err() {
                    crate::fsutil::remove_best_effort(&path);
                }
                Lookup::Poisoned
            }
        }
    }

    /// Look up a key. Missing or quarantined entries are `None`.
    pub fn load(&self, key: &str) -> Option<CacheEntry> {
        match self.lookup(key) {
            Lookup::Hit(entry) => Some(*entry),
            Lookup::Miss | Lookup::Poisoned => None,
        }
    }

    /// Store an entry under `key` (atomic; concurrent writers of the
    /// same key are idempotent because the content is identical).
    pub fn store(&self, key: &str, entry: &CacheEntry) -> io::Result<PathBuf> {
        let path = self.path_for(key);
        let json = serde_json::to_string_pretty(entry)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if let Some(result) = apply_write_fault(faultsim::site::CACHE_WRITE, &path, json.as_bytes())
        {
            return result.map(|()| path);
        }
        atomic_write(&path, json.as_bytes())?;
        // Publication point: the rename inside `atomic_write` is what
        // a later `lookup` of this key synchronizes with.
        immersion_sanitizer::sync_write("campaign::Cache.entry", immersion_sanitizer::key_id(key));
        Ok(path)
    }

    /// Number of entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of quarantined (`.poison`) entries currently on disk.
    pub fn quarantined(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "poison"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_cache(tag: &str) -> Cache {
        let d =
            std::env::temp_dir().join(format!("immersion-cache-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&d);
        Cache::open(d).unwrap()
    }

    #[test]
    fn round_trips_entries() {
        let cache = scratch_cache("rt");
        let entry = CacheEntry {
            job: "fig7".into(),
            config: serde_json::from_str(r#"{"grid": [8, 8]}"#).unwrap(),
            output: serde_json::from_str(r#"[1, 2, 3]"#).unwrap(),
            wall_ms: 42,
        };
        assert!(cache.load("abc").is_none());
        cache.store("abc", &entry).unwrap();
        let back = cache.load("abc").unwrap();
        assert_eq!(back.job, "fig7");
        assert_eq!(back.wall_ms, 42);
        assert_eq!(back.output, entry.output);
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = scratch_cache("corrupt");
        std::fs::write(cache.path_for("bad"), b"{not json").unwrap();
        assert!(cache.load("bad").is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recomputable() {
        let cache = scratch_cache("poison");
        std::fs::write(cache.path_for("bad"), b"{\"job\": \"fig7\", \"conf").unwrap();
        assert!(matches!(cache.lookup("bad"), Lookup::Poisoned));
        // The evidence moved aside; the key is now a clean miss.
        assert!(cache.poison_path_for("bad").exists());
        assert!(!cache.path_for("bad").exists());
        assert!(matches!(cache.lookup("bad"), Lookup::Miss));
        assert_eq!(cache.quarantined(), 1);
        // Storing a fresh entry over a quarantined key works normally.
        let entry = CacheEntry {
            job: "fig7".into(),
            config: Value::Null,
            output: Value::U64(1),
            wall_ms: 1,
        };
        cache.store("bad", &entry).unwrap();
        assert!(matches!(cache.lookup("bad"), Lookup::Hit(_)));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn open_sweeps_orphaned_temp_files() {
        let cache = scratch_cache("sweep");
        let orphan = cache.dir().join(".abc.json.tmp.999.0");
        std::fs::write(&orphan, b"half-written").unwrap();
        let reopened = Cache::open(cache.dir()).unwrap();
        assert!(!orphan.exists(), "orphaned temp file must be swept");
        assert!(reopened.is_empty());
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
