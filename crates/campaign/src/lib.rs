//! # immersion-campaign
//!
//! A deterministic experiment-orchestration engine. Each experiment is
//! a [`Job`]: a stable name, a serializable config that *is* its cache
//! identity, dependency edges, and a work closure producing a JSON
//! payload. A [`Campaign`] schedules ready jobs across a worker pool,
//! stores every successful result in a content-addressed on-disk
//! cache, and therefore resumes instantly after partial failures or a
//! mid-run kill: anything already computed for the same config (and
//! the same upstream results) is a cache hit.
//!
//! ```
//! use immersion_campaign::{Campaign, Job, RunOptions};
//! use serde_json::Value;
//!
//! let mut c = Campaign::new();
//! c.add(Job::new("double", &21u64, |_| Ok(Value::U64(42))));
//! c.add(Job::new("report", &"sum", |ctx| {
//!     Ok(ctx.dep("double").cloned().unwrap())
//! }).after("double"));
//! let report = c.run(&RunOptions::default(), &|_| {}).unwrap();
//! assert!(report.all_ok());
//! assert_eq!(report.output("report"), Some(&Value::U64(42)));
//! ```

pub mod cache;
pub mod events;
pub mod fsutil;
pub mod glob;
pub mod hash;
mod job;
pub mod manifest;
mod scheduler;

pub use cache::{Cache, CacheEntry, Lookup};
pub use events::{Event, ProgressPrinter};
pub use job::{Job, JobCtx};
pub use manifest::Manifest;
pub use scheduler::{CampaignError, CampaignReport, JobRecord, JobStatus, RunOptions};

/// A set of jobs plus their dependency edges; run it with
/// [`Campaign::run`].
#[derive(Default)]
pub struct Campaign {
    jobs: Vec<Job>,
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Campaign {
        Campaign::default()
    }

    /// Register a job. Names must be unique (checked at run time so
    /// registration can stay infallible and chainable).
    pub fn add(&mut self, job: Job) -> &mut Campaign {
        self.jobs.push(job);
        self
    }

    /// Registered job names, in registration order.
    pub fn job_names(&self) -> impl Iterator<Item = &str> {
        self.jobs.iter().map(Job::name)
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Is the campaign empty?
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Execute the campaign. `on_event` observes every scheduler
    /// transition (pass `&|_| {}` to ignore them).
    pub fn run(
        &self,
        opts: &RunOptions,
        on_event: &(dyn Fn(&Event) + Sync),
    ) -> Result<CampaignReport, CampaignError> {
        scheduler::run(&self.jobs, opts, on_event)
    }
}
