//! The campaign scheduler: Kahn-validated dependency graph, a scoped
//! worker pool pulling from a ready queue, per-job retry with capped
//! exponential backoff, and content-addressed caching of every
//! successful result.

use crate::cache::{Cache, CacheEntry, Lookup};
use crate::events::Event;
use crate::glob::glob_match;
use crate::hash::cache_key;
use crate::job::{Job, JobCtx};
use immersion_faultsim as faultsim;
use immersion_sanitizer::{TrackedCondvar, TrackedMutex};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// How a campaign run should execute.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Result-cache directory; `None` disables persistence entirely.
    pub cache_dir: Option<PathBuf>,
    /// Consult existing cache entries? When `false`, jobs always
    /// re-run (fresh results are still stored).
    pub use_cache: bool,
    /// Extra attempts after the first failure.
    pub retries: u32,
    /// First retry backoff in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Glob over job names; selected jobs pull in their transitive
    /// dependencies.
    pub filter: Option<String>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            workers: 0,
            cache_dir: None,
            use_cache: true,
            retries: 2,
            backoff_base_ms: 100,
            backoff_cap_ms: 2000,
            filter: None,
        }
    }
}

/// Why a campaign could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// Two jobs share a name.
    DuplicateJob(String),
    /// A job depends on a name that was never registered.
    UnknownDependency {
        /// The depending job.
        job: String,
        /// The missing dependency.
        dep: String,
    },
    /// The dependency graph has a cycle through these jobs.
    Cycle(Vec<String>),
    /// The cache directory could not be opened.
    Io(String),
    /// A scheduler invariant was violated (a bug, not a user error).
    Internal(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::DuplicateJob(name) => write!(f, "duplicate job name: {name}"),
            CampaignError::UnknownDependency { job, dep } => {
                write!(f, "job {job} depends on unknown job {dep}")
            }
            CampaignError::Cycle(names) => {
                write!(f, "dependency cycle through: {}", names.join(", "))
            }
            CampaignError::Io(e) => write!(f, "cache I/O error: {e}"),
            CampaignError::Internal(e) => write!(f, "internal scheduler error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to completion this run.
    Completed,
    /// Satisfied from the result cache.
    Cached,
    /// Exhausted its retries.
    Failed,
    /// Not run because a dependency did not complete.
    Skipped,
}

/// The record a finished campaign keeps for each selected job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job name.
    pub name: String,
    /// Content-addressed cache key (absent for skipped jobs).
    pub key: Option<String>,
    /// Terminal state.
    pub status: JobStatus,
    /// Wall time spent on the job this run, in milliseconds.
    pub wall_ms: u64,
    /// Attempts made (0 for cached or skipped jobs).
    pub attempts: u32,
    /// Final error, for failed jobs.
    pub error: Option<String>,
}

/// The outcome of a campaign run.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-job records, in registration order (selected jobs only).
    pub jobs: Vec<JobRecord>,
    /// Outputs of successful jobs, keyed by name.
    pub outputs: BTreeMap<String, Value>,
    /// Total wall time in milliseconds.
    pub wall_ms: u64,
    /// Jobs satisfied from the cache.
    pub cache_hits: usize,
    /// Jobs that actually executed.
    pub cache_misses: usize,
    /// Jobs that exhausted retries.
    pub failed: usize,
    /// Jobs skipped due to upstream failure.
    pub skipped: usize,
}

impl CampaignReport {
    /// The output of job `name`, if it succeeded.
    pub fn output(&self, name: &str) -> Option<&Value> {
        self.outputs.get(name)
    }

    /// Fraction of non-skipped jobs served from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let denom = self.cache_hits + self.cache_misses;
        if denom == 0 {
            0.0
        } else {
            self.cache_hits as f64 / denom as f64
        }
    }

    /// Did every selected job succeed (run or cached)?
    pub fn all_ok(&self) -> bool {
        self.failed == 0 && self.skipped == 0
    }
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

struct State {
    ready: VecDeque<usize>,
    /// Unsatisfied selected dependencies per job.
    pending: Vec<usize>,
    records: Vec<Option<JobRecord>>,
    outputs: Vec<Option<Value>>,
    keys: Vec<Option<String>>,
    remaining: usize,
}

struct Shared<'a> {
    jobs: &'a [Job],
    dependents: Vec<Vec<usize>>,
    state: TrackedMutex<State>,
    wake: TrackedCondvar,
}

/// Select the jobs to run: those matching `filter` (all, if none)
/// plus their transitive dependencies. Returns a selected flag per
/// job index.
fn select(jobs: &[Job], by_name: &HashMap<&str, usize>, filter: Option<&str>) -> Vec<bool> {
    let mut selected = vec![false; jobs.len()];
    let mut stack: Vec<usize> = match filter {
        None => (0..jobs.len()).collect(),
        Some(pat) => jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| glob_match(pat, &j.name))
            .map(|(i, _)| i)
            .collect(),
    };
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut selected[i], true) {
            continue;
        }
        for dep in &jobs[i].deps {
            // Dependencies were validated before selection; unknown
            // names simply contribute nothing here.
            if let Some(&di) = by_name.get(dep.as_str()) {
                stack.push(di);
            }
        }
    }
    selected
}

/// Kahn's algorithm over the selected subgraph; errors with the names
/// still unprocessed if a cycle exists.
fn check_acyclic(
    jobs: &[Job],
    by_name: &HashMap<&str, usize>,
    selected: &[bool],
) -> Result<(), CampaignError> {
    let mut indegree: Vec<usize> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| if selected[i] { j.deps.len() } else { 0 })
        .collect();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    for (i, j) in jobs.iter().enumerate() {
        if selected[i] {
            for dep in &j.deps {
                if let Some(&di) = by_name.get(dep.as_str()) {
                    dependents[di].push(i);
                }
            }
        }
    }
    let mut queue: VecDeque<usize> = (0..jobs.len())
        .filter(|&i| selected[i] && indegree[i] == 0)
        .collect();
    let mut done = vec![false; jobs.len()];
    while let Some(i) = queue.pop_front() {
        done[i] = true;
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    let stuck: Vec<String> = (0..jobs.len())
        .filter(|&i| selected[i] && !done[i])
        .map(|i| jobs[i].name.clone())
        .collect();
    if stuck.is_empty() {
        Ok(())
    } else {
        Err(CampaignError::Cycle(stuck))
    }
}

pub(crate) fn run(
    jobs: &[Job],
    opts: &RunOptions,
    on_event: &(dyn Fn(&Event) + Sync),
) -> Result<CampaignReport, CampaignError> {
    let started = Instant::now();

    // --- Validate the graph.
    let mut by_name: HashMap<&str, usize> = HashMap::new();
    for (i, j) in jobs.iter().enumerate() {
        if by_name.insert(j.name.as_str(), i).is_some() {
            return Err(CampaignError::DuplicateJob(j.name.clone()));
        }
    }
    for j in jobs {
        for dep in &j.deps {
            if !by_name.contains_key(dep.as_str()) {
                return Err(CampaignError::UnknownDependency {
                    job: j.name.clone(),
                    dep: dep.clone(),
                });
            }
            if dep == &j.name {
                return Err(CampaignError::Cycle(vec![j.name.clone()]));
            }
        }
    }
    let selected = select(jobs, &by_name, opts.filter.as_deref());
    check_acyclic(jobs, &by_name, &selected)?;

    let cache = match &opts.cache_dir {
        Some(dir) => Some(Cache::open(dir).map_err(|e| CampaignError::Io(e.to_string()))?),
        None => None,
    };

    // --- Build scheduler state.
    let n_selected = selected.iter().filter(|&&s| s).count();
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    let mut pending = vec![0usize; jobs.len()];
    for (i, j) in jobs.iter().enumerate() {
        if selected[i] {
            pending[i] = j.deps.len();
            for dep in &j.deps {
                if let Some(&di) = by_name.get(dep.as_str()) {
                    dependents[di].push(i);
                }
            }
        }
    }
    let ready: VecDeque<usize> = (0..jobs.len())
        .filter(|&i| selected[i] && pending[i] == 0)
        .collect();
    let shared = Shared {
        jobs,
        dependents,
        state: TrackedMutex::new(
            "campaign::state",
            State {
                ready,
                pending,
                records: vec![None; jobs.len()],
                outputs: vec![None; jobs.len()],
                keys: vec![None; jobs.len()],
                remaining: n_selected,
            },
        ),
        wake: TrackedCondvar::new(),
    };

    let workers = match opts.workers {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
    .min(n_selected.max(1));

    // Sanitizer fork/join: each scoped worker is a task of this
    // region, so accesses before the scope happen-before the workers
    // and worker effects happen-before the report assembly below.
    let san = immersion_sanitizer::fork();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                immersion_sanitizer::task_start(san);
                worker(&shared, opts, cache.as_ref(), on_event);
                immersion_sanitizer::task_end(san);
            });
        }
    });
    immersion_sanitizer::join(san);
    // Every worker joined above, so the per-run state cell is dead;
    // retire it so a later run reusing the allocation starts clean.
    immersion_sanitizer::retire("campaign::state", immersion_sanitizer::obj_id(&shared));

    // --- Assemble the report.
    //
    // Job panics are caught inside the workers, so a poisoned lock can
    // only mean a scheduler bug; the state itself is still coherent
    // (every mutation is a few atomic-in-spirit field writes), so
    // recover it rather than cascading the panic.
    let state = shared
        .state
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut report = CampaignReport {
        jobs: Vec::with_capacity(n_selected),
        outputs: BTreeMap::new(),
        wall_ms: started.elapsed().as_millis() as u64,
        cache_hits: 0,
        cache_misses: 0,
        failed: 0,
        skipped: 0,
    };
    for (i, &sel) in selected.iter().enumerate() {
        if !sel {
            continue;
        }
        let Some(record) = state.records[i].clone() else {
            return Err(CampaignError::Internal(format!(
                "selected job `{}` finished without a terminal record",
                jobs[i].name
            )));
        };
        match record.status {
            JobStatus::Completed => report.cache_misses += 1,
            JobStatus::Cached => report.cache_hits += 1,
            JobStatus::Failed => report.failed += 1,
            JobStatus::Skipped => report.skipped += 1,
        }
        if let Some(out) = &state.outputs[i] {
            report.outputs.insert(record.name.clone(), out.clone());
        }
        report.jobs.push(record);
    }
    Ok(report)
}

fn worker(
    shared: &Shared<'_>,
    opts: &RunOptions,
    cache: Option<&Cache>,
    on_event: &(dyn Fn(&Event) + Sync),
) {
    loop {
        // --- Claim a ready job (or exit when the campaign is done).
        let idx;
        let resolved;
        {
            // Job panics never poison this lock (they are caught below,
            // outside the critical section), so recover rather than
            // amplifying a scheduler bug into a worker crash.
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            immersion_sanitizer::shared_write(
                "campaign::state",
                immersion_sanitizer::obj_id(shared),
            );
            idx = loop {
                if let Some(i) = st.ready.pop_front() {
                    break i;
                }
                if st.remaining == 0 {
                    return;
                }
                st = shared
                    .wake
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            };
            let job = &shared.jobs[idx];
            // A job only becomes ready once every dependency has a
            // terminal key and output; a gap is a scheduler bug, which
            // we surface as a job failure instead of a panic.
            resolved = job
                .deps
                .iter()
                .map(|d| {
                    let di = shared
                        .jobs
                        .iter()
                        .position(|j| &j.name == d)
                        .ok_or_else(|| format!("dependency `{d}` is not in the job list"))?;
                    let key = st.keys[di]
                        .clone()
                        .ok_or_else(|| format!("dependency `{d}` finished without a cache key"))?;
                    let out = st.outputs[di]
                        .clone()
                        .ok_or_else(|| format!("dependency `{d}` finished without an output"))?;
                    Ok((d.clone(), key, out))
                })
                .collect::<Result<Vec<(String, String, Value)>, String>>();
        }

        let job = &shared.jobs[idx];
        let deps = match resolved {
            Ok(deps) => deps,
            Err(error) => {
                on_event(&Event::Failed {
                    job: job.name.clone(),
                    attempts: 0,
                    error: error.clone(),
                });
                let record = JobRecord {
                    name: job.name.clone(),
                    key: None,
                    status: JobStatus::Failed,
                    wall_ms: 0,
                    attempts: 0,
                    error: Some(error),
                };
                finish(shared, idx, record, None, on_event);
                continue;
            }
        };
        let dep_keys: Vec<(String, String)> = deps
            .iter()
            .map(|(d, k, _)| (d.clone(), k.clone()))
            .collect();
        let ctx = JobCtx {
            name: job.name.clone(),
            dep_outputs: deps.into_iter().map(|(d, _, o)| (d, o)).collect(),
        };
        let key = cache_key(&job.config, &dep_keys);

        // --- Cache probe.
        if opts.use_cache {
            match cache.map(|c| c.lookup(&key)) {
                Some(Lookup::Hit(entry)) => {
                    on_event(&Event::CacheHit {
                        job: job.name.clone(),
                        key: key.clone(),
                    });
                    let record = JobRecord {
                        name: job.name.clone(),
                        key: Some(key),
                        status: JobStatus::Cached,
                        wall_ms: 0,
                        attempts: 0,
                        error: None,
                    };
                    finish(shared, idx, record, Some(entry.output), on_event);
                    continue;
                }
                // A corrupt entry was quarantined; surface that and
                // fall through to execute as on a miss.
                Some(Lookup::Poisoned) => on_event(&Event::CachePoisoned {
                    job: job.name.clone(),
                    key: key.clone(),
                }),
                Some(Lookup::Miss) | None => {}
            }
        }

        // --- Execute, with retries.
        on_event(&Event::Started {
            job: job.name.clone(),
        });
        let job_start = Instant::now();
        let max_attempts = opts.retries + 1;
        let mut outcome: Result<Value, String> = Err("job never ran".to_string());
        let mut attempts = 0;
        for attempt in 1..=max_attempts {
            attempts = attempt;
            // Fault hooks for the attempt itself: first attempts and
            // retries are distinct sites, and the injected outcome
            // (an Err or an unwinding panic) flows through the same
            // catch_unwind/retry machinery a real job failure would.
            let site = if attempt == 1 {
                faultsim::site::SCHED_SPAWN
            } else {
                faultsim::site::SCHED_RETRY
            };
            let injected = faultsim::probe(site);
            let result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(kind) = injected {
                    faultsim::act(site, kind)?;
                }
                (job.work)(&ctx)
            }));
            outcome = match result {
                Ok(r) => r,
                // as_ref() so we downcast the payload, not the Box.
                Err(panic) => Err(panic_message(panic.as_ref())),
            };
            if outcome.is_ok() {
                break;
            }
            if attempt < max_attempts {
                let backoff = (opts.backoff_base_ms << (attempt - 1)).min(opts.backoff_cap_ms);
                on_event(&Event::Retrying {
                    job: job.name.clone(),
                    attempt,
                    error: outcome.as_ref().err().cloned().unwrap_or_default(),
                    backoff_ms: backoff,
                });
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
            }
        }
        let wall_ms = job_start.elapsed().as_millis() as u64;

        match outcome {
            Ok(output) => {
                if let Some(c) = cache {
                    // Best-effort: a failed (or even panicking) store
                    // costs a future cache hit, not the result — the
                    // worker must survive it either way.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        let _ = c.store(
                            &key,
                            &CacheEntry {
                                job: job.name.clone(),
                                config: job.config.clone(),
                                output: output.clone(),
                                wall_ms,
                            },
                        );
                    }));
                }
                on_event(&Event::Finished {
                    job: job.name.clone(),
                    key: key.clone(),
                    wall_ms,
                    attempts,
                });
                let record = JobRecord {
                    name: job.name.clone(),
                    key: Some(key),
                    status: JobStatus::Completed,
                    wall_ms,
                    attempts,
                    error: None,
                };
                finish(shared, idx, record, Some(output), on_event);
            }
            Err(error) => {
                on_event(&Event::Failed {
                    job: job.name.clone(),
                    attempts,
                    error: error.clone(),
                });
                let record = JobRecord {
                    name: job.name.clone(),
                    key: Some(key),
                    status: JobStatus::Failed,
                    wall_ms,
                    attempts,
                    error: Some(error),
                };
                finish(shared, idx, record, None, on_event);
            }
        }
    }
}

/// Commit a terminal record: release dependents on success, cascade
/// skips on failure, wake waiting workers.
fn finish(
    shared: &Shared<'_>,
    idx: usize,
    record: JobRecord,
    output: Option<Value>,
    on_event: &(dyn Fn(&Event) + Sync),
) {
    assert!(idx < shared.jobs.len());
    let succeeded = matches!(record.status, JobStatus::Completed | JobStatus::Cached);
    let mut skip_events = Vec::new();
    {
        let mut st = shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        immersion_sanitizer::shared_write("campaign::state", immersion_sanitizer::obj_id(shared));
        st.keys[idx] = record.key.clone();
        st.records[idx] = Some(record);
        st.outputs[idx] = output;
        st.remaining -= 1;
        if succeeded {
            for &d in &shared.dependents[idx] {
                if st.records[d].is_some() {
                    continue; // already skipped via another dep
                }
                st.pending[d] -= 1;
                if st.pending[d] == 0 {
                    st.ready.push_back(d);
                }
            }
        } else {
            // Transitively skip everything downstream.
            let cause = shared.jobs[idx].name.clone();
            let mut stack = vec![(idx, cause)];
            while let Some((j, because)) = stack.pop() {
                for &d in &shared.dependents[j] {
                    if st.records[d].is_some() {
                        continue;
                    }
                    st.records[d] = Some(JobRecord {
                        name: shared.jobs[d].name.clone(),
                        key: None,
                        status: JobStatus::Skipped,
                        wall_ms: 0,
                        attempts: 0,
                        error: Some(format!("dependency {because} did not complete")),
                    });
                    st.remaining -= 1;
                    skip_events.push(Event::Skipped {
                        job: shared.jobs[d].name.clone(),
                        because: because.clone(),
                    });
                    stack.push((d, shared.jobs[d].name.clone()));
                }
            }
        }
    }
    for ev in &skip_events {
        on_event(ev);
    }
    shared.wake.notify_all();
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}
