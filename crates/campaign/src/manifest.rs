//! The machine-readable campaign manifest: what ran, from where, and
//! which artifacts each job produced. Written atomically so a
//! manifest on disk always describes a consistent campaign.

use crate::cache::Cache;
use crate::fsutil::atomic_write;
use crate::scheduler::{CampaignReport, JobStatus};
use serde::Serialize;
use std::io;
use std::path::Path;

/// Cache statistics for one run.
#[derive(Debug, Clone, Serialize)]
pub struct ManifestCacheStats {
    /// Jobs served from cache.
    pub hits: usize,
    /// Jobs that executed.
    pub misses: usize,
    /// hits / (hits + misses), 0 when nothing ran.
    pub hit_rate: f64,
}

/// One job's row in the manifest.
#[derive(Debug, Clone, Serialize)]
pub struct ManifestJob {
    /// Job name.
    pub name: String,
    /// Content-addressed cache key.
    pub key: Option<String>,
    /// Terminal status.
    pub status: JobStatus,
    /// Wall time this run, milliseconds.
    pub wall_ms: u64,
    /// Attempts made.
    pub attempts: u32,
    /// Final error, for failed jobs.
    pub error: Option<String>,
    /// Path of the cache entry backing this result, if cached to disk.
    pub cache_file: Option<String>,
    /// Result artifacts (e.g. CSV files) derived from this job's
    /// output, filled in by the caller that writes them.
    pub artifacts: Vec<String>,
}

/// The campaign manifest.
#[derive(Debug, Clone, Serialize)]
pub struct Manifest {
    /// Manifest format version.
    pub schema: u32,
    /// Total campaign wall time, milliseconds.
    pub wall_ms: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Cache statistics.
    pub cache: ManifestCacheStats,
    /// Per-job rows, in registration order.
    pub jobs: Vec<ManifestJob>,
}

impl Manifest {
    /// Build a manifest from a finished run.
    pub fn from_report(report: &CampaignReport, workers: usize, cache: Option<&Cache>) -> Manifest {
        Manifest {
            schema: 1,
            wall_ms: report.wall_ms,
            workers,
            cache: ManifestCacheStats {
                hits: report.cache_hits,
                misses: report.cache_misses,
                hit_rate: report.cache_hit_rate(),
            },
            jobs: report
                .jobs
                .iter()
                .map(|r| ManifestJob {
                    name: r.name.clone(),
                    key: r.key.clone(),
                    status: r.status,
                    wall_ms: r.wall_ms,
                    attempts: r.attempts,
                    error: r.error.clone(),
                    cache_file: match (&r.key, cache) {
                        (Some(k), Some(c)) => Some(c.path_for(k).to_string_lossy().into_owned()),
                        _ => None,
                    },
                    artifacts: Vec::new(),
                })
                .collect(),
        }
    }

    /// The canonical, machine-independent view of this manifest: the
    /// per-job results that define *what the campaign computed*, with
    /// everything incidental to *how this particular run went* dropped
    /// — wall times, attempt counts, worker count, absolute cache
    /// paths, hit/miss statistics — and `Cached` collapsed into
    /// `Completed`. Two runs that converged to the same results
    /// serialize byte-identically here, no matter how many retries,
    /// injected faults, workers, or cache hits separated them.
    pub fn canonical_json(&self) -> String {
        use serde_json::Value;
        use std::collections::BTreeMap;
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .map(|j| {
                let mut row = BTreeMap::new();
                row.insert("name".to_string(), Value::Str(j.name.clone()));
                row.insert(
                    "key".to_string(),
                    match &j.key {
                        Some(k) => Value::Str(k.clone()),
                        None => Value::Null,
                    },
                );
                let status = match j.status {
                    JobStatus::Completed | JobStatus::Cached => "ok",
                    JobStatus::Failed => "failed",
                    JobStatus::Skipped => "skipped",
                };
                row.insert("status".to_string(), Value::Str(status.to_string()));
                row.insert(
                    "error".to_string(),
                    match &j.error {
                        Some(e) => Value::Str(e.clone()),
                        None => Value::Null,
                    },
                );
                let artifacts: Vec<Value> = j
                    .artifacts
                    .iter()
                    .map(|a| {
                        let base = Path::new(a)
                            .file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_else(|| a.clone());
                        Value::Str(base)
                    })
                    .collect();
                row.insert("artifacts".to_string(), Value::Seq(artifacts));
                Value::Map(row)
            })
            .collect();
        let mut root = BTreeMap::new();
        root.insert("schema".to_string(), Value::U64(u64::from(self.schema)));
        root.insert("jobs".to_string(), Value::Seq(jobs));
        serde_json::to_string_pretty(&Value::Map(root)).unwrap_or_default()
    }

    /// Record that `job` produced the artifact at `path`.
    pub fn add_artifact(&mut self, job: &str, path: impl Into<String>) {
        if let Some(row) = self.jobs.iter_mut().find(|j| j.name == job) {
            row.artifacts.push(path.into());
        }
    }

    /// Write the manifest as pretty JSON, atomically.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        atomic_write(path, json.as_bytes())
    }
}
