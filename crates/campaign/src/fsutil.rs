//! Atomic file writes: write to a unique temporary file in the target
//! directory, then rename over the destination. A reader (or a
//! campaign resuming after a mid-write kill) never observes a
//! half-written artifact.
//!
//! Both phases carry fault-injection hooks
//! ([`FS_WRITE`](immersion_faultsim::site::FS_WRITE) before the temp
//! file is touched, [`FS_RENAME`](immersion_faultsim::site::FS_RENAME)
//! between `sync_all` and the rename), so the conformance suite can
//! manufacture exactly the power-cut artifacts this module exists to
//! contain: torn destination files, garbage bytes, and orphaned temp
//! files whose rename never happened.

use immersion_faultsim::{self as faultsim, FaultKind};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Best-effort removal of a temp or poisoned artifact. Absence is the
/// normal case; any other failure is logged rather than swallowed,
/// because a stranded temp file is indistinguishable from a genuine
/// crash artifact on the next resume.
pub(crate) fn remove_best_effort(path: &Path) {
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => eprintln!("warning: could not remove {}: {e}", path.display()),
    }
}

/// Write `bytes` to `path` atomically (temp file + rename). Creates
/// parent directories as needed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    if let Some(result) = apply_write_fault(faultsim::site::FS_WRITE, path, bytes) {
        return result;
    }
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let written = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = written {
        remove_best_effort(&tmp_path);
        return Err(e);
    }
    match faultsim::probe(faultsim::site::FS_RENAME) {
        Some(FaultKind::IoError) => {
            remove_best_effort(&tmp_path);
            return Err(faultsim::io_error(
                faultsim::site::FS_RENAME,
                FaultKind::IoError,
            ));
        }
        // The "process died between sync and rename" artifact: the
        // fully written temp file is deliberately left behind and the
        // destination never appears.
        Some(FaultKind::CrashSkip) => {
            return Err(faultsim::io_error(
                faultsim::site::FS_RENAME,
                FaultKind::CrashSkip,
            ));
        }
        Some(FaultKind::Panic) => faultsim::panic_now(faultsim::site::FS_RENAME),
        _ => {}
    }
    let renamed = std::fs::rename(&tmp_path, path);
    if renamed.is_err() {
        remove_best_effort(&tmp_path);
    }
    renamed
}

/// Consult a write-phase fault site for an operation that would place
/// `bytes` at `path`. `None` means proceed normally; `Some(result)` is
/// the injected outcome, with the destination left in whatever broken
/// state the fault kind dictates (a torn prefix, garbage bytes, or
/// untouched). Shared by [`atomic_write`], the cache's entry-write
/// site, and the serve layer's result-store write, so every
/// write-phase site manufactures identical artifacts.
pub fn apply_write_fault(site: &'static str, path: &Path, bytes: &[u8]) -> Option<io::Result<()>> {
    let kind = faultsim::probe(site)?;
    match kind {
        FaultKind::IoError | FaultKind::CrashSkip => Some(Err(faultsim::io_error(site, kind))),
        // A torn write bypasses the temp-file protocol entirely — this
        // is the artifact of a write that was *not* atomic — leaving a
        // prefix of the payload at the destination.
        FaultKind::TornWrite => {
            let (half, _) = bytes.split_at(bytes.len() / 2);
            Some(std::fs::write(path, half).and(Err(faultsim::io_error(site, kind))))
        }
        FaultKind::Garbage => Some(
            std::fs::write(path, b"\xff\xfeinjected garbage\x00")
                .and(Err(faultsim::io_error(site, kind))),
        ),
        FaultKind::Panic => faultsim::panic_now(site),
        // A solver-style kind has no meaning at a file write: proceed.
        FaultKind::Diverge => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("immersion-fsutil-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch_dir("basic");
        let path = dir.join("nested/out.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        let path = dir.join("out.txt");
        atomic_write(&path, b"data").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["out.txt"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
