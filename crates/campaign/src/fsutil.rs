//! Atomic file writes: write to a unique temporary file in the target
//! directory, then rename over the destination. A reader (or a
//! campaign resuming after a mid-write kill) never observes a
//! half-written artifact.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically (temp file + rename). Creates
/// parent directories as needed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("immersion-fsutil-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn writes_and_overwrites() {
        let dir = scratch_dir("basic");
        let path = dir.join("nested/out.txt");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leaves_no_temp_files_behind() {
        let dir = scratch_dir("clean");
        let path = dir.join("out.txt");
        atomic_write(&path, b"data").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["out.txt"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
