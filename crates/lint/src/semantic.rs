//! The interprocedural rules R6–R9, running on the AST, symbol table
//! and call graph.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R6   | no `pub fn` in `thermal`/`coolant`/`power`/`campaign` can reach a panic site |
//! | R7   | unit suffixes stay dimensionally consistent through arithmetic |
//! | R8   | every fn in the experiment module is reachable from CLI dispatch |
//! | R9   | no file I/O, `Command` spawn, or cross-crate solver call under a live lock |
//!
//! All four under-approximate on purpose: the call graph only has
//! edges that resolve uniquely (see [`crate::callgraph`]), so a
//! printed R6 call path is always a real path, and a silent R9 run
//! really means no blocking call was provably made under a lock.

use crate::ast::{leftmost, walk_stmts, Expr, FnDef, Stmt};
use crate::callgraph::{resolve_method_call, resolve_path_call, CallGraph};
use crate::determinism::{self, WallClockOk};
use crate::errflow;
use crate::lockorder::{self, LockGraph};
use crate::rules::{Rule, Violation, DIMENSIONLESS_SEGMENTS, UNIT_SEGMENTS};
use crate::symbols::{FnSym, SymbolTable};
use std::collections::HashSet;

/// Crates whose public functions must be panic-free (R6).
pub const R6_CRATES: &[&str] = &["thermal", "coolant", "power", "campaign", "serve"];

/// Crates R9 guards against calling while a scheduler lock is held.
const SOLVER_CRATES: &[&str] = &["thermal", "coolant", "power"];

/// The semantic pass over one set of sources: symbols + call graph.
#[derive(Debug)]
pub struct Semantic {
    /// Every function in the analyzed sources.
    pub table: SymbolTable,
    /// The resolved call graph.
    pub graph: CallGraph,
    /// Files that failed to lex or parse (the parser is expected to be
    /// total; any entry here fails CI).
    pub errors: Vec<String>,
    /// Per-file lines where `// lint: wall-clock-ok` suppresses an R10
    /// wall-clock finding (scanned from raw sources, since the lexer
    /// strips comments).
    pub wall_clock_ok: WallClockOk,
}

/// Build the semantic model from `(rel_path, source)` pairs.
pub fn analyze(sources: &[(String, String)]) -> Semantic {
    let (table, errors) = SymbolTable::build(sources);
    let graph = CallGraph::build(&table);
    let wall_clock_ok = determinism::collect_wall_clock_ok(sources);
    Semantic {
        table,
        graph,
        errors,
        wall_clock_ok,
    }
}

impl Semantic {
    /// Run R6–R12. `experiments_file` is the workspace-relative path of
    /// the experiment registry module (R8's scope).
    pub fn check_all(&self, experiments_file: &str) -> Vec<Violation> {
        let mut v = check_r6(&self.table, &self.graph);
        v.extend(check_r7(&self.table));
        v.extend(check_r8(&self.table, &self.graph, experiments_file));
        v.extend(check_r9(&self.table, &self.graph));
        v.extend(determinism::check_r10(
            &self.table,
            &self.graph,
            &self.wall_clock_ok,
        ));
        v.extend(lockorder::check_r11(&self.table, &self.graph).0);
        v.extend(errflow::check_r12(&self.table));
        v
    }

    /// The R11 lock-acquisition-order graph (for `--emit-lockgraph`).
    pub fn lock_graph(&self) -> LockGraph {
        lockorder::check_r11(&self.table, &self.graph).1
    }
}

// ---------------------------------------------------------------------------
// R6: panic reachability
// ---------------------------------------------------------------------------

/// A panic site local to one function body.
#[derive(Debug, Clone)]
struct PanicSite {
    line: u32,
    desc: String,
}

/// Flag every `pub fn` in [`R6_CRATES`] from which a panic site is
/// reachable through the call graph, printing the shortest call path.
pub fn check_r6(table: &SymbolTable, graph: &CallGraph) -> Vec<Violation> {
    let sites: Vec<Option<PanicSite>> = table
        .fns
        .iter()
        .map(|sym| first_panic_site(&sym.def))
        .collect();
    let mut out = Vec::new();
    for sym in &table.fns {
        if !sym.is_pub() || !R6_CRATES.contains(&sym.krate.as_str()) {
            continue;
        }
        let parent = graph.reachable(&[sym.id]);
        let mut hits: Vec<usize> = parent
            .keys()
            .copied()
            .filter(|id| sites[*id].is_some())
            .collect();
        hits.sort_by_key(|&id| (CallGraph::path_to(&parent, id).len(), id));
        let Some(&target) = hits.first() else {
            continue;
        };
        let path: Vec<String> = CallGraph::path_to(&parent, target)
            .into_iter()
            .map(|id| table.fns[id].display())
            .collect();
        let site = sites[target].clone().unwrap_or(PanicSite {
            line: 0,
            desc: String::new(),
        });
        out.push(Violation {
            rule: Rule::R6,
            file: sym.file.clone(),
            line: sym.def.line,
            msg: format!(
                "pub fn `{}` can reach a panic site: {} at {}:{} (call path: {})",
                sym.qual_name(),
                site.desc,
                table.fns[target].file,
                site.line,
                path.join(" -> ")
            ),
        });
    }
    out
}

/// The earliest panic site in a function body, if any: `panic!`-family
/// macros, `.unwrap()`/`.expect()`, or indexing with an unguarded raw
/// parameter.
fn first_panic_site(def: &FnDef) -> Option<PanicSite> {
    let body = def.body.as_ref()?;
    let params: HashSet<&str> = def
        .params
        .iter()
        .map(|p| p.name.as_str())
        .filter(|n| *n != "self" && *n != "_")
        .collect();
    let guarded = guarded_params(body, &params);
    let mut best: Option<PanicSite> = None;
    walk_stmts(body, &mut |e| {
        let hit = match e {
            Expr::Macro { name, line, .. }
                if matches!(
                    name.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                Some(PanicSite {
                    line: *line,
                    desc: format!("{name}! macro"),
                })
            }
            Expr::Method { name, line, .. } if name == "unwrap" || name == "expect" => {
                Some(PanicSite {
                    line: *line,
                    desc: format!(".{name}() call"),
                })
            }
            Expr::Index { index, line, .. } => params
                .iter()
                .find(|p| !guarded.contains(**p) && expr_mentions(index, p))
                .map(|p| PanicSite {
                    line: *line,
                    desc: format!("indexing with unguarded parameter `{p}`"),
                }),
            _ => None,
        };
        if let Some(h) = hit {
            if best.as_ref().is_none_or(|b| h.line < b.line) {
                best = Some(h);
            }
        }
    });
    best
}

/// Parameters that appear under a bounds guard anywhere in the body: a
/// comparison, an `assert!`-family macro, `.get(…)`, or a clamp
/// (`.min`/`.max`/`.clamp`).
fn guarded_params<'a>(body: &[Stmt], params: &HashSet<&'a str>) -> HashSet<&'a str> {
    let mut guarded = HashSet::new();
    walk_stmts(body, &mut |e| match e {
        Expr::Binary { op, lhs, rhs, .. }
            if matches!(op.as_str(), "<" | "<=" | ">" | ">=" | "==" | "!=") =>
        {
            for p in params.iter() {
                if expr_mentions(lhs, p) || expr_mentions(rhs, p) {
                    guarded.insert(*p);
                }
            }
        }
        Expr::Macro { name, args, .. }
            if name.starts_with("assert") || name.starts_with("debug_assert") =>
        {
            for p in params.iter() {
                if args.iter().any(|a| expr_mentions(a, p)) {
                    guarded.insert(*p);
                }
            }
        }
        Expr::Method {
            name, recv, args, ..
        } if matches!(name.as_str(), "get" | "get_mut" | "min" | "max" | "clamp") => {
            for p in params.iter() {
                if expr_mentions(recv, p) || args.iter().any(|a| expr_mentions(a, p)) {
                    guarded.insert(*p);
                }
            }
        }
        _ => {}
    });
    guarded
}

/// Does `e` mention the plain identifier `name` anywhere?
fn expr_mentions(e: &Expr, name: &str) -> bool {
    let mut found = false;
    crate::ast::walk_expr(e, &mut |x| {
        if let Expr::Path { segs, .. } = x {
            if segs.len() == 1 && segs[0] == name {
                found = true;
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// R7: unit-dimension inference
// ---------------------------------------------------------------------------

/// The inferred dimension of an operand, as far as naming tells us.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tail {
    /// A compound unit suffix like `w`, `m2`, `w_per_m_k`.
    Unit(String),
    /// A raw float literal.
    Float,
    /// Unknown or dimensionless.
    Other,
}

/// Propagate the R2 unit-suffix grammar through arithmetic in the
/// physics crates: mismatched additive operands, raw float literals
/// combined additively with suffixed operands, and `let` bindings whose
/// name claims a dimension a product/quotient cannot produce.
pub fn check_r7(table: &SymbolTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for sym in &table.fns {
        if !crate::R2_CRATES.iter().any(|c| sym.file.starts_with(c)) {
            continue;
        }
        let Some(body) = &sym.def.body else { continue };
        // Additive checks over every expression. The walker tracks
        // whether a node sits in the right-assoc chain directly under
        // a multiplicative operator (the parser has no precedence, so
        // `k * a + b` parses as `k * (a + b)` — the inner `+`'s left
        // operand is really scaled by `k` and must not be paired).
        for s in body {
            match s {
                Stmt::Let { init: Some(e), .. } => check_additive(sym, e, false, &mut out),
                Stmt::Let { .. } => {}
                Stmt::Expr(e) => check_additive(sym, e, false, &mut out),
            }
        }
        // `let name_u = a * b` / `a / b` re-dimension checks.
        for_each_stmt(body, &mut |s| {
            let Stmt::Let {
                names,
                init: Some(init),
                line,
                ..
            } = s
            else {
                return;
            };
            let [name] = names.as_slice() else { return };
            let Some(nt) = unit_tail(name) else { return };
            let Expr::Binary { op, lhs, rhs, .. } = init else {
                return;
            };
            let r = leftmost(rhs);
            let pairs: &[(&Expr, &Expr)] = match op.as_str() {
                "*" => &[(lhs, r), (r, lhs)],
                "/" => &[(lhs, r)],
                _ => return,
            };
            for (same, other) in pairs {
                if tail_of(same) == Tail::Unit(nt.clone()) {
                    if let Tail::Unit(o) = tail_of(other) {
                        out.push(Violation {
                            rule: Rule::R7,
                            file: sym.file.clone(),
                            line: *line,
                            msg: format!(
                                "`let {name}` claims `_{nt}` but the initializer `{op}`s a \
                                 `_{nt}` operand by a `_{o}` operand — the result is not `_{nt}`"
                            ),
                        });
                        return;
                    }
                }
            }
        });
    }
    out
}

/// Walk an expression flagging dimension-mixing additive operators.
/// `contaminated` marks nodes whose left operand is really the tail of
/// an enclosing multiplicative chain (flat right-assoc parsing), where
/// pairing would be wrong.
fn check_additive(sym: &FnSym, e: &Expr, contaminated: bool, out: &mut Vec<Violation>) {
    if let Expr::Binary { op, lhs, rhs, line } = e {
        let additive = matches!(op.as_str(), "+" | "-" | "+=" | "-=");
        if additive && !contaminated {
            let l = tail_of(lhs);
            let r = adjacent_operand(rhs).map_or(Tail::Other, tail_of);
            match (&l, &r) {
                (Tail::Unit(a), Tail::Unit(b)) if a != b => out.push(Violation {
                    rule: Rule::R7,
                    file: sym.file.clone(),
                    line: *line,
                    msg: format!(
                        "`{op}` combines `_{a}` with `_{b}` in `{}` — convert to a \
                         common unit first",
                        sym.qual_name()
                    ),
                }),
                (Tail::Unit(a), Tail::Float) | (Tail::Float, Tail::Unit(a)) => {
                    out.push(Violation {
                        rule: Rule::R7,
                        file: sym.file.clone(),
                        line: *line,
                        msg: format!(
                            "raw float literal combined (`{op}`) with a `_{a}` operand in \
                             `{}` — bind the constant to a unit-suffixed name",
                            sym.qual_name()
                        ),
                    })
                }
                _ => {}
            }
        }
        let mult = matches!(op.as_str(), "*" | "/" | "%" | "*=" | "/=" | "%=");
        check_additive(sym, lhs, false, out);
        check_additive(sym, rhs, mult, out);
        return;
    }
    // Every other variant: recurse into children with a clean slate.
    match e {
        Expr::Call { func, args, .. } => {
            check_additive(sym, func, false, out);
            for a in args {
                check_additive(sym, a, false, out);
            }
        }
        Expr::Method { recv, args, .. } => {
            check_additive(sym, recv, false, out);
            for a in args {
                check_additive(sym, a, false, out);
            }
        }
        Expr::Field { base, .. } => check_additive(sym, base, false, out),
        Expr::Index { base, index, .. } => {
            check_additive(sym, base, false, out);
            check_additive(sym, index, false, out);
        }
        Expr::Macro { args, .. } => {
            for a in args {
                check_additive(sym, a, false, out);
            }
        }
        Expr::Block { stmts, .. } => {
            for s in stmts {
                match s {
                    Stmt::Let { init: Some(i), .. } => check_additive(sym, i, false, out),
                    Stmt::Let { .. } => {}
                    Stmt::Expr(x) => check_additive(sym, x, false, out),
                }
            }
        }
        Expr::ForLoop { iter, body, .. } => {
            check_additive(sym, iter, false, out);
            check_additive(sym, body, false, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            check_additive(sym, cond, false, out);
            check_additive(sym, then_branch, false, out);
            if let Some(e) = else_branch {
                check_additive(sym, e, false, out);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            check_additive(sym, scrut, false, out);
            for a in arms {
                check_additive(sym, a, false, out);
            }
        }
        Expr::While { cond, body, .. } => {
            check_additive(sym, cond, false, out);
            check_additive(sym, body, false, out);
        }
        Expr::Loop { body, .. } => check_additive(sym, body, false, out),
        Expr::Ret { value, .. } => {
            if let Some(v) = value {
                check_additive(sym, v, false, out);
            }
        }
        Expr::Try { inner, .. } => check_additive(sym, inner, contaminated, out),
        Expr::Other { children, .. } => {
            for c in children {
                check_additive(sym, c, false, out);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Binary { .. } => {}
    }
}

/// The operand textually adjacent to the right of an additive
/// operator: descend through additive sub-chains; a multiplicative or
/// other sub-chain has no single adjacent operand.
fn adjacent_operand(e: &Expr) -> Option<&Expr> {
    match e {
        Expr::Binary { op, lhs, .. } if matches!(op.as_str(), "+" | "-") => adjacent_operand(lhs),
        Expr::Binary { .. } => None,
        other => Some(other),
    }
}

/// Extract the longest unit suffix of a snake_case name: `flux_w_per_m2`
/// → `w_per_m2`. `None` for dimensionless or unsuffixed names.
fn unit_tail(name: &str) -> Option<String> {
    let lower = name.to_ascii_lowercase();
    let segs: Vec<&str> = lower.split('_').filter(|s| !s.is_empty()).collect();
    if segs.len() < 2 {
        return None; // a suffix needs a stem
    }
    let last = segs[segs.len() - 1];
    if DIMENSIONLESS_SEGMENTS.contains(&last) || !UNIT_SEGMENTS.contains(&last) {
        return None;
    }
    let mut start = segs.len() - 1;
    while start > 1 {
        let prev = segs[start - 1];
        if prev == "per" || UNIT_SEGMENTS.contains(&prev) {
            start -= 1;
        } else {
            break;
        }
    }
    Some(segs[start..].join("_"))
}

/// The dimension an operand's *name* claims.
fn tail_of(e: &Expr) -> Tail {
    match e {
        Expr::Path { segs, .. } => segs
            .last()
            .and_then(|s| unit_tail(s))
            .map_or(Tail::Other, Tail::Unit),
        Expr::Field { name, .. } => unit_tail(name).map_or(Tail::Other, Tail::Unit),
        Expr::Lit { text, .. } if text.contains('.') && !text.starts_with("0x") => Tail::Float,
        // Dimension-preserving method chains.
        Expr::Method { name, recv, .. }
            if matches!(name.as_str(), "abs" | "min" | "max" | "clamp") =>
        {
            tail_of(recv)
        }
        // `?` is dimension-transparent.
        Expr::Try { inner, .. } => tail_of(inner),
        _ => Tail::Other,
    }
}

/// Visit every statement at every block depth, in source order.
fn for_each_stmt(stmts: &[Stmt], f: &mut dyn FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::Let { init: Some(e), .. } => for_each_stmt_expr(e, f),
            Stmt::Let { .. } => {}
            Stmt::Expr(e) => for_each_stmt_expr(e, f),
        }
    }
}

fn for_each_stmt_expr(e: &Expr, f: &mut dyn FnMut(&Stmt)) {
    match e {
        Expr::Block { stmts, .. } => for_each_stmt(stmts, f),
        Expr::Call { func, args, .. } => {
            for_each_stmt_expr(func, f);
            for a in args {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            for_each_stmt_expr(recv, f);
            for a in args {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::Field { base, .. } => for_each_stmt_expr(base, f),
        Expr::Index { base, index, .. } => {
            for_each_stmt_expr(base, f);
            for_each_stmt_expr(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            for_each_stmt_expr(lhs, f);
            for_each_stmt_expr(rhs, f);
        }
        Expr::Macro { args, .. } => {
            for a in args {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::ForLoop { iter, body, .. } => {
            for_each_stmt_expr(iter, f);
            for_each_stmt_expr(body, f);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            for_each_stmt_expr(cond, f);
            for_each_stmt_expr(then_branch, f);
            if let Some(e) = else_branch {
                for_each_stmt_expr(e, f);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            for_each_stmt_expr(scrut, f);
            for a in arms {
                for_each_stmt_expr(a, f);
            }
        }
        Expr::While { cond, body, .. } => {
            for_each_stmt_expr(cond, f);
            for_each_stmt_expr(body, f);
        }
        Expr::Loop { body, .. } => for_each_stmt_expr(body, f),
        Expr::Ret { value, .. } => {
            if let Some(v) = value {
                for_each_stmt_expr(v, f);
            }
        }
        Expr::Try { inner, .. } => for_each_stmt_expr(inner, f),
        Expr::Other { children, .. } => {
            for c in children {
                for_each_stmt_expr(c, f);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// R8: dead-experiment detection
// ---------------------------------------------------------------------------

/// Every function defined in the experiment module must be reachable
/// from the rest of the workspace (the CLI dispatch, the campaign
/// builder, the bench binaries). Deepens R5: R5 compares name strings,
/// R8 checks the functions behind them are actually wired up.
pub fn check_r8(table: &SymbolTable, graph: &CallGraph, experiments_file: &str) -> Vec<Violation> {
    let exp: Vec<&FnSym> = table
        .fns
        .iter()
        .filter(|f| f.file == experiments_file)
        .collect();
    if exp.is_empty() {
        return Vec::new();
    }
    let roots: Vec<usize> = table
        .fns
        .iter()
        .filter(|f| f.file != experiments_file)
        .map(|f| f.id)
        .collect();
    let parent = graph.reachable(&roots);
    exp.iter()
        .filter(|sym| !parent.contains_key(&sym.id))
        .map(|sym| Violation {
            rule: Rule::R8,
            file: sym.file.clone(),
            line: sym.def.line,
            msg: format!(
                "fn `{}` in the experiment module is unreachable from CLI dispatch — \
                 dead experiment code (wire it into run_experiment or remove it)",
                sym.qual_name()
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// R9: lock-hold discipline
// ---------------------------------------------------------------------------

/// A lock guard bound by `let` and still in scope.
#[derive(Debug)]
struct Guard {
    name: String,
    line: u32,
}

/// Crates whose lock-holding code R9 scans (the scheduler, the
/// explorer's concurrent sweep path, and the HTTP service's pool /
/// single-flight / registry locks).
const R9_CRATES: &[&str] = &["campaign", "core", "serve"];

/// In the scheduler (`campaign`), sweep (`core`), and service
/// (`serve`) crates, flag file I/O, `Command` spawns and cross-crate
/// solver calls made while a `Mutex`/`RwLock` guard is live. Guards
/// die at end of scope or at an explicit `drop(guard)`.
///
/// Solver calls are caught **transitively**: a call to a local helper
/// counts when the call graph shows the helper can reach a
/// `thermal`/`coolant`/`power` function, so a thermal solve can never
/// hide behind one level of indirection while a scheduler lock is held.
pub fn check_r9(table: &SymbolTable, graph: &CallGraph) -> Vec<Violation> {
    let reaches_solver = solver_reachability(table, graph);
    let mut out = Vec::new();
    for sym in &table.fns {
        if !R9_CRATES.contains(&sym.krate.as_str()) {
            continue;
        }
        let Some(body) = &sym.def.body else { continue };
        let mut guards: Vec<Guard> = Vec::new();
        scan_r9_block(sym, table, &reaches_solver, body, &mut guards, &mut out);
    }
    out
}

/// `reaches[i]` ⇔ function `i` is in a solver crate or can reach one
/// through the call graph (reverse BFS from every solver-crate fn).
fn solver_reachability(table: &SymbolTable, graph: &CallGraph) -> Vec<bool> {
    let n = table.fns.len();
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            reverse[callee].push(caller);
        }
    }
    let mut reaches = vec![false; n];
    let mut queue: Vec<usize> = (0..n)
        .filter(|&i| SOLVER_CRATES.contains(&table.fns[i].krate.as_str()))
        .collect();
    for &i in &queue {
        reaches[i] = true;
    }
    while let Some(i) = queue.pop() {
        for &caller in &reverse[i] {
            if !reaches[caller] {
                reaches[caller] = true;
                queue.push(caller);
            }
        }
    }
    reaches
}

fn scan_r9_block(
    sym: &FnSym,
    table: &SymbolTable,
    reaches_solver: &[bool],
    stmts: &[Stmt],
    guards: &mut Vec<Guard>,
    out: &mut Vec<Violation>,
) {
    let scope_base = guards.len();
    for s in stmts {
        match s {
            Stmt::Let {
                names, init, line, ..
            } => {
                if let Some(e) = init {
                    check_r9_expr(sym, table, reaches_solver, e, guards, out);
                    if acquires_guard(e) {
                        guards.push(Guard {
                            name: names.first().cloned().unwrap_or_else(|| "_".to_string()),
                            line: *line,
                        });
                    }
                }
            }
            Stmt::Expr(e) => {
                if let Some(dropped) = dropped_guard(e) {
                    if let Some(pos) = guards.iter().rposition(|g| g.name == dropped) {
                        guards.remove(pos);
                        continue;
                    }
                }
                check_r9_expr(sym, table, reaches_solver, e, guards, out);
            }
        }
    }
    guards.truncate(scope_base);
}

/// Does the initializer end in a zero-argument `.lock()` / `.read()` /
/// `.write()` chain (a guard acquisition)?
fn acquires_guard(e: &Expr) -> bool {
    let mut found = false;
    crate::ast::walk_expr(e, &mut |x| {
        if let Expr::Method { name, args, .. } = x {
            if args.is_empty() && matches!(name.as_str(), "lock" | "read" | "write") {
                found = true;
            }
        }
    });
    found
}

/// `drop(g)` on a plain identifier: returns the guard name.
fn dropped_guard(e: &Expr) -> Option<String> {
    let Expr::Call { func, args, .. } = e else {
        return None;
    };
    let Expr::Path { segs, .. } = func.as_ref() else {
        return None;
    };
    if segs.len() != 1 || segs[0] != "drop" || args.len() != 1 {
        return None;
    }
    let Expr::Path { segs: g, .. } = &args[0] else {
        return None;
    };
    (g.len() == 1).then(|| g[0].clone())
}

/// Walk an expression under the current guard set; nested blocks open
/// new scopes.
fn check_r9_expr(
    sym: &FnSym,
    table: &SymbolTable,
    reaches_solver: &[bool],
    e: &Expr,
    guards: &mut Vec<Guard>,
    out: &mut Vec<Violation>,
) {
    if let Expr::Block { stmts, .. } = e {
        scan_r9_block(sym, table, reaches_solver, stmts, guards, out);
        return;
    }
    if !guards.is_empty() {
        if let Some(what) = blocking_op(sym, table, reaches_solver, e) {
            let g = &guards[guards.len() - 1];
            out.push(Violation {
                rule: Rule::R9,
                file: sym.file.clone(),
                line: e.line(),
                msg: format!(
                    "{what} while lock guard `{}` (taken line {}) is live in `{}` — \
                     release the lock first",
                    g.name,
                    g.line,
                    sym.qual_name()
                ),
            });
        }
    }
    match e {
        Expr::Block { .. } => unreachable!("handled above"),
        Expr::Call { func, args, .. } => {
            check_r9_expr(sym, table, reaches_solver, func, guards, out);
            for a in args {
                check_r9_expr(sym, table, reaches_solver, a, guards, out);
            }
        }
        Expr::Method { recv, args, .. } => {
            check_r9_expr(sym, table, reaches_solver, recv, guards, out);
            for a in args {
                check_r9_expr(sym, table, reaches_solver, a, guards, out);
            }
        }
        Expr::Field { base, .. } => check_r9_expr(sym, table, reaches_solver, base, guards, out),
        Expr::Index { base, index, .. } => {
            check_r9_expr(sym, table, reaches_solver, base, guards, out);
            check_r9_expr(sym, table, reaches_solver, index, guards, out);
        }
        Expr::Binary { lhs, rhs, .. } => {
            check_r9_expr(sym, table, reaches_solver, lhs, guards, out);
            check_r9_expr(sym, table, reaches_solver, rhs, guards, out);
        }
        Expr::Macro { args, .. } => {
            for a in args {
                check_r9_expr(sym, table, reaches_solver, a, guards, out);
            }
        }
        Expr::ForLoop { iter, body, .. } => {
            check_r9_expr(sym, table, reaches_solver, iter, guards, out);
            check_r9_expr(sym, table, reaches_solver, body, guards, out);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            check_r9_expr(sym, table, reaches_solver, cond, guards, out);
            check_r9_expr(sym, table, reaches_solver, then_branch, guards, out);
            if let Some(e) = else_branch {
                check_r9_expr(sym, table, reaches_solver, e, guards, out);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            check_r9_expr(sym, table, reaches_solver, scrut, guards, out);
            for a in arms {
                check_r9_expr(sym, table, reaches_solver, a, guards, out);
            }
        }
        Expr::While { cond, body, .. } => {
            check_r9_expr(sym, table, reaches_solver, cond, guards, out);
            check_r9_expr(sym, table, reaches_solver, body, guards, out);
        }
        Expr::Loop { body, .. } => check_r9_expr(sym, table, reaches_solver, body, guards, out),
        Expr::Ret { value, .. } => {
            if let Some(v) = value {
                check_r9_expr(sym, table, reaches_solver, v, guards, out);
            }
        }
        Expr::Try { inner, .. } => check_r9_expr(sym, table, reaches_solver, inner, guards, out),
        Expr::Other { children, .. } => {
            for c in children {
                check_r9_expr(sym, table, reaches_solver, c, guards, out);
            }
        }
        Expr::Path { .. } | Expr::Lit { .. } => {}
    }
}

/// Is this expression (at its own top level) a blocking operation R9
/// forbids under a lock?
fn blocking_op(
    sym: &FnSym,
    table: &SymbolTable,
    reaches_solver: &[bool],
    e: &Expr,
) -> Option<String> {
    match e {
        Expr::Call { func, .. } => {
            let Expr::Path { segs, .. } = func.as_ref() else {
                return None;
            };
            if segs.iter().any(|s| s == "fs") {
                return Some(format!("file I/O (`{}`)", segs.join("::")));
            }
            if segs.len() >= 2 {
                let qual = &segs[segs.len() - 2];
                if qual == "File" || qual == "OpenOptions" {
                    return Some(format!("file I/O (`{}`)", segs.join("::")));
                }
                if qual == "Command" {
                    return Some(format!("process spawn (`{}`)", segs.join("::")));
                }
            }
            let callee = resolve_path_call(table, sym, segs)?;
            solver_call_msg(table, reaches_solver, callee)
        }
        Expr::Method { name, .. } if name == "spawn" => {
            Some("process spawn (`.spawn()`)".to_string())
        }
        Expr::Method { name, .. } => {
            let callee = resolve_method_call(table, sym, name)?;
            solver_call_msg(table, reaches_solver, callee)
        }
        _ => None,
    }
}

/// Message for a resolved callee that is a solver-crate function or
/// transitively reaches one; `None` when the callee is harmless.
fn solver_call_msg(table: &SymbolTable, reaches_solver: &[bool], callee: usize) -> Option<String> {
    let target = &table.fns[callee];
    if SOLVER_CRATES.contains(&target.krate.as_str()) {
        return Some(format!("cross-crate solver call (`{}`)", target.display()));
    }
    reaches_solver
        .get(callee)
        .copied()
        .unwrap_or(false)
        .then(|| {
            format!(
                "call (`{}`) that transitively reaches a solver crate",
                target.display()
            )
        })
}
