//! Repo-specific static analysis for the water-immersion workspace.
//!
//! `watercool lint` walks every library source file (crate `src/`
//! trees plus the root crate), tokenizes it with a hand-rolled lexer
//! (no external parser dependency — the container is offline), strips
//! `#[cfg(test)]` items, and enforces the five rules documented in
//! DESIGN.md §"Static analysis & unit conventions":
//!
//! - **R1** — no `unwrap()`/`expect()`/`panic!` in shipped code,
//! - **R2** — public `f64` surface in `thermal`/`coolant`/`power`
//!   carries a unit in its name (or uses a typed unit),
//! - **R3** — no NaN-unsafe float comparisons,
//! - **R4** — no `unsafe` outside `vendor/`,
//! - **R5** — the experiment registry and campaign dispatch agree.
//!
//! On top of the token scans, a semantic pass (see [`ast`],
//! [`symbols`], [`callgraph`], [`semantic`]) parses every file into a
//! lightweight AST, builds a workspace call graph, and enforces:
//!
//! - **R6** — no panic site reachable from a `pub fn` in
//!   `thermal`/`coolant`/`power`/`campaign` (call path printed),
//! - **R7** — unit suffixes stay dimensionally consistent through
//!   arithmetic,
//! - **R8** — every fn in the experiment module is reachable from CLI
//!   dispatch,
//! - **R9** — no file I/O, `Command` spawn, or cross-crate solver call
//!   while a scheduler lock guard is live.
//!
//! Pre-existing debt is frozen in `lint.allow` (see [`Allowlist`]);
//! the budget only ratchets down. Reports render as text (default),
//! JSON, or SARIF 2.1.0 (see [`report`]); the call graph dumps as
//! Graphviz DOT.

pub mod allowlist;
pub mod ast;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod determinism;
pub mod errflow;
pub mod lexer;
pub mod lockorder;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod symbols;

pub use allowlist::Allowlist;
pub use rules::{Rule, Violation};

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the allowlist file at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint.allow";

/// Path (workspace-relative, `/`-separated) of the experiment registry
/// that rule R5 cross-checks.
pub const EXPERIMENTS_FILE: &str = "crates/bench/src/experiments.rs";

/// Path of the campaign module that defines the summary job name.
pub const CAMPAIGN_FILE: &str = "crates/bench/src/campaign.rs";

/// Crates whose public `f64` surface rule R2 applies to.
pub const R2_CRATES: &[&str] = &["crates/thermal/", "crates/coolant/", "crates/power/"];

/// Outcome of linting the workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Hard failures: new violations, exceeded budgets, lex errors,
    /// malformed allowlist.
    pub errors: Vec<String>,
    /// Soft findings: stale allowlist budgets that should ratchet down.
    pub warnings: Vec<String>,
    /// Violations absorbed by the allowlist.
    pub suppressed: usize,
    /// Source files scanned.
    pub files_checked: usize,
    /// Total allowed debt after this run (for the CI growth gate).
    pub allowlist_total: usize,
    /// Per-rule allowed debt after this run.
    pub allowlist_by_rule: BTreeMap<Rule, usize>,
    /// Structured findings that exceeded their budget (the errors),
    /// for JSON/SARIF rendering.
    pub new_violations: Vec<Violation>,
    /// Structured findings absorbed by the allowlist, for JSON/SARIF
    /// rendering (marked suppressed there).
    pub suppressed_violations: Vec<Violation>,
    /// Incremental-cache entries served from `target/lint-cache`
    /// (zero when the cache is disabled).
    pub cache_hits: usize,
    /// Incremental-cache entries recomputed this run.
    pub cache_misses: usize,
}

impl LintReport {
    /// True when the workspace is clean (warnings do not fail the run).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Render the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            out.push_str("error: ");
            out.push_str(e);
            out.push('\n');
        }
        for w in &self.warnings {
            out.push_str("warning: ");
            out.push_str(w);
            out.push('\n');
        }
        let debt: Vec<String> = self
            .allowlist_by_rule
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(r, c)| format!("{} {c}", r.id()))
            .collect();
        out.push_str(&format!(
            "lint: {} file(s) checked, {} error(s), {} warning(s), \
             {} suppressed by lint.allow (debt: {}), cache: {} hit(s) / {} miss(es)\n",
            self.files_checked,
            self.errors.len(),
            self.warnings.len(),
            self.suppressed,
            if debt.is_empty() {
                "none".to_string()
            } else {
                debt.join(", ")
            },
            self.cache_hits,
            self.cache_misses,
        ));
        out
    }
}

/// Best-effort file removal: absence is fine, anything else is logged.
pub(crate) fn best_effort_remove(path: &Path) {
    match fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => eprintln!("warning: could not remove {}: {e}", path.display()),
    }
}

/// Walk upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collect the library sources to lint: `src/` under the root crate and
/// every `crates/*` member. `vendor/` (sanctioned unsafe, external
/// idiom) and the lint fixtures are deliberately out of scope; test
/// directories never enter the walk because only `src/` trees do.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let p = entry?.path().join("src");
            if p.is_dir() {
                roots.push(p);
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            walk_rs(&r, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint one file's source text (rules R1–R4). `rel` is the
/// workspace-relative, `/`-separated path; it decides whether R2
/// applies. Returns `Err` with a message if the file does not lex.
pub fn lint_source(rel: &str, src: &str) -> Result<Vec<Violation>, String> {
    let tokens = lexer::lex(src).map_err(|e| format!("{rel}: {e}"))?;
    let tokens = lexer::strip_test_items(&tokens);
    let mut v = rules::check_r1(rel, &tokens);
    if R2_CRATES.iter().any(|c| rel.starts_with(c)) {
        v.extend(rules::check_r2(rel, &tokens));
    }
    v.extend(rules::check_r3(rel, &tokens));
    v.extend(rules::check_r4(rel, &tokens));
    Ok(v)
}

/// Build the semantic model for the workspace and render its call
/// graph as Graphviz DOT (`--emit-callgraph`). Parse errors are
/// returned as `Err` strings.
pub fn emit_callgraph_dot(root: &Path) -> io::Result<Result<String, Vec<String>>> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().into_owned(),
        };
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let sem = semantic::analyze(&sources);
    if !sem.errors.is_empty() {
        return Ok(Err(sem.errors));
    }
    Ok(Ok(sem.graph.to_dot(&sem.table)))
}

/// Build the semantic model for the workspace and render the R11
/// lock-acquisition-order graph as Graphviz DOT (`--emit-lockgraph`).
/// Parse errors are returned as `Err` strings.
pub fn emit_lockgraph_dot(root: &Path) -> io::Result<Result<String, Vec<String>>> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().into_owned(),
        };
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let sem = semantic::analyze(&sources);
    if !sem.errors.is_empty() {
        return Ok(Err(sem.errors));
    }
    Ok(Ok(sem.lock_graph().to_dot()))
}

/// Lint the whole workspace rooted at `root`, using the incremental
/// cache. When `fix_allowlist` is set, `lint.allow` is rewritten to
/// the actual current counts (the ratchet action) before budgets are
/// evaluated.
pub fn lint_workspace(root: &Path, fix_allowlist: bool) -> io::Result<LintReport> {
    lint_workspace_with(root, fix_allowlist, true)
}

/// [`lint_workspace`] with the `target/lint-cache` incremental cache
/// switchable (`--no-cache`).
pub fn lint_workspace_with(
    root: &Path,
    fix_allowlist: bool,
    use_cache: bool,
) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut violations: Vec<Violation> = Vec::new();

    // Read every library source once; both the token scans and the
    // semantic pass run over the same snapshot.
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().into_owned(),
        };
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let mut cache = use_cache.then(|| cache::LintCache::open(root, &sources));

    // R1–R4 over every library source file, cached per file.
    for (rel, src) in &sources {
        report.files_checked += 1;
        if let Some(v) = cache.as_mut().and_then(|c| c.get_file(rel, src)) {
            violations.extend(v);
            continue;
        }
        match lint_source(rel, src) {
            Ok(v) => {
                if let Some(c) = &cache {
                    c.put_file(rel, src, &v);
                }
                violations.extend(v);
            }
            Err(e) => report.errors.push(e),
        }
    }

    // R5–R12: the whole-workspace pass, cached as a single entry keyed
    // by every source (interprocedural rules can't be cached per file).
    let semantic_key = cache.as_ref().map(|c| c.workspace_key(&sources));
    let cached_semantic = match (cache.as_mut(), semantic_key) {
        (Some(c), Some(k)) => c.get_semantic(k),
        _ => None,
    };
    if let Some(v) = cached_semantic {
        violations.extend(v);
    } else {
        let mut sem_violations: Vec<Violation> = Vec::new();
        let mut sem_errors = false;

        // R6–R12: the semantic pass. Parse failures are hard errors —
        // the parser must stay total over the workspace or the call
        // graph silently loses functions.
        let sem = semantic::analyze(&sources);
        for e in &sem.errors {
            report.errors.push(format!("parse error: {e}"));
            sem_errors = true;
        }
        sem_violations.extend(sem.check_all(EXPERIMENTS_FILE));

        // R5: experiment registry vs dispatch vs summary job.
        let experiments_path = root.join(EXPERIMENTS_FILE);
        if experiments_path.is_file() {
            let src = fs::read_to_string(&experiments_path)?;
            let summary = fs::read_to_string(root.join(CAMPAIGN_FILE))
                .ok()
                .and_then(|s| lexer::lex(&s).ok())
                .and_then(|t| rules::summary_job_name(&t));
            match lexer::lex(&src) {
                Ok(tokens) => sem_violations.extend(rules::check_r5(
                    EXPERIMENTS_FILE,
                    &tokens,
                    summary.as_deref(),
                )),
                Err(e) => {
                    report.errors.push(format!("{EXPERIMENTS_FILE}: {e}"));
                    sem_errors = true;
                }
            }
        }
        // Hard errors are reported through `report.errors`, which the
        // cache entry does not carry — only clean analyses are stored.
        if !sem_errors {
            if let (Some(c), Some(k)) = (&cache, semantic_key) {
                c.put_semantic(k, &sem_violations);
            }
        }
        violations.extend(sem_violations);
    }
    if let Some(c) = &cache {
        report.cache_hits = c.hits;
        report.cache_misses = c.misses;
    }

    // Group violations per (rule, file) for budget accounting.
    let mut actual: BTreeMap<(Rule, String), usize> = BTreeMap::new();
    for v in &violations {
        *actual.entry((v.rule, v.file.clone())).or_insert(0) += 1;
    }

    let allowlist_path = root.join(ALLOWLIST_FILE);
    if fix_allowlist {
        fs::write(&allowlist_path, Allowlist::render(&actual))?;
    }
    let allowlist = match fs::read_to_string(&allowlist_path) {
        Ok(text) => match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                report.errors.push(e);
                Allowlist::default()
            }
        },
        Err(_) => Allowlist::default(),
    };

    // Budgets: over → error (each violation listed); at → suppressed;
    // under → warning (ratchet the budget down).
    for (key @ (rule, file), &count) in &actual {
        let allowed = allowlist.allowed(*rule, file);
        if count > allowed {
            for v in violations
                .iter()
                .filter(|v| (v.rule, &v.file) == (*rule, file))
            {
                report.errors.push(format!(
                    "[{}] {}:{}: {}",
                    v.rule.id(),
                    v.file,
                    v.line,
                    v.msg
                ));
                report.new_violations.push(v.clone());
            }
            if allowed > 0 {
                report.errors.push(format!(
                    "[{}] {file}: {count} violation(s) exceed the allowlisted budget of {allowed}",
                    rule.id()
                ));
            }
        } else {
            report.suppressed += count;
            report.suppressed_violations.extend(
                violations
                    .iter()
                    .filter(|v| (v.rule, &v.file) == (*rule, file))
                    .cloned(),
            );
            if count < allowed {
                report.warnings.push(format!(
                    "[{}] {file}: allowlist budget {allowed} but only {count} violation(s) \
                     remain — run `watercool lint --fix-allowlist` to ratchet it down",
                    rule.id()
                ));
            }
        }
        let _ = key;
    }
    for ((rule, file), count) in allowlist.stale_entries(&actual) {
        report.warnings.push(format!(
            "[{}] {file}: allowlist budget {count} but the debt is fully paid — \
             run `watercool lint --fix-allowlist` to drop the entry",
            rule.id()
        ));
    }

    report.allowlist_total = allowlist.total();
    for &r in Rule::ALL {
        report.allowlist_by_rule.insert(r, allowlist.total_for(r));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn lint_source_applies_r2_only_to_physics_crates() {
        let src = "pub struct S { pub speed: f64 }";
        let in_thermal = lint_source("crates/thermal/src/x.rs", src).unwrap();
        assert!(in_thermal.iter().any(|v| v.rule == Rule::R2));
        let in_archsim = lint_source("crates/archsim/src/x.rs", src).unwrap();
        assert!(in_archsim.is_empty());
    }
}
