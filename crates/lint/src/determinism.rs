//! R10: determinism of the replay-critical call cone.
//!
//! The repo's headline guarantee is bit-for-bit replay: fault-matrix
//! manifests, campaign cache keys, the desim schedule, and the serve
//! loadtest digest must reproduce exactly from a seed. One stray
//! `Instant::now()` or `HashMap` iteration feeding any of those
//! silently breaks the guarantee, so R10 makes it structural: from a
//! fixed set of replay-critical **root files** (manifest
//! canonicalization, campaign cache keys, the desim rng/engine,
//! faultsim plans, the loadgen schedule/digest) it walks the call
//! graph forward and flags every nondeterministic value source in the
//! reachable cone:
//!
//! - wall clock: `Instant::now()`, `SystemTime::now()`,
//! - thread identity: `thread::current()`,
//! - pool width: `available_parallelism()`, `current_num_threads()`,
//! - unordered iteration: `.iter()`/`.keys()`/`for _ in m` over a
//!   binding whose declared type or initializer is a
//!   `HashMap`/`HashSet` (tracked with the value-source lattice over
//!   the [`crate::cfg`] CFG).
//!
//! Legitimate timing-measurement sites (latency histograms around the
//! deterministic work, not feeding any digest) opt out with a
//! `// lint: wall-clock-ok` comment on the same or the preceding line.

use crate::ast::{walk_expr, Expr};
use crate::callgraph::CallGraph;
use crate::cfg::{self, Action, Cfg};
use crate::rules::{Rule, Violation};
use crate::symbols::SymbolTable;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Files whose every function is a replay-critical root.
pub const R10_ROOT_FILES: &[&str] = &[
    "crates/campaign/src/manifest.rs",
    "crates/campaign/src/hash.rs",
    "crates/desim/src/rng.rs",
    "crates/desim/src/engine.rs",
    "crates/faultsim/src/plan.rs",
    "crates/serve/src/loadgen.rs",
];

/// The text of the escape-hatch comment.
pub const WALL_CLOCK_OK: &str = "lint: wall-clock-ok";

/// Per-file sets of lines on which a wall-clock finding is suppressed
/// (the annotated line itself and the line after a comment-only
/// annotation).
pub type WallClockOk = HashMap<String, HashSet<u32>>;

/// Scan raw sources for `// lint: wall-clock-ok` annotations. The
/// lexer strips comments, so this runs over the untokenized text.
pub fn collect_wall_clock_ok(sources: &[(String, String)]) -> WallClockOk {
    let mut out: WallClockOk = HashMap::new();
    for (rel, src) in sources {
        let mut lines: HashSet<u32> = HashSet::new();
        for (idx, line) in src.lines().enumerate() {
            if line.contains(WALL_CLOCK_OK) {
                let n = idx as u32 + 1;
                lines.insert(n);
                lines.insert(n + 1);
            }
        }
        if !lines.is_empty() {
            out.insert(rel.clone(), lines);
        }
    }
    out
}

/// One nondeterministic value source found in a function body.
struct NondetSite {
    line: u32,
    desc: String,
    wall_clock: bool,
}

/// Run R10 over the workspace.
pub fn check_r10(table: &SymbolTable, graph: &CallGraph, wall_ok: &WallClockOk) -> Vec<Violation> {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .filter(|f| R10_ROOT_FILES.contains(&f.file.as_str()))
        .map(|f| f.id)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    let parent = graph.reachable(&roots);
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for sym in &table.fns {
        if !parent.contains_key(&sym.id) {
            continue;
        }
        let Some(body) = &sym.def.body else { continue };
        let path: Vec<String> = CallGraph::path_to(&parent, sym.id)
            .into_iter()
            .map(|id| table.fns[id].display())
            .collect();
        let via = if path.len() > 1 {
            format!(" (replay root path: {})", path.join(" -> "))
        } else {
            String::new()
        };
        for site in nondet_sites(sym, body) {
            if site.wall_clock
                && wall_ok
                    .get(&sym.file)
                    .is_some_and(|lines| lines.contains(&site.line))
            {
                continue;
            }
            if seen.insert((sym.file.clone(), site.line, site.desc.clone())) {
                out.push(Violation {
                    rule: Rule::R10,
                    file: sym.file.clone(),
                    line: site.line,
                    msg: format!(
                        "{} in replay-critical fn `{}`{via} — replace with a \
                         deterministic source or sort before use",
                        site.desc,
                        sym.qual_name()
                    ),
                });
            }
        }
    }
    out
}

/// Every nondeterministic site in one function body: direct wall-clock
/// / thread-id / pool-width calls, plus unordered-container iteration
/// found with the value-source lattice over the CFG.
fn nondet_sites(sym: &crate::symbols::FnSym, body: &[crate::ast::Stmt]) -> Vec<NondetSite> {
    let mut sites = Vec::new();

    // Direct nondeterministic calls anywhere in the body.
    crate::ast::walk_stmts(body, &mut |e| {
        if let Some((desc, wall_clock)) = nondet_call(e) {
            sites.push(NondetSite {
                line: e.line(),
                desc,
                wall_clock,
            });
        }
    });

    // Unordered-container iteration: run the value-source lattice
    // forward (set of bindings known to be HashMap/HashSet), then
    // re-scan each block against its in-state.
    let cfg = Cfg::build(body, !sym.def.ret_ty.is_empty());
    let mut init: BTreeSet<String> = BTreeSet::new();
    for p in &sym.def.params {
        if is_unordered_ty(&p.ty) {
            init.insert(p.name.clone());
        }
    }
    let transfer = |_i: usize, blk: &cfg::Block, state: &BTreeSet<String>| {
        let mut s = state.clone();
        for a in &blk.actions {
            apply_sources(a, &mut s);
        }
        s
    };
    let join = |a: &mut BTreeSet<String>, b: &BTreeSet<String>| {
        a.extend(b.iter().cloned());
    };
    let in_states = cfg::forward(&cfg, init, transfer, join);
    let reachable = cfg.reachable();
    for (i, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        let mut state = in_states[i].clone();
        for a in &blk.actions {
            let expr = match a {
                Action::Bind { init: Some(e), .. } => Some(*e),
                Action::Bind { .. } => None,
                Action::Eval { expr, .. } => Some(*expr),
            };
            if let Some(e) = expr {
                walk_expr(e, &mut |x| {
                    if let Some((line, what)) = unordered_iteration(x, &state) {
                        sites.push(NondetSite {
                            line,
                            desc: format!("unordered {what} iteration"),
                            wall_clock: false,
                        });
                    }
                });
            }
            apply_sources(a, &mut state);
        }
    }
    sites
}

/// Is this expression a direct nondeterministic call? Returns the
/// description and whether the `wall-clock-ok` escape hatch applies.
fn nondet_call(e: &Expr) -> Option<(String, bool)> {
    let Expr::Call { func, .. } = e else {
        return None;
    };
    let Expr::Path { segs, .. } = func.as_ref() else {
        return None;
    };
    let last = segs.last().map(String::as_str)?;
    let prev = segs.len().checked_sub(2).map(|i| segs[i].as_str());
    match (prev, last) {
        (Some("Instant"), "now") => Some(("wall clock (`Instant::now()`)".to_string(), true)),
        (Some("SystemTime"), "now") => Some(("wall clock (`SystemTime::now()`)".to_string(), true)),
        (Some("thread"), "current") => {
            Some(("thread identity (`thread::current()`)".to_string(), false))
        }
        (_, "available_parallelism") => {
            Some(("pool width (`available_parallelism()`)".to_string(), false))
        }
        (_, "current_num_threads") => {
            Some(("pool width (`current_num_threads()`)".to_string(), false))
        }
        _ => None,
    }
}

/// Update the value-source set for one action: single-name `let`
/// bindings gain membership when the declared type or initializer is
/// an unordered container, and lose it on rebinding.
fn apply_sources(a: &Action, state: &mut BTreeSet<String>) {
    let Action::Bind {
        names, ty, init, ..
    } = a
    else {
        return;
    };
    let [name] = names else { return };
    let unordered =
        ty.is_some_and(is_unordered_ty) || init.is_some_and(|e| constructs_unordered(e).is_some());
    if unordered {
        state.insert(name.clone());
    } else {
        state.remove(name);
    }
}

/// Does a rendered type mention an unordered std container?
fn is_unordered_ty(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

/// Does this expression construct a `HashMap`/`HashSet` at its top
/// level (`HashMap::new()`, `HashSet::with_capacity(n)`, …)? Returns
/// the container name.
fn constructs_unordered(e: &Expr) -> Option<&'static str> {
    match e {
        Expr::Call { func, .. } => {
            let Expr::Path { segs, .. } = func.as_ref() else {
                return None;
            };
            if segs.iter().any(|s| s == "HashMap") {
                Some("HashMap")
            } else if segs.iter().any(|s| s == "HashSet") {
                Some("HashSet")
            } else {
                None
            }
        }
        // `HashMap::from_iter(…)` spelled through a method chain, or a
        // chained constructor (`HashMap::new().into_iter()` is handled
        // at the iteration site).
        Expr::Method { recv, .. } => constructs_unordered(recv),
        Expr::Try { inner, .. } => constructs_unordered(inner),
        _ => None,
    }
}

/// Iteration methods whose order is arbitrary on unordered containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Is this expression an iteration over a known-unordered binding (or
/// a freshly constructed unordered container)? Returns (line, what).
fn unordered_iteration(e: &Expr, state: &BTreeSet<String>) -> Option<(u32, String)> {
    match e {
        Expr::Method {
            recv, name, line, ..
        } if ITER_METHODS.contains(&name.as_str()) => {
            unordered_operand(recv, state).map(|what| (*line, format!("{what} `.{name}()`")))
        }
        Expr::ForLoop { iter, line, .. } => {
            // `for k in map` / `for k in &map`.
            let target = match iter.as_ref() {
                Expr::Other { children, .. } if children.len() == 1 => &children[0],
                other => other,
            };
            unordered_operand(target, state).map(|what| (*line, format!("`for` over {what}")))
        }
        _ => None,
    }
}

/// Resolve an iteration receiver to an unordered source: a tracked
/// binding name or an inline construction.
fn unordered_operand(e: &Expr, state: &BTreeSet<String>) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 && state.contains(&segs[0]) => {
            Some(format!("`{}`", segs[0]))
        }
        _ => constructs_unordered(e).map(|c| format!("fresh `{c}`")),
    }
}
