//! A minimal Rust lexer: just enough to token-scan source files for the
//! R1–R5 rules without false positives from comments and string
//! literals.
//!
//! This is deliberately not a parser. The rules only need a token
//! stream with comments and literals resolved, plus brace matching to
//! carve out `#[cfg(test)]` items. Anything rustc accepts lexes here;
//! anything that does not lex cleanly (unterminated string, stray
//! quote) is reported as a lex error rather than silently skipped, so
//! the linter cannot be blinded by a malformed file.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `pub`, `f64`, ...).
    Ident,
    /// Numeric literal, verbatim (`42`, `1.5e-3`, `0xff`, `1_000.0f64`).
    Number,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`),
    /// with the quotes stripped and escapes left as written.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`), quotes stripped.
    Char,
    /// Lifetime (`'a`, `'static`), leading quote stripped.
    Lifetime,
    /// Punctuation; multi-character operators (`==`, `=>`, `::`, ...)
    /// arrive as a single token.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (literals have their delimiters stripped).
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Token {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this is punctuation with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }

    /// True when this is a numeric literal with a fractional part or
    /// exponent (i.e. a float, not an integer).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokenKind::Number {
            return false;
        }
        let t = &self.text;
        if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
            return false;
        }
        t.contains('.')
            || t.contains('e')
            || t.contains('E')
            || t.ends_with("f64")
            || t.ends_with("f32")
    }
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex a whole source file. Returns the token stream or a description
/// of the first thing that would not lex (with its line number).
pub fn lex(src: &str) -> Result<Vec<Token>, String> {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i] as char;
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if b[i + 1] == b'*' {
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(format!("line {start_line}: unterminated block comment"));
                }
                continue;
            }
        }
        // Raw strings: r"..." / r#"..."# / br"..." etc.
        if (c == 'r' || c == 'b') && raw_string_start(b, i) {
            let start_line = line;
            let mut j = i;
            while b[j] == b'b' || b[j] == b'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // raw_string_start guarantees the opening quote.
            j += 1;
            let content_start = j;
            loop {
                if j >= b.len() {
                    return Err(format!("line {start_line}: unterminated raw string"));
                }
                if b[j] == b'\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if b[j] == b'"' {
                    let mut k = j + 1;
                    let mut seen = 0;
                    while k < b.len() && b[k] == b'#' && seen < hashes {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        tokens.push(Token {
                            kind: TokenKind::Str,
                            text: src[content_start..j].to_string(),
                            line: start_line,
                        });
                        i = k;
                        break;
                    }
                }
                j += 1;
            }
            continue;
        }
        // Ordinary (or byte) strings.
        if c == '"' || (c == 'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let content_start = j;
            loop {
                if j >= b.len() {
                    return Err(format!("line {start_line}: unterminated string"));
                }
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    b'\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                text: src[content_start..j].to_string(),
                line: start_line,
            });
            i = j + 1;
            continue;
        }
        // Lifetimes and char literals both start with a single quote.
        if c == '\'' || (c == 'b' && i + 1 < b.len() && b[i + 1] == b'\'') {
            let q = if c == 'b' { i + 1 } else { i };
            // Lifetime: 'ident not followed by a closing quote.
            let after = q + 1;
            if c != 'b'
                && after < b.len()
                && (b[after].is_ascii_alphabetic() || b[after] == b'_')
                && !is_char_literal(b, q)
            {
                let mut j = after;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: src[after..j].to_string(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal.
            let mut j = after;
            if j < b.len() && b[j] == b'\\' {
                j += 2;
                // \u{...} and \x.. escapes: scan to the closing quote.
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
            } else if j < b.len() {
                // One (possibly multi-byte) character.
                let ch_len = src[j..].chars().next().map(char::len_utf8).unwrap_or(1);
                j += ch_len;
            }
            if j >= b.len() || b[j] != b'\'' {
                return Err(format!("line {line}: unterminated char literal"));
            }
            tokens.push(Token {
                kind: TokenKind::Char,
                text: src[after..j].to_string(),
                line,
            });
            i = j + 1;
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Numbers (integers, floats, hex/oct/bin, suffixes).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                if d.is_ascii_alphanumeric() || d == b'_' {
                    // `1e-3` / `1E+5`: the sign belongs to the number.
                    if (d == b'e' || d == b'E')
                        && !src[start..i].starts_with("0x")
                        && i + 1 < b.len()
                        && (b[i + 1] == b'+' || b[i + 1] == b'-')
                    {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                // A dot continues the number only before a digit, so
                // ranges (`0..n`) and method calls (`1.max(x)`) stop it.
                if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    continue;
                }
                // Trailing dot (`1.`) — consume unless it is `..`.
                if d == b'.'
                    && (i + 1 >= b.len() || b[i + 1] != b'.')
                    && !src[start..i].contains('.')
                {
                    i += 1;
                    continue;
                }
                break;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: src[start..i].to_string(),
                line,
            });
            continue;
        }
        // Punctuation, maximal munch.
        let rest = &src[i..];
        let mut matched = false;
        for op in MULTI_PUNCT {
            if rest.starts_with(op) {
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += op.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        if c.is_ascii() {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        } else {
            // Non-ASCII outside strings/comments: skip (e.g. in a
            // degree sign that somehow escaped a literal).
            i += src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        }
    }
    Ok(tokens)
}

/// Does a raw-string literal start at `i` (`r"`, `r#`, `br"`, ...)?
fn raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Disambiguate `'a'` (char) from `'a` (lifetime): a char literal has a
/// closing quote right after one character.
fn is_char_literal(b: &[u8], quote: usize) -> bool {
    quote + 2 < b.len() && b[quote + 2] == b'\''
}

/// Strip every token that belongs to a `#[cfg(test)]` item (module,
/// function, impl or use), so the rules only see shipped code.
///
/// The scan finds each `#[cfg(test)]` attribute, skips any further
/// attributes, then drops tokens to the end of the annotated item:
/// the matching close brace of its first block, or the first `;` for
/// brace-less items.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut keep = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Skip to the end of this attribute.
            i = skip_attribute(tokens, i);
            // Skip any stacked attributes (e.g. #[cfg(test)] #[allow..]).
            while i < tokens.len() && tokens[i].is_punct("#") {
                i = skip_attribute(tokens, i);
            }
            // Drop the annotated item.
            let mut depth = 0usize;
            while i < tokens.len() {
                let t = &tokens[i];
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if t.is_punct(";") && depth == 0 {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        keep.push(tokens[i].clone());
        i += 1;
    }
    keep
}

/// Is the token at `i` the `#` of a `#[cfg(test)]` attribute?
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let t = tokens;
    i + 5 < t.len()
        && t[i].is_punct("#")
        && t[i + 1].is_punct("[")
        && t[i + 2].is_ident("cfg")
        && t[i + 3].is_punct("(")
        && t[i + 4].is_ident("test")
        && t[i + 5].is_punct(")")
}

/// Given `i` at a `#`, return the index just past the attribute's `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_tokens() {
        let toks = kinds("let x = \"unwrap()\"; // unwrap()\n/* panic! */ y");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds(r####"r#"a "quoted" b"# "esc\"aped" 'x' '\n'"####);
        assert_eq!(toks[0], (TokenKind::Str, "a \"quoted\" b".into()));
        assert_eq!(toks[1], (TokenKind::Str, "esc\\\"aped".into()));
        assert_eq!(toks[2], (TokenKind::Char, "x".into()));
        assert_eq!(toks[3], (TokenKind::Char, "\\n".into()));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Lifetime && s == "a"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Char && s == "q"));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = kinds("1.5e-3 0x1f 2..10 3.0f64 7.");
        assert_eq!(toks[0], (TokenKind::Number, "1.5e-3".into()));
        assert!(lex("1.5e-3").unwrap()[0].is_float_literal());
        assert!(!lex("0x1f").unwrap()[0].is_float_literal());
        // `2..10` is number, range-punct, number.
        assert_eq!(toks[2], (TokenKind::Number, "2".into()));
        assert_eq!(toks[3], (TokenKind::Punct, "..".into()));
        assert_eq!(toks[4], (TokenKind::Number, "10".into()));
        assert!(lex("3.0f64").unwrap()[0].is_float_literal());
        assert_eq!(toks[6], (TokenKind::Number, "7.".into()));
    }

    #[test]
    fn multi_char_puncts_are_single_tokens() {
        let toks = kinds("a == b != c => d :: e -> f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "=>", "::", "->"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn strip_test_items_removes_cfg_test_mod() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\nfn after() {}";
        let toks = strip_test_items(&lex(src).unwrap());
        let idents: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"live"));
        assert!(idents.contains(&"after"));
        assert!(!idents.contains(&"tests"));
        assert!(!idents.contains(&"t"));
    }

    #[test]
    fn strip_test_items_handles_stacked_attributes_and_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap() }\nfn keep() {}";
        let toks = strip_test_items(&lex(src).unwrap());
        assert!(toks.iter().any(|t| t.is_ident("keep")));
        assert!(!toks.iter().any(|t| t.is_ident("helper")));
        // Brace-less item: #[cfg(test)] use stops at the semicolon.
        let src2 = "#[cfg(test)] use std::collections::HashMap;\nfn keep() {}";
        let toks2 = strip_test_items(&lex(src2).unwrap());
        assert!(toks2.iter().any(|t| t.is_ident("keep")));
        assert!(!toks2.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn unterminated_literals_are_lex_errors() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
