//! R11: workspace-wide lock-acquisition-order analysis.
//!
//! R9 checks what happens *under* one lock; R11 generalizes to the
//! relationships *between* locks. Every `.lock()`/`.read()`/`.write()`
//! acquisition in the `campaign`/`thermal`/`serve`/`core` crates gets
//! a stable identity derived from its receiver (`self.field` in
//! `impl T` → `crate::T.field`, a static → `crate::NAME`, any other
//! field chain → `crate::field`). The scan then records:
//!
//! - an **order edge** `A → B` whenever `B` is acquired while `A` is
//!   held, both directly and through a call edge (using per-function
//!   transitive acquisition sets over the call graph, so a helper
//!   that locks on the callee side still orders after the holder);
//! - a **re-entry** finding when a function calls, while holding `A`,
//!   into a callee whose transitive acquisition set contains `A`
//!   (a self-deadlock on non-reentrant `std` mutexes);
//! - a **cycle** finding for every cycle in the resulting lock graph
//!   (two functions taking the same pair of locks in opposite orders
//!   can deadlock under concurrency).
//!
//! Re-entrant `RwLock::read` while a read guard on the same lock is
//! held is **flagged, not whitelisted**: `std::sync::RwLock` makes no
//! reentrancy guarantee, and on writer-priority implementations a
//! writer queued between the two reads blocks the second read while
//! the first guard blocks the writer — deadlock. The finding carries a
//! distinct message so it can be triaged separately from write
//! re-entry.
//!
//! The graph itself dumps as Graphviz DOT via `--emit-lockgraph`.

use crate::ast::{Expr, Stmt};
use crate::callgraph::{resolve_method_call, resolve_path_call, CallGraph};
use crate::rules::{Rule, Violation};
use crate::symbols::{FnSym, SymbolTable};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Crates whose lock population R11 analyzes.
pub const R11_CRATES: &[&str] = &["campaign", "thermal", "serve", "core", "faultsim"];

/// How an acquisition takes the lock: `.read()` is shared, everything
/// else (`.lock()`, `.write()`) exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcqMode {
    Read,
    Write,
}

/// The lock-acquisition-order graph, plus provenance for diagnostics.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Edge `A → B` ⇒ `B` was acquired (possibly through calls) while
    /// `A` was held; the value is one witness `file:line (fn)`.
    pub edges: BTreeMap<(String, String), String>,
}

impl LockGraph {
    /// All lock identities appearing in the graph.
    pub fn nodes(&self) -> BTreeSet<&str> {
        self.edges
            .keys()
            .flat_map(|(a, b)| [a.as_str(), b.as_str()])
            .collect()
    }

    /// Render as Graphviz DOT (deterministic ordering).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lockorder {\n    rankdir=LR;\n");
        for n in self.nodes() {
            out.push_str(&format!("    \"{n}\";\n"));
        }
        for ((a, b), why) in &self.edges {
            out.push_str(&format!("    \"{a}\" -> \"{b}\" [label=\"{why}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Find one representative cycle per strongly-connected knot, as a
    /// list of lock names `a → b → … → a`. Empty when acyclic.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (a, b) in self.edges.keys() {
            adj.entry(a).or_default().push(b);
        }
        let mut cycles = Vec::new();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for &start in adj.keys().collect::<Vec<_>>().iter() {
            if done.contains(start) {
                continue;
            }
            // Iterative DFS with an explicit path stack.
            let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
            let mut path: Vec<&str> = vec![start];
            let mut on_path: BTreeSet<&str> = BTreeSet::new();
            on_path.insert(start);
            while let Some((node, idx)) = stack.pop() {
                let next = adj.get(node).and_then(|v| v.get(idx)).copied();
                match next {
                    Some(succ) => {
                        stack.push((node, idx + 1));
                        if on_path.contains(succ) {
                            // Found a cycle: slice the path from succ.
                            let from = path.iter().position(|n| *n == succ).unwrap_or(0);
                            let mut cyc: Vec<String> =
                                path[from..].iter().map(|s| s.to_string()).collect();
                            cyc.push(succ.to_string());
                            cycles.push(cyc);
                            for n in &path {
                                done.insert(*n);
                            }
                            stack.clear();
                        } else if !done.contains(succ) {
                            stack.push((succ, 0));
                            path.push(succ);
                            on_path.insert(succ);
                        }
                    }
                    None => {
                        done.insert(node);
                        if path.last() == Some(&node) {
                            path.pop();
                            on_path.remove(node);
                        }
                    }
                }
            }
        }
        cycles
    }
}

/// A lock currently held during the scan of one function.
#[derive(Debug, Clone)]
struct Held {
    id: String,
    /// Guard binding name (temporary guards have none and die with
    /// their statement).
    guard: Option<String>,
    line: u32,
    mode: AcqMode,
}

/// Scan results prior to interprocedural closure.
struct FnLockInfo {
    /// Lock ids this function acquires directly anywhere in its body.
    direct: BTreeSet<String>,
    /// `(held lock id, callee fn id, line)` — calls made under a lock.
    calls_under: Vec<(String, usize, u32)>,
}

/// Run R11: returns the violations and the lock graph (for DOT).
pub fn check_r11(table: &SymbolTable, graph: &CallGraph) -> (Vec<Violation>, LockGraph) {
    let mut lg = LockGraph::default();
    let mut out = Vec::new();
    let mut infos: HashMap<usize, FnLockInfo> = HashMap::new();

    // Pass 1: intraprocedural — direct order edges, direct acquisition
    // sets, and the call-under-lock events.
    for sym in &table.fns {
        if !R11_CRATES.contains(&sym.krate.as_str()) {
            continue;
        }
        let Some(body) = &sym.def.body else { continue };
        let mut scan = Scan {
            sym,
            table,
            info: FnLockInfo {
                direct: BTreeSet::new(),
                calls_under: Vec::new(),
            },
            held: Vec::new(),
            lg: &mut lg,
            out: &mut out,
        };
        scan.block(body);
        infos.insert(sym.id, scan.info);
    }

    // Pass 2: interprocedural — close acquisition sets over the call
    // graph, then turn calls-under-lock into order edges / re-entry
    // findings.
    let transitive = transitive_acquires(graph, &infos);
    for (&caller, info) in infos.iter().collect::<BTreeMap<_, _>>() {
        let sym = &table.fns[caller];
        for (held_id, callee, line) in &info.calls_under {
            let Some(acquired) = transitive.get(callee) else {
                continue;
            };
            for lock in acquired {
                if lock == held_id {
                    out.push(Violation {
                        rule: Rule::R11,
                        file: sym.file.clone(),
                        line: *line,
                        msg: format!(
                            "`{}` calls `{}` while holding `{held_id}`, and the callee can \
                             re-acquire that lock — self-deadlock on a non-reentrant mutex",
                            sym.qual_name(),
                            table.fns[*callee].qual_name()
                        ),
                    });
                } else {
                    lg.edges
                        .entry((held_id.clone(), lock.clone()))
                        .or_insert_with(|| {
                            format!(
                                "{}:{} ({} -> {})",
                                sym.file,
                                line,
                                sym.qual_name(),
                                table.fns[*callee].qual_name()
                            )
                        });
                }
            }
        }
    }

    // Pass 3: cycles in the combined graph.
    for cyc in lg.cycles() {
        let witness = cyc
            .windows(2)
            .find_map(|w| lg.edges.get(&(w[0].clone(), w[1].clone())))
            .cloned()
            .unwrap_or_default();
        let (file, line) = witness
            .split_once(':')
            .and_then(|(f, rest)| {
                let line = rest
                    .split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse()
                    .ok()?;
                Some((f.to_string(), line))
            })
            .unwrap_or_else(|| ("lint.allow".to_string(), 0));
        out.push(Violation {
            rule: Rule::R11,
            file,
            line,
            msg: format!(
                "lock-order cycle: {} — two paths can take these locks in \
                 opposite orders and deadlock (witness edge at {witness})",
                cyc.join(" -> ")
            ),
        });
    }

    (out, lg)
}

/// Close each function's acquisition set over everything it can reach
/// in the call graph (memoized per needed callee).
fn transitive_acquires(
    graph: &CallGraph,
    infos: &HashMap<usize, FnLockInfo>,
) -> HashMap<usize, BTreeSet<String>> {
    let needed: BTreeSet<usize> = infos
        .values()
        .flat_map(|i| i.calls_under.iter().map(|(_, c, _)| *c))
        .collect();
    let mut out = HashMap::new();
    for &callee in &needed {
        let parent = graph.reachable(&[callee]);
        let mut acc = BTreeSet::new();
        for id in parent.keys() {
            if let Some(info) = infos.get(id) {
                acc.extend(info.direct.iter().cloned());
            }
        }
        out.insert(callee, acc);
    }
    out
}

struct Scan<'a> {
    sym: &'a FnSym,
    table: &'a SymbolTable,
    info: FnLockInfo,
    held: Vec<Held>,
    lg: &'a mut LockGraph,
    out: &'a mut Vec<Violation>,
}

impl Scan<'_> {
    fn block(&mut self, stmts: &[Stmt]) {
        let base = self.held.len();
        for s in stmts {
            match s {
                Stmt::Let { names, init, .. } => {
                    if let Some(e) = init {
                        let guard = names.first().cloned();
                        let before = self.held.len();
                        self.expr(e, guard.as_deref());
                        // Temporary acquisitions inside the initializer
                        // beyond the persisted guard die with the
                        // statement.
                        self.drop_temporaries(before);
                    }
                }
                Stmt::Expr(e) => {
                    if let Some(g) = dropped_guard(e) {
                        if let Some(pos) = self
                            .held
                            .iter()
                            .rposition(|h| h.guard.as_deref() == Some(g.as_str()))
                        {
                            self.held.remove(pos);
                            continue;
                        }
                    }
                    let before = self.held.len();
                    self.expr(e, None);
                    self.drop_temporaries(before);
                }
            }
        }
        self.held.truncate(base);
    }

    /// Drop locks acquired after `before` that have no guard binding.
    fn drop_temporaries(&mut self, before: usize) {
        let mut i = before;
        while i < self.held.len() {
            if self.held[i].guard.is_none() {
                self.held.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Record a new acquisition: order edges from everything held,
    /// re-entry finding if already held, then push.
    fn acquire(&mut self, id: String, guard: Option<&str>, line: u32, mode: AcqMode) {
        self.info.direct.insert(id.clone());
        for h in &self.held {
            if h.id == id {
                let msg = if h.mode == AcqMode::Read && mode == AcqMode::Read {
                    // Deliberately flagged, not whitelisted: std makes
                    // no read-reentrancy promise, and a writer queued
                    // between the two reads deadlocks both.
                    format!(
                        "`{}` re-acquires read lock `{id}` (read guard held since line {}) — \
                         std RwLock readers are not reentrant: a writer queued between the \
                         two reads blocks the second read and deadlocks",
                        self.sym.qual_name(),
                        h.line
                    )
                } else {
                    format!(
                        "`{}` re-acquires `{id}` (already held since line {}) — \
                         self-deadlock on a non-reentrant mutex",
                        self.sym.qual_name(),
                        h.line
                    )
                };
                self.out.push(Violation {
                    rule: Rule::R11,
                    file: self.sym.file.clone(),
                    line,
                    msg,
                });
            } else {
                self.lg
                    .edges
                    .entry((h.id.clone(), id.clone()))
                    .or_insert_with(|| {
                        format!("{}:{} ({})", self.sym.file, line, self.sym.qual_name())
                    });
            }
        }
        self.held.push(Held {
            id,
            guard: guard.map(str::to_string),
            line,
            mode,
        });
    }

    /// Walk one expression under the current held set. `guard` is the
    /// binding name acquisitions in this expression persist under
    /// (set for `let` initializers).
    fn expr(&mut self, e: &Expr, guard: Option<&str>) {
        match e {
            Expr::Block { stmts, .. } => {
                self.block(stmts);
                return;
            }
            Expr::Method {
                recv,
                name,
                args,
                line,
            } if args.is_empty() && matches!(name.as_str(), "lock" | "read" | "write") => {
                // Evaluate the receiver first (it may itself lock).
                self.expr(recv, None);
                if let Some(id) = lock_id(recv, self.sym) {
                    let mode = if name == "read" {
                        AcqMode::Read
                    } else {
                        AcqMode::Write
                    };
                    self.acquire(id, guard, *line, mode);
                }
                return;
            }
            _ => {}
        }
        // Calls made while locks are held: record for the
        // interprocedural pass.
        if !self.held.is_empty() {
            if let Some(callee) = self.resolve_call(e) {
                let ids: Vec<String> = self.held.iter().map(|h| h.id.clone()).collect();
                for id in ids {
                    self.info.calls_under.push((id, callee, e.line()));
                }
            }
        }
        // Guard-returning helpers: `let g = self.lock_helper();` keeps
        // the callee's locks held in this scope.
        if guard.is_some() {
            if let Some(callee) = self.resolve_call(e) {
                let def = &self.table.fns[callee].def;
                if def.ret_ty.contains("Guard") {
                    for (id, mode) in helper_direct_locks(&self.table.fns[callee]) {
                        self.acquire(id, guard, e.line(), mode);
                    }
                }
            }
        }
        // Generic recursion.
        match e {
            Expr::Call { func, args, .. } => {
                self.expr(func, None);
                for a in args {
                    self.expr(a, guard);
                }
            }
            Expr::Method { recv, args, .. } => {
                self.expr(recv, guard);
                for a in args {
                    self.expr(a, None);
                }
            }
            Expr::Field { base, .. } => self.expr(base, guard),
            Expr::Index { base, index, .. } => {
                self.expr(base, None);
                self.expr(index, None);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs, guard);
                self.expr(rhs, None);
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.expr(a, None);
                }
            }
            Expr::ForLoop { iter, body, .. } => {
                self.expr(iter, None);
                self.expr(body, None);
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.expr(cond, guard);
                self.expr(then_branch, None);
                if let Some(eb) = else_branch {
                    self.expr(eb, None);
                }
            }
            Expr::Match { scrut, arms, .. } => {
                self.expr(scrut, guard);
                for a in arms {
                    self.expr(a, None);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond, None);
                self.expr(body, None);
            }
            Expr::Loop { body, .. } => self.expr(body, None),
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, None);
                }
            }
            Expr::Try { inner, .. } => self.expr(inner, guard),
            Expr::Other { children, .. } => {
                for c in children {
                    self.expr(c, None);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Block { .. } => {}
        }
    }

    /// Resolve a call expression to a workspace function id.
    fn resolve_call(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Call { func, .. } => match func.as_ref() {
                Expr::Path { segs, .. } => resolve_path_call(self.table, self.sym, segs),
                _ => None,
            },
            Expr::Method { name, .. } => resolve_method_call(self.table, self.sym, name),
            _ => None,
        }
    }
}

/// Locks a guard-returning helper acquires directly in its own body,
/// with the mode each acquisition takes them in.
fn helper_direct_locks(sym: &FnSym) -> Vec<(String, AcqMode)> {
    let mut out = Vec::new();
    if let Some(body) = &sym.def.body {
        crate::ast::walk_stmts(body, &mut |e| {
            if let Expr::Method {
                recv, name, args, ..
            } = e
            {
                if args.is_empty() && matches!(name.as_str(), "lock" | "read" | "write") {
                    if let Some(id) = lock_id(recv, sym) {
                        let mode = if name == "read" {
                            AcqMode::Read
                        } else {
                            AcqMode::Write
                        };
                        out.push((id, mode));
                    }
                }
            }
        });
    }
    out
}

/// Stable identity for the lock behind an acquisition receiver.
///
/// - `self.field` in `impl T` → `crate::T.field`
/// - any other `….field` chain → `crate::field`
/// - a path (static or imported) → `crate::PATH`
/// - a call result (`stderr().lock()`) → `crate::fn()`
///
/// Local `let m = Mutex::new(…)` receivers resolve to the variable
/// name scoped by the function, so unrelated locals never unify.
fn lock_id(recv: &Expr, sym: &FnSym) -> Option<String> {
    match recv {
        Expr::Field { base, name, .. } => match base.as_ref() {
            Expr::Path { segs, .. } if segs.len() == 1 && segs[0] == "self" => {
                match &sym.def.qual {
                    Some(q) => Some(format!("{}::{q}.{name}", sym.krate)),
                    None => Some(format!("{}::{name}", sym.krate)),
                }
            }
            _ => Some(format!("{}::{name}", sym.krate)),
        },
        Expr::Path { segs, .. } => {
            let last = segs.last()?;
            if last.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
                Some(format!("{}::{last}", sym.krate))
            } else {
                // A local variable: scope by function so two unrelated
                // locals in different functions stay distinct.
                Some(format!("{}::{}::{last}", sym.krate, sym.def.name))
            }
        }
        Expr::Call { func, .. } => match func.as_ref() {
            Expr::Path { segs, .. } => Some(format!("{}::{}()", sym.krate, segs.last()?)),
            _ => None,
        },
        Expr::Method { name, .. } => Some(format!("{}::{name}()", sym.krate)),
        Expr::Try { inner, .. } | Expr::Index { base: inner, .. } => lock_id(inner, sym),
        Expr::Other { children, .. } if children.len() == 1 => lock_id(&children[0], sym),
        _ => None,
    }
}

/// `drop(g)` on a plain identifier: the released guard name.
fn dropped_guard(e: &Expr) -> Option<String> {
    let Expr::Call { func, args, .. } = e else {
        return None;
    };
    let Expr::Path { segs, .. } = func.as_ref() else {
        return None;
    };
    if segs.len() != 1 || segs[0] != "drop" || args.len() != 1 {
        return None;
    }
    let Expr::Path { segs: g, .. } = &args[0] else {
        return None;
    };
    (g.len() == 1).then(|| g[0].clone())
}
