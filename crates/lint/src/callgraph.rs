//! Workspace call graph, resolved by name over the symbol table.
//!
//! Resolution is a deliberate *under-approximation*: an edge is added
//! only when a call site resolves to exactly one plausible definition
//! (after preferring qualified matches and same-crate candidates).
//! Ambiguous names — `new`, `len`, trait methods with many impls —
//! produce no edge rather than a wrong one, so R6's printed call paths
//! are always real paths, at the cost of possibly missing exotic ones.

use crate::ast::{walk_stmts, Expr};
use crate::symbols::{FnSym, SymbolTable};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The call graph: `edges[caller] = sorted callee ids`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency list indexed by [`FnSym::id`].
    pub edges: Vec<Vec<usize>>,
}

/// A call site observed in a function body, before resolution.
#[derive(Debug)]
enum Site {
    /// `foo(…)` or `a::b::foo(…)` — path segments.
    Path(Vec<String>),
    /// `recv.name(…)`.
    Method(String),
}

impl CallGraph {
    /// Build the graph over every function in the table.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); table.fns.len()];
        for sym in &table.fns {
            let Some(body) = &sym.def.body else { continue };
            let mut sites = Vec::new();
            walk_stmts(body, &mut |e| match e {
                Expr::Call { func, .. } => {
                    if let Expr::Path { segs, .. } = func.as_ref() {
                        sites.push(Site::Path(segs.clone()));
                    }
                }
                Expr::Method { name, .. } => sites.push(Site::Method(name.clone())),
                _ => {}
            });
            let mut out = BTreeSet::new();
            for site in sites {
                if let Some(callee) = resolve(table, sym, &site) {
                    if callee != sym.id {
                        out.insert(callee);
                    }
                }
            }
            edges[sym.id] = out.into_iter().collect();
        }
        CallGraph { edges }
    }

    /// BFS from `roots`; returns, for every reachable id, the id it was
    /// first reached from (roots map to themselves). Use
    /// [`CallGraph::path_to`] to reconstruct a shortest call path.
    pub fn reachable(&self, roots: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if r < self.edges.len() && !parent.contains_key(&r) {
                parent.insert(r, r);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Reconstruct the root→`target` path from a [`reachable`] parent
    /// map.
    ///
    /// [`reachable`]: CallGraph::reachable
    pub fn path_to(parent: &HashMap<usize, usize>, target: usize) -> Vec<usize> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Render the graph as a deterministic Graphviz DOT digraph:
    /// nodes are `crate::Type::name`, sorted; edges sorted.
    pub fn to_dot(&self, table: &SymbolTable) -> String {
        let mut out = String::from("digraph callgraph {\n    rankdir=LR;\n");
        let mut order: Vec<&FnSym> = table.fns.iter().collect();
        order.sort_by(|a, b| a.display().cmp(&b.display()).then(a.id.cmp(&b.id)));
        for sym in &order {
            out.push_str(&format!(
                "    \"{}\" [shape={}];\n",
                sym.display(),
                if sym.is_pub() { "box" } else { "ellipse" }
            ));
        }
        let mut lines = BTreeSet::new();
        for sym in &order {
            for &callee in &self.edges[sym.id] {
                lines.insert(format!(
                    "    \"{}\" -> \"{}\";\n",
                    sym.display(),
                    table.fns[callee].display()
                ));
            }
        }
        for l in lines {
            out.push_str(&l);
        }
        out.push_str("}\n");
        out
    }
}

/// Ubiquitous trait-method names that many types implement via
/// `derive` (which the parser cannot see). A lone manual impl would
/// otherwise soak up every call site in the workspace as a false
/// edge, so these never resolve by bare name.
const NEVER_RESOLVE_METHODS: &[&str] = &[
    "clone",
    "fmt",
    "default",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "next",
    "from",
    "into",
    "try_from",
    "try_into",
    "to_string",
    "serialize",
    "deserialize",
    "index",
    "index_mut",
    "deref",
    "deref_mut",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "extend",
    "from_iter",
    "into_iter",
    // Std-container accessors: every map/vec call site would otherwise
    // resolve to whichever crate-local `get` happens to be unique
    // (seen: `BTreeMap::get` → `ModelPool::get`, a phantom lock edge).
    "get",
    "insert",
    "remove",
    "contains",
    "push",
];

/// Resolve one call site from within `caller` to a unique definition,
/// or `None` when ambiguous/external.
fn resolve(table: &SymbolTable, caller: &FnSym, site: &Site) -> Option<usize> {
    match site {
        Site::Path(segs) => resolve_path_call(table, caller, segs),
        Site::Method(name) => resolve_method_call(table, caller, name),
    }
}

/// Resolve `a::b::name(…)` / `name(…)` to a unique definition.
pub fn resolve_path_call(table: &SymbolTable, caller: &FnSym, segs: &[String]) -> Option<usize> {
    let name = segs.last()?;
    if segs.len() >= 2 {
        // `Type::name` / `module::Type::name`: a qualified match wins
        // outright when unique.
        let qual = format!("{}::{name}", segs[segs.len() - 2]);
        let qualified = table.lookup_qual(&qual);
        if !qualified.is_empty() {
            return unique_pref_crate(table, caller, qualified);
        }
    }
    // Free-function match: exclude methods (those need a receiver or a
    // qualified path).
    let candidates: Vec<usize> = table
        .lookup_name(name)
        .iter()
        .copied()
        .filter(|&id| table.fns[id].def.qual.is_none())
        .collect();
    unique_pref_crate(table, caller, &candidates)
}

/// Resolve `recv.name(…)` to a unique method definition.
pub fn resolve_method_call(table: &SymbolTable, caller: &FnSym, name: &str) -> Option<usize> {
    if NEVER_RESOLVE_METHODS.contains(&name) {
        return None;
    }
    let candidates: Vec<usize> = table
        .lookup_name(name)
        .iter()
        .copied()
        .filter(|&id| table.fns[id].def.qual.is_some())
        .collect();
    unique_pref_crate(table, caller, &candidates)
}

/// Collapse candidates: prefer same-crate definitions, then require
/// uniqueness.
fn unique_pref_crate(table: &SymbolTable, caller: &FnSym, ids: &[usize]) -> Option<usize> {
    match ids {
        [] => None,
        [one] => Some(*one),
        many => {
            let same: Vec<usize> = many
                .iter()
                .copied()
                .filter(|&id| table.fns[id].krate == caller.krate)
                .collect();
            match same.as_slice() {
                [one] => Some(*one),
                _ => None, // still ambiguous: no edge
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn graph(srcs: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let sources: Vec<(String, String)> = srcs
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let (table, errs) = SymbolTable::build(&sources);
        assert!(errs.is_empty(), "{errs:?}");
        let g = CallGraph::build(&table);
        (table, g)
    }

    fn id(t: &SymbolTable, display: &str) -> usize {
        t.fns
            .iter()
            .find(|f| f.display() == display)
            .unwrap_or_else(|| panic!("no fn {display}"))
            .id
    }

    #[test]
    fn direct_and_method_edges_resolve() {
        let (t, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct S;\n\
             impl S { pub fn step(&self) { helper(); } }\n\
             fn helper() {}\n\
             pub fn run(s: &S) { s.step(); }",
        )]);
        let run = id(&t, "a::run");
        let step = id(&t, "a::S::step");
        let helper = id(&t, "a::helper");
        assert_eq!(g.edges[run], vec![step]);
        assert_eq!(g.edges[step], vec![helper]);
    }

    #[test]
    fn ambiguous_names_produce_no_edge() {
        let (t, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn go() { work(); }"),
            ("crates/b/src/lib.rs", "pub fn work() {}"),
            ("crates/c/src/lib.rs", "pub fn work() {}"),
        ]);
        let go = id(&t, "a::go");
        assert!(g.edges[go].is_empty(), "{:?}", g.edges[go]);
    }

    #[test]
    fn same_crate_candidate_wins_over_cross_crate() {
        let (t, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn go() { work(); }\npub fn work() {}",
            ),
            ("crates/b/src/lib.rs", "pub fn work() {}"),
        ]);
        let go = id(&t, "a::go");
        let work_a = id(&t, "a::work");
        assert_eq!(g.edges[go], vec![work_a]);
    }

    #[test]
    fn reachability_reconstructs_shortest_path() {
        let (t, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let entry = id(&t, "a::entry");
        let leaf = id(&t, "a::leaf");
        let parent = g.reachable(&[entry]);
        let path = CallGraph::path_to(&parent, leaf);
        let names: Vec<String> = path.iter().map(|&i| t.fns[i].display()).collect();
        assert_eq!(names, ["a::entry", "a::mid", "a::leaf"]);
    }

    #[test]
    fn dot_dump_is_deterministic_and_sorted() {
        let (t, g) = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn b_fn() { a_fn(); }\nfn a_fn() {}",
        )]);
        let dot = g.to_dot(&t);
        assert!(dot.starts_with("digraph callgraph {"));
        let a_pos = dot.find("\"a::a_fn\" [shape=ellipse]").expect("a_fn node");
        let b_pos = dot.find("\"a::b_fn\" [shape=box]").expect("b_fn node");
        assert!(a_pos < b_pos, "nodes must be sorted");
        assert!(dot.contains("\"a::b_fn\" -> \"a::a_fn\";"));
    }
}
