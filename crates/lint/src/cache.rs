//! Incremental lint cache under `target/lint-cache`.
//!
//! Two kinds of entries, both keyed by content hashes (FNV-1a 64 over
//! the bytes that can change the answer — never by mtime):
//!
//! - **per-file** entries hold one file's R1–R4 findings, keyed by the
//!   file's own path + content *and* by a fingerprint of the lint
//!   crate's sources, so editing a rule invalidates every file;
//! - one **semantic** entry holds the whole-workspace findings
//!   (R5–R12), keyed by the concatenation of every `(path, content)`
//!   pair — any edit anywhere re-runs the interprocedural pass, which
//!   is the only sound granularity for call-graph rules.
//!
//! On an unchanged tree the second run therefore hits for every file
//! and for the semantic pass, and does no parsing at all. Corrupt or
//! unreadable entries degrade to a miss, never to a wrong answer.

use crate::rules::{Rule, Violation};
use std::fs;
use std::path::{Path, PathBuf};

/// Bump when the entry format changes (hash inputs already cover rule
/// behaviour via the lint-source fingerprint).
pub const CACHE_SCHEMA: u32 = 1;

/// Directory under the workspace root where entries live.
pub const CACHE_DIR: &str = "target/lint-cache";

/// FNV-1a 64 (matches the repo's deterministic-hash idiom in
/// `campaign::hash`; no dependency on `DefaultHasher` stability).
fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The open cache plus hit/miss counters for the report.
#[derive(Debug)]
pub struct LintCache {
    dir: PathBuf,
    /// Fingerprint of the lint crate's own sources, mixed into every
    /// per-file key.
    lint_fingerprint: u64,
    /// Entries served from disk.
    pub hits: usize,
    /// Entries recomputed and (re)written.
    pub misses: usize,
}

impl LintCache {
    /// Open (creating the directory if needed) the cache for a
    /// workspace whose sources are `(rel_path, content)` pairs.
    pub fn open(root: &Path, sources: &[(String, String)]) -> LintCache {
        let mut lint_fingerprint = u64::from(CACHE_SCHEMA);
        for (rel, src) in sources {
            if rel.starts_with("crates/lint/") {
                lint_fingerprint = fnv1a64(lint_fingerprint, rel.as_bytes());
                lint_fingerprint = fnv1a64(lint_fingerprint, src.as_bytes());
            }
        }
        let dir = root.join(CACHE_DIR);
        // Failure to create the directory just means every write
        // fails, which degrades to an uncached run.
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
        LintCache {
            dir,
            lint_fingerprint,
            hits: 0,
            misses: 0,
        }
    }

    fn file_key(&self, rel: &str, src: &str) -> u64 {
        let h = fnv1a64(self.lint_fingerprint, rel.as_bytes());
        fnv1a64(h, src.as_bytes())
    }

    /// Key covering every source in the workspace (semantic entry).
    pub fn workspace_key(&self, sources: &[(String, String)]) -> u64 {
        let mut h = self.lint_fingerprint;
        for (rel, src) in sources {
            h = fnv1a64(h, rel.as_bytes());
            h = fnv1a64(h, src.as_bytes());
        }
        h
    }

    /// Cached R1–R4 findings for one file, if present and readable.
    pub fn get_file(&mut self, rel: &str, src: &str) -> Option<Vec<Violation>> {
        let path = self
            .dir
            .join(format!("file-{:016x}.lint", self.file_key(rel, src)));
        match fs::read_to_string(&path).ok().and_then(|t| decode(&t)) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store one file's R1–R4 findings.
    pub fn put_file(&self, rel: &str, src: &str, v: &[Violation]) {
        let path = self
            .dir
            .join(format!("file-{:016x}.lint", self.file_key(rel, src)));
        if let Err(e) = fs::write(&path, encode(v)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }

    /// Cached whole-workspace semantic findings, if present.
    pub fn get_semantic(&mut self, key: u64) -> Option<Vec<Violation>> {
        let path = self.dir.join(format!("semantic-{key:016x}.lint"));
        match fs::read_to_string(&path).ok().and_then(|t| decode(&t)) {
            Some(v) => {
                self.hits += 1;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the semantic findings, dropping entries for older trees
    /// (only one workspace state is ever current).
    pub fn put_semantic(&self, key: u64, v: &[Violation]) {
        if let Ok(rd) = fs::read_dir(&self.dir) {
            for entry in rd.filter_map(Result::ok) {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("semantic-") && name.ends_with(".lint") {
                    crate::best_effort_remove(&entry.path());
                }
            }
        }
        let path = self.dir.join(format!("semantic-{key:016x}.lint"));
        if let Err(e) = fs::write(&path, encode(v)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// One violation per line: `rule\tfile\tline\tmsg` with the message
/// backslash-escaped so embedded newlines/tabs round-trip.
fn encode(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            v.rule.id(),
            v.file,
            v.line,
            v.msg
                .replace('\\', "\\\\")
                .replace('\n', "\\n")
                .replace('\t', "\\t"),
        ));
    }
    out
}

/// Inverse of [`encode`]; `None` on any malformed line (treated as a
/// cache miss by the callers).
fn decode(text: &str) -> Option<Vec<Violation>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut parts = line.splitn(4, '\t');
        let rule = Rule::from_id(parts.next()?)?;
        let file = parts.next()?.to_string();
        let line_no: u32 = parts.next()?.parse().ok()?;
        let msg = unescape(parts.next()?);
        out.push(Violation {
            rule,
            file,
            line: line_no,
            msg,
        });
    }
    Some(out)
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_round_trip_through_encode_decode() {
        let v = vec![Violation {
            rule: Rule::R10,
            file: "a/b.rs".to_string(),
            line: 7,
            msg: "tab\there\nand a \\ backslash".to_string(),
        }];
        let decoded = decode(&encode(&v)).expect("decodes");
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].rule, Rule::R10);
        assert_eq!(decoded[0].msg, v[0].msg);
    }

    #[test]
    fn malformed_lines_are_a_miss_not_a_panic() {
        assert!(decode("R1\tonly-two-fields").is_none());
        assert!(decode("R99\ta\t1\tmsg").is_none());
    }
}
