//! Per-function control-flow graphs over the [`crate::ast`] trees,
//! plus a small forward dataflow engine.
//!
//! The CFG is built per statement: statement-position `if`/`match`/
//! `while`/`for`/`loop` lower into diamonds and loop headers with back
//! edges; `return` terminates the current block with an edge to the
//! exit block; any statement containing a `?` (or an embedded
//! `return`) additionally gets an early edge to the exit, modelling
//! the propagated-error path. Expression-position control flow (a
//! `let x = if …` initializer, closure bodies) stays inside its
//! enclosing action — the dataflow analyses walk those sub-trees
//! through the action's expression instead.
//!
//! Like the parser the CFG *over*-approximates paths (every loop can
//! run zero times, every `loop` can break): a may-analysis over it
//! therefore never misses a real path, which is the direction the
//! R10/R12 rules need to stay sound-for-their-findings.

use crate::ast::{walk_expr, Expr, Stmt};

/// One atomic step inside a basic block.
#[derive(Debug, Clone, Copy)]
pub enum Action<'a> {
    /// A `let` binding: names, declared type, initializer.
    Bind {
        /// The bound names (`["_"]` for a wildcard discard).
        names: &'a [String],
        /// Declared type annotation, when present.
        ty: Option<&'a str>,
        /// Initializer expression, when present.
        init: Option<&'a Expr>,
        /// Line of the `let`.
        line: u32,
    },
    /// An evaluated expression. `used` is true when its value flows
    /// onward (a function's trailing return expression or the tail of
    /// a branch in return position) rather than being discarded.
    Eval {
        /// The expression.
        expr: &'a Expr,
        /// Is the value consumed by the enclosing context?
        used: bool,
    },
}

/// A basic block: straight-line actions and successor edges.
#[derive(Debug, Default)]
pub struct Block<'a> {
    /// Actions in execution order.
    pub actions: Vec<Action<'a>>,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph. Block 0 is the entry; `exit` is
/// a distinguished empty block every return path reaches.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// All blocks; index 0 is the entry.
    pub blocks: Vec<Block<'a>>,
    /// Index of the exit block.
    pub exit: usize,
}

impl<'a> Cfg<'a> {
    /// Build the CFG for a function body. `returns_value` marks the
    /// trailing expression (and branch tails in that position) as
    /// value-consuming, so analyses don't mistake `fn f() -> R { g() }`
    /// for a dropped result.
    pub fn build(body: &'a [Stmt], returns_value: bool) -> Cfg<'a> {
        let mut b = Builder {
            blocks: vec![Block::default(), Block::default()],
            exit: 1,
        };
        let last = b.lower_stmts(body, 0, returns_value);
        b.edge(last, b.exit);
        Cfg {
            blocks: b.blocks,
            exit: b.exit,
        }
    }

    /// Predecessor lists (for the dataflow engine).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(i);
            }
        }
        preds
    }

    /// Blocks reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for &s in &self.blocks[i].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

struct Builder<'a> {
    blocks: Vec<Block<'a>>,
    exit: usize,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Lower a statement list into blocks starting at `cur`; returns
    /// the block control falls out of. `tail_used` marks the final
    /// statement's value as consumed (function trailing expression).
    fn lower_stmts(&mut self, stmts: &'a [Stmt], mut cur: usize, tail_used: bool) -> usize {
        for (i, s) in stmts.iter().enumerate() {
            let is_tail = tail_used && i + 1 == stmts.len();
            cur = self.lower_stmt(s, cur, is_tail);
        }
        cur
    }

    fn lower_stmt(&mut self, s: &'a Stmt, cur: usize, tail_used: bool) -> usize {
        match s {
            Stmt::Let {
                names,
                ty,
                init,
                line,
            } => {
                self.blocks[cur].actions.push(Action::Bind {
                    names,
                    ty: ty.as_deref(),
                    init: init.as_ref(),
                    line: *line,
                });
                match init {
                    Some(e) if has_early_exit(e) => self.split_for_early_exit(cur),
                    _ => cur,
                }
            }
            Stmt::Expr(e) => self.lower_expr(e, cur, tail_used),
        }
    }

    /// Lower a statement-position expression. Control-flow constructs
    /// get structural edges; everything else is a single action.
    fn lower_expr(&mut self, e: &'a Expr, cur: usize, used: bool) -> usize {
        match e {
            Expr::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.blocks[cur].actions.push(Action::Eval {
                    expr: cond,
                    used: true,
                });
                let cur = if has_early_exit(cond) {
                    self.split_for_early_exit(cur)
                } else {
                    cur
                };
                let join = self.new_block();
                let then_start = self.new_block();
                self.edge(cur, then_start);
                let then_end = self.lower_branch(then_branch, then_start, used);
                self.edge(then_end, join);
                match else_branch {
                    Some(eb) => {
                        let else_start = self.new_block();
                        self.edge(cur, else_start);
                        let else_end = self.lower_branch(eb, else_start, used);
                        self.edge(else_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Expr::Match { scrut, arms, .. } => {
                self.blocks[cur].actions.push(Action::Eval {
                    expr: scrut,
                    used: true,
                });
                let cur = if has_early_exit(scrut) {
                    self.split_for_early_exit(cur)
                } else {
                    cur
                };
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let start = self.new_block();
                    self.edge(cur, start);
                    let end = self.lower_branch(arm, start, used);
                    self.edge(end, join);
                }
                join
            }
            Expr::While { cond, body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                self.blocks[header].actions.push(Action::Eval {
                    expr: cond,
                    used: true,
                });
                let header_out = if has_early_exit(cond) {
                    self.split_for_early_exit(header)
                } else {
                    header
                };
                let body_start = self.new_block();
                self.edge(header_out, body_start);
                let body_end = self.lower_branch(body, body_start, false);
                self.edge(body_end, header);
                let after = self.new_block();
                self.edge(header_out, after);
                after
            }
            Expr::ForLoop { iter, body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                self.blocks[header].actions.push(Action::Eval {
                    expr: iter,
                    used: true,
                });
                let header_out = if has_early_exit(iter) {
                    self.split_for_early_exit(header)
                } else {
                    header
                };
                let body_start = self.new_block();
                self.edge(header_out, body_start);
                let body_end = self.lower_branch(body, body_start, false);
                self.edge(body_end, header);
                let after = self.new_block();
                self.edge(header_out, after);
                after
            }
            Expr::Loop { body, .. } => {
                let header = self.new_block();
                self.edge(cur, header);
                let body_end = self.lower_branch(body, header, false);
                self.edge(body_end, header);
                // Any `break` leaves the loop: over-approximate with an
                // exit edge from the header.
                let after = self.new_block();
                self.edge(header, after);
                after
            }
            Expr::Ret { value, .. } => {
                if let Some(v) = value {
                    self.blocks[cur].actions.push(Action::Eval {
                        expr: v,
                        used: true,
                    });
                }
                self.edge(cur, self.exit);
                // Code after an unconditional return is unreachable:
                // keep building into a fresh, unconnected block.
                self.new_block()
            }
            Expr::Block { stmts, .. } => self.lower_stmts(stmts, cur, used),
            _ => {
                self.blocks[cur]
                    .actions
                    .push(Action::Eval { expr: e, used });
                if has_early_exit(e) {
                    self.split_for_early_exit(cur)
                } else {
                    cur
                }
            }
        }
    }

    /// Lower a branch body (a `Block`, an `else if`, or a bare arm
    /// expression) starting in `start`.
    fn lower_branch(&mut self, e: &'a Expr, start: usize, used: bool) -> usize {
        match e {
            Expr::Block { stmts, .. } => self.lower_stmts(stmts, start, used),
            _ => self.lower_expr(e, start, used),
        }
    }

    /// After an action that may early-return (`?` or an embedded
    /// `return`), split the block: an edge to the exit models the
    /// error path, fall-through continues in a new block.
    fn split_for_early_exit(&mut self, cur: usize) -> usize {
        self.edge(cur, self.exit);
        let next = self.new_block();
        self.edge(cur, next);
        next
    }
}

/// Does this expression contain a `?` or an embedded `return` (so
/// evaluating it may leave the function early)?
pub fn has_early_exit(e: &Expr) -> bool {
    let mut found = false;
    walk_expr(e, &mut |x| {
        if matches!(x, Expr::Try { .. } | Expr::Ret { .. }) {
            found = true;
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Forward dataflow
// ---------------------------------------------------------------------------

/// Solve a forward dataflow problem to fixpoint with a worklist.
///
/// `state` is the lattice value (join = `join`, must be monotone with
/// `transfer` for termination); `transfer` maps a block's in-state to
/// its out-state. Returns the in-state of every block. The entry's
/// in-state is `init`; unreachable blocks keep `init` untouched.
pub fn forward<S, T, J>(cfg: &Cfg, init: S, mut transfer: T, join: J) -> Vec<S>
where
    S: Clone + PartialEq,
    T: FnMut(usize, &Block, &S) -> S,
    J: Fn(&mut S, &S),
{
    let preds = cfg.preds();
    let n = cfg.blocks.len();
    let mut in_states: Vec<S> = vec![init.clone(); n];
    let mut out_states: Vec<Option<S>> = vec![None; n];
    let mut work: Vec<usize> = (0..n).collect();
    // Bounded by lattice height in practice; the hard cap keeps a
    // non-monotone transfer from looping forever.
    let mut budget = n.saturating_mul(64) + 256;
    while let Some(i) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let mut state = init.clone();
        for &p in &preds[i] {
            if let Some(o) = &out_states[p] {
                join(&mut state, o);
            }
        }
        in_states[i] = state.clone();
        let out = transfer(i, &cfg.blocks[i], &state);
        if out_states[i].as_ref() != Some(&out) {
            out_states[i] = Some(out);
            for &s in &cfg.blocks[i].succs {
                if !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }
    in_states
}

/// The out-state that reaches the exit block (the in-state of `exit`),
/// for analyses that only care about function end.
pub fn exit_state<S, T, J>(cfg: &Cfg, init: S, transfer: T, join: J) -> S
where
    S: Clone + PartialEq,
    T: FnMut(usize, &Block, &S) -> S,
    J: Fn(&mut S, &S),
{
    let mut states = forward(cfg, init, transfer, join);
    states.swap_remove(cfg.exit)
}
