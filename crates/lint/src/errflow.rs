//! R12: swallowed-error detection over the CFG.
//!
//! A `Result` from a fallible operation must reach `?`, a `match`, or
//! some consuming sink on **every** CFG path. The compiler's
//! `#[must_use]` already catches a bare `fallible();` statement, but
//! two swallowing idioms slip past it and past code review:
//!
//! - `let _ = fallible();` — explicitly silences `must_use`, and the
//!   error disappears without a trace;
//! - `let r = fallible();` followed by a branch where `r` is consumed
//!   on one arm but silently dropped on the other.
//!
//! The second case is where the [`crate::cfg`] layer earns its keep: a
//! forward may-analysis tracks pending `Result` bindings, any mention
//! of the binding counts as consumption (deliberately generous — `?`,
//! `match`, logging, or passing it on all mention the name), and a
//! binding still pending in the exit block's in-state was dropped on
//! at least one path.

use crate::ast::{walk_expr, Expr, Stmt};
use crate::callgraph::{resolve_method_call, resolve_path_call};
use crate::cfg::{self, Action, Cfg};
use crate::rules::{Rule, Violation};
use crate::symbols::{FnSym, SymbolTable};
use std::collections::BTreeSet;

/// Method names that are fallible I/O regardless of receiver type.
const FALLIBLE_METHODS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "sync_all",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "read_line",
    "set_len",
];

/// Path-call prefixes that are fallible std I/O (`fs::write`,
/// `File::create`, …).
const FALLIBLE_PATH_PREFIXES: &[&str] = &["fs", "File", "OpenOptions"];

/// Run R12 over every function in the workspace.
pub fn check_r12(table: &SymbolTable) -> Vec<Violation> {
    let mut out = Vec::new();
    for sym in &table.fns {
        let Some(body) = &sym.def.body else { continue };
        check_fn(table, sym, body, &mut out);
    }
    out
}

fn check_fn(table: &SymbolTable, sym: &FnSym, body: &[Stmt], out: &mut Vec<Violation>) {
    let cfg = Cfg::build(body, !sym.def.ret_ty.is_empty());
    let reachable = cfg.reachable();

    // Immediate violations: `let _ = fallible()` and a dropped
    // statement whose value is a fresh fallible Result.
    for (i, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        for a in &blk.actions {
            match a {
                Action::Bind {
                    names,
                    init: Some(e),
                    line,
                    ..
                } if names == &["_".to_string()] => {
                    if let Some(what) = fallible_call(table, sym, e) {
                        out.push(Violation {
                            rule: Rule::R12,
                            file: sym.file.clone(),
                            line: *line,
                            msg: format!(
                                "`let _ =` swallows the fallible result of {what} in `{}` — \
                                 propagate with `?`, match it, or log the error",
                                sym.qual_name()
                            ),
                        });
                    }
                }
                Action::Eval { expr, used: false } => {
                    if let Some(what) = fallible_call(table, sym, expr) {
                        out.push(Violation {
                            rule: Rule::R12,
                            file: sym.file.clone(),
                            line: expr.line(),
                            msg: format!(
                                "result of {what} dropped on the floor in `{}` — \
                                 propagate with `?`, match it, or log the error",
                                sym.qual_name()
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    // Path-sensitive violations: a named Result binding that some path
    // never mentions again. State = set of (name, bind line) pending.
    let init: BTreeSet<(String, u32)> = BTreeSet::new();
    let transfer = |_i: usize, blk: &cfg::Block, state: &BTreeSet<(String, u32)>| {
        let mut s = state.clone();
        for a in &blk.actions {
            apply_action(table, sym, a, &mut s);
        }
        s
    };
    let join = |a: &mut BTreeSet<(String, u32)>, b: &BTreeSet<(String, u32)>| {
        a.extend(b.iter().cloned());
    };
    for (name, line) in cfg::exit_state(&cfg, init, transfer, join) {
        out.push(Violation {
            rule: Rule::R12,
            file: sym.file.clone(),
            line,
            msg: format!(
                "fallible result bound to `{name}` in `{}` is never consumed on at least \
                 one path — propagate with `?`, match it, or log the error",
                sym.qual_name()
            ),
        });
    }
}

/// Transfer for one action: mentions consume pending bindings, a new
/// fallible single-name `let` starts tracking, rebinding clears.
fn apply_action(table: &SymbolTable, sym: &FnSym, a: &Action, state: &mut BTreeSet<(String, u32)>) {
    match a {
        Action::Bind {
            names, init, line, ..
        } => {
            if let Some(e) = init {
                consume_mentions(e, state);
            }
            for n in names.iter() {
                state.retain(|(p, _)| p != n);
            }
            if let [name] = names {
                if name != "_" && init.is_some_and(|e| fallible_call(table, sym, e).is_some()) {
                    state.insert((name.clone(), *line));
                }
            }
        }
        Action::Eval { expr, .. } => consume_mentions(expr, state),
    }
}

/// Any mention of a pending name — in a `?`, a `match` scrutinee, a
/// call argument, a log macro, a closure — counts as consumption.
fn consume_mentions(e: &Expr, state: &mut BTreeSet<(String, u32)>) {
    if state.is_empty() {
        return;
    }
    walk_expr(e, &mut |x| {
        if let Expr::Path { segs, .. } = x {
            if let Some(first) = segs.first() {
                state.retain(|(p, _)| p != first);
            }
        }
    });
}

/// Is this expression, at its top level, a fallible call whose value
/// is a `Result`? Returns a short description for the message.
///
/// Chained consumption (`f().ok()`, `f()?`) makes the *chain* the top
/// level, so those never report; only a bare fallible call does.
fn fallible_call(table: &SymbolTable, sym: &FnSym, e: &Expr) -> Option<String> {
    match e {
        Expr::Call { func, .. } => {
            let Expr::Path { segs, .. } = func.as_ref() else {
                return None;
            };
            if segs.len() >= 2 {
                let prev = &segs[segs.len() - 2];
                if FALLIBLE_PATH_PREFIXES.contains(&prev.as_str()) {
                    return Some(format!("`{}()`", segs.join("::")));
                }
            }
            let callee = resolve_path_call(table, sym, segs)?;
            returns_result(table, callee).then(|| format!("`{}()`", segs.join("::")))
        }
        Expr::Method { name, .. } => {
            if FALLIBLE_METHODS.contains(&name.as_str()) {
                return Some(format!("`.{name}()`"));
            }
            let callee = resolve_method_call(table, sym, name)?;
            returns_result(table, callee).then(|| format!("`.{name}()`"))
        }
        _ => None,
    }
}

/// Does a workspace function's declared return type carry a `Result`?
fn returns_result(table: &SymbolTable, id: usize) -> bool {
    table.fns[id].def.ret_ty.contains("Result")
}
