//! The five repo-specific rules, as token-stream scans.
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | no `unwrap()` / `expect()` / `panic!` in shipped library code |
//! | R2   | public `f64` surface in `thermal`/`coolant`/`power` carries a unit in its name |
//! | R3   | no NaN-unsafe float comparisons (`partial_cmp().unwrap()`, `==` on float literals) |
//! | R4   | no `unsafe` outside `vendor/` |
//! | R5   | every experiment name dispatches in `run_experiment` and vice versa |
//! | R6   | no panic site reachable from a `pub fn` in the physics/campaign crates |
//! | R7   | unit suffixes stay dimensionally consistent through arithmetic |
//! | R8   | every experiment fn is reachable from CLI dispatch and vice versa |
//! | R9   | no I/O, spawn, or cross-crate solver call under a live scheduler lock |
//! | R10  | no nondeterministic value source reachable from a replay-critical root |
//! | R11  | lock-acquisition order stays acyclic; no re-entrant holds across calls |
//! | R12  | every fallible `Result` reaches `?`, `match`, or a sink on every path |
//!
//! R1–R5 are token-stream scans; R6–R9 run on the AST / call graph and
//! live in [`crate::semantic`].
//!
//! All scans run on token streams that already had `#[cfg(test)]`
//! items stripped (see [`crate::lexer::strip_test_items`]); test code
//! may unwrap and compare floats at will.

use crate::lexer::{Token, TokenKind};

/// Which rule a violation belongs to. The `Display` form (`R1`..`R5`)
/// is what the allowlist file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking calls in library code.
    R1,
    /// Unit-less public `f64` names in the physics crates.
    R2,
    /// NaN-unsafe float comparisons.
    R3,
    /// `unsafe` outside `vendor/`.
    R4,
    /// Experiment registry vs campaign dispatch drift.
    R5,
    /// Panic site reachable from a public physics/campaign entry point.
    R6,
    /// Unit-dimension mismatch inferred through arithmetic.
    R7,
    /// Experiment function dead (or dispatched but undefined).
    R8,
    /// Blocking operation while a scheduler lock guard is live.
    R9,
    /// Nondeterministic value source reachable from a replay root.
    R10,
    /// Lock-order cycle or re-entrant acquisition across call edges.
    R11,
    /// Fallible `Result` dropped on the floor on some path.
    R12,
}

impl Rule {
    /// Stable identifier used in reports and `lint.allow`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
            Rule::R11 => "R11",
            Rule::R12 => "R12",
        }
    }

    /// Every rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::R1,
        Rule::R2,
        Rule::R3,
        Rule::R4,
        Rule::R5,
        Rule::R6,
        Rule::R7,
        Rule::R8,
        Rule::R9,
        Rule::R10,
        Rule::R11,
        Rule::R12,
    ];

    /// Parse an allowlist rule column.
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            "R10" => Some(Rule::R10),
            "R11" => Some(Rule::R11),
            "R12" => Some(Rule::R12),
            _ => None,
        }
    }

    /// One-line description shown in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::R1 => "no unwrap()/expect()/panic! in non-test library code",
            Rule::R2 => "public f64 names in thermal/coolant/power must carry a unit",
            Rule::R3 => "no NaN-unsafe float comparison outside tests",
            Rule::R4 => "no `unsafe` outside vendor/",
            Rule::R5 => "experiment registry and dispatch must agree",
            Rule::R6 => "no panic site reachable from a pub fn in thermal/coolant/power/campaign",
            Rule::R7 => "unit suffixes must stay dimensionally consistent through arithmetic",
            Rule::R8 => "every experiment fn must be reachable from CLI dispatch and vice versa",
            Rule::R9 => "no file I/O, Command spawn, or solver call under a live scheduler lock",
            Rule::R10 => {
                "no wall-clock, unordered iteration, or thread-id value may reach a replay root"
            }
            Rule::R11 => "lock-acquisition-order graph must stay acyclic with no re-entrant holds",
            Rule::R12 => "a fallible Result must reach `?`, `match`, or a sink on every path",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable detail.
    pub msg: String,
}

// ---------------------------------------------------------------------------
// R1: panicking calls
// ---------------------------------------------------------------------------

/// Scan for `.unwrap()`, `.expect(` and `panic!` in shipped code.
pub fn check_r1(file: &str, tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && tokens[i - 1].is_punct(".");
        let next_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct("!"));
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => Some(format!(".{}()", t.text)),
            "panic" if next_bang => Some("panic!".to_string()),
            _ => None,
        };
        if let Some(what) = hit {
            out.push(Violation {
                rule: Rule::R1,
                file: file.to_string(),
                line: t.line,
                msg: format!("{what} in non-test code (return a Result or use unwrap_or_*)"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R2: dimensional naming
// ---------------------------------------------------------------------------

/// Unit suffixes a public `f64` name may end with (`_m2`, `_k_per_w`,
/// ... — compound suffixes like `w_per_m_k` end in a base unit, so
/// checking the final `_`-separated segment covers them too).
pub(crate) const UNIT_SEGMENTS: &[&str] = &[
    "k", "c", "w", "kw", "v", "a", "hz", "ghz", "mhz", "j", "kwh", "ev", "m", "mm", "um", "nm",
    "m2", "mm2", "cm2", "um2", "m3", "mm3", "cm3", "s", "ms", "us", "ns", "secs", "years", "kg",
    "g", "litre", "litres", "usd", "pct", "watts", "volts", "celsius", "kelvin",
];

/// Dimensionless markers: acceptable as a final segment or as the whole
/// name (`coverage`, `bond_metal_fraction`).
pub(crate) const DIMENSIONLESS_SEGMENTS: &[&str] = &[
    "frac",
    "fraction",
    "ratio",
    "factor",
    "multiplier",
    "efficiency",
    "coverage",
    "activity",
    "exponent",
    "count",
    "cycles",
    "bits",
    "bytes",
];

/// Whole names blessed without a suffix: either the unit *is* the name
/// (`watts`, `celsius`) or the quantity is canonically dimensionless.
const BLESSED_NAMES: &[&str] = &[
    "watts",
    "secs",
    "volts",
    "celsius",
    "kelvin",
    "ghz",
    "hz",
    "alpha",
    "beta",
    "gamma",
    "tolerance",
    "tol",
    "eps",
    "epsilon",
    "dielectric",
];

/// Does a public `f64` identifier carry its unit?
pub fn unit_name_ok(name: &str) -> bool {
    let name = name.trim_start_matches('_');
    if name.is_empty() {
        // `_: f64` discards the value; nothing to misread.
        return true;
    }
    if BLESSED_NAMES.contains(&name) {
        return true;
    }
    let last = name.rsplit('_').next().unwrap_or(name);
    if DIMENSIONLESS_SEGMENTS.contains(&last) {
        return true;
    }
    // A unit suffix needs a stem: `area_m2` is good, a bare `w` is not.
    UNIT_SEGMENTS.contains(&last) && last != name
}

/// Keywords that can follow `pub` and are therefore not field names.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "use", "mod", "const", "static", "trait", "type", "impl", "unsafe",
    "extern", "async", "crate", "in", "super", "self", "where", "let", "ref", "dyn",
];

/// Scan a physics-crate file for unit-less public `f64` fields and
/// `pub fn` parameters.
pub fn check_r2(file: &str, tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // pub(crate) / pub(in path) visibility qualifier.
        if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
            let mut depth = 0usize;
            while j < tokens.len() {
                if tokens[j].is_punct("(") {
                    depth += 1;
                } else if tokens[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // `pub [const|unsafe|async|extern "C"] fn name(...)`.
        let mut k = j;
        while tokens.get(k).is_some_and(|t| {
            matches!(t.text.as_str(), "const" | "unsafe" | "async" | "extern")
                || t.kind == TokenKind::Str
        }) {
            k += 1;
        }
        if tokens.get(k).is_some_and(|t| t.is_ident("fn")) {
            out.extend(check_fn_params(file, tokens, k + 1));
            i = k + 1;
            continue;
        }
        // `pub name: f64` struct field.
        if let (Some(name_tok), Some(colon)) = (tokens.get(j), tokens.get(j + 1)) {
            if name_tok.kind == TokenKind::Ident
                && !ITEM_KEYWORDS.contains(&name_tok.text.as_str())
                && colon.is_punct(":")
                && type_is_bare_f64(tokens, j + 2, &[",", "}"])
                && !unit_name_ok(&name_tok.text)
            {
                out.push(Violation {
                    rule: Rule::R2,
                    file: file.to_string(),
                    line: name_tok.line,
                    msg: format!(
                        "public f64 field `{}` has no unit suffix (e.g. `{0}_w`, `{0}_m2`) \
                         and is not a blessed dimensionless name",
                        name_tok.text
                    ),
                });
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Check the parameter list of a `pub fn`; `start` is the token after
/// `fn` (the function name).
fn check_fn_params(file: &str, tokens: &[Token], start: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = start;
    // Skip the name and any generic parameter list.
    if tokens.get(i).is_some_and(|t| t.kind == TokenKind::Ident) {
        i += 1;
    }
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0isize;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct("(")) {
        return out;
    }
    // Walk the parameter list, splitting on top-level commas.
    i += 1;
    let mut depth = 0isize;
    let mut param_start = i;
    let mut end = i;
    while end < tokens.len() {
        let t = &tokens[end];
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            "<" => depth += 1,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            ")" | "]" | "}" if depth > 0 => depth -= 1,
            ")" => break,
            "," if depth == 0 => {
                out.extend(check_one_param(file, &tokens[param_start..end]));
                param_start = end + 1;
            }
            _ => {}
        }
        end += 1;
    }
    if param_start < end {
        out.extend(check_one_param(file, &tokens[param_start..end]));
    }
    out
}

/// Check one `name: type` parameter slice.
fn check_one_param(file: &str, param: &[Token]) -> Option<Violation> {
    let colon = param.iter().position(|t| t.is_punct(":"))?;
    // Last identifier before the colon is the binding name (skips
    // `mut`, `&`, pattern sugar); bail on destructuring patterns.
    let name_tok = param[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")?;
    if name_tok.text == "self" {
        return None;
    }
    let ty = &param[colon + 1..];
    let bare_f64 = ty.len() == 1 && ty[0].is_ident("f64");
    if bare_f64 && !unit_name_ok(&name_tok.text) {
        return Some(Violation {
            rule: Rule::R2,
            file: file.to_string(),
            line: name_tok.line,
            msg: format!(
                "pub fn parameter `{}: f64` has no unit suffix (e.g. `{0}_w`, `{0}_secs`) \
                 and is not a blessed dimensionless name",
                name_tok.text
            ),
        });
    }
    None
}

/// Is the type starting at `i` exactly the single token `f64`,
/// terminated by one of `stop` at nesting depth 0?
fn type_is_bare_f64(tokens: &[Token], i: usize, stop: &[&str]) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident("f64"))
        && tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Punct && stop.contains(&t.text.as_str()))
}

// ---------------------------------------------------------------------------
// R3: NaN-unsafe float comparisons
// ---------------------------------------------------------------------------

/// How many tokens past `partial_cmp` to look for the `unwrap`/`expect`
/// that turns a NaN into a panic. Covers `.partial_cmp(&b).unwrap()`
/// with a short argument expression.
const PARTIAL_CMP_WINDOW: usize = 12;

/// Scan for `partial_cmp(..).unwrap()` chains and `==`/`!=` against
/// float literals.
pub fn check_r3(file: &str, tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("partial_cmp") {
            let window = &tokens[i..tokens.len().min(i + PARTIAL_CMP_WINDOW)];
            if window
                .iter()
                .any(|w| w.is_ident("unwrap") || w.is_ident("expect"))
            {
                out.push(Violation {
                    rule: Rule::R3,
                    file: file.to_string(),
                    line: t.line,
                    msg: "partial_cmp().unwrap() panics on NaN; use f64::total_cmp".to_string(),
                });
            }
        }
        if t.is_punct("==") || t.is_punct("!=") {
            let float_neighbor = [i.wrapping_sub(1), i + 1]
                .iter()
                .filter_map(|&j| tokens.get(j))
                .any(Token::is_float_literal);
            if float_neighbor {
                out.push(Violation {
                    rule: Rule::R3,
                    file: file.to_string(),
                    line: t.line,
                    msg: format!(
                        "`{}` against a float literal is NaN/rounding-unsafe; \
                         compare with a tolerance or use total_cmp",
                        t.text
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R4: unsafe
// ---------------------------------------------------------------------------

/// Scan for the `unsafe` keyword. The workspace walk never descends
/// into `vendor/`, so every hit here is outside the sanctioned zone.
pub fn check_r4(file: &str, tokens: &[Token]) -> Vec<Violation> {
    tokens
        .iter()
        .filter(|t| t.is_ident("unsafe"))
        .map(|t| Violation {
            rule: Rule::R4,
            file: file.to_string(),
            line: t.line,
            msg: "`unsafe` outside vendor/ (isolate it behind a safe API in vendor/, \
                  or justify it in the allowlist)"
                .to_string(),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// R5: experiment registry vs dispatch
// ---------------------------------------------------------------------------

/// Collect the string literals of the `EXPERIMENTS` array.
pub fn experiment_registry(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("EXPERIMENTS") {
            // Scan past the `=` (skipping the `&[&str]` type annotation)
            // to the opening '[' of the array literal.
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct("=") && !tokens[j].is_punct(";") {
                j += 1;
            }
            while j < tokens.len() && !tokens[j].is_punct("[") && !tokens[j].is_punct(";") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].is_punct("[") {
                j += 1;
                while j < tokens.len() && !tokens[j].is_punct("]") {
                    if tokens[j].kind == TokenKind::Str {
                        out.push(tokens[j].text.clone());
                    }
                    j += 1;
                }
                if !out.is_empty() {
                    return out;
                }
            }
        }
        i += 1;
    }
    out
}

/// Collect the string-literal match arms (`"name" =>`) inside
/// `fn run_experiment`.
pub fn dispatch_arms(tokens: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let Some(fn_pos) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("fn") && w[1].is_ident("run_experiment"))
    else {
        return out;
    };
    // Find the body and brace-match it.
    let mut i = fn_pos;
    while i < tokens.len() && !tokens[i].is_punct("{") {
        i += 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("{") {
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if tokens[i].kind == TokenKind::Str
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("=>"))
        {
            out.push(tokens[i].text.clone());
        }
        i += 1;
    }
    out
}

/// Extract the `SUMMARY_JOB` string constant from the campaign module.
pub fn summary_job_name(tokens: &[Token]) -> Option<String> {
    let pos = tokens.iter().position(|t| t.is_ident("SUMMARY_JOB"))?;
    tokens[pos..]
        .iter()
        .take(10)
        .find(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.clone())
}

/// Cross-check registry vs dispatch vs the summary job name.
pub fn check_r5(
    experiments_file: &str,
    experiments_tokens: &[Token],
    summary_job: Option<&str>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let registry = experiment_registry(experiments_tokens);
    let arms = dispatch_arms(experiments_tokens);
    let at = |msg: String| Violation {
        rule: Rule::R5,
        file: experiments_file.to_string(),
        line: 1,
        msg,
    };
    if registry.is_empty() {
        out.push(at("EXPERIMENTS array not found or empty".to_string()));
        return out;
    }
    if arms.is_empty() {
        out.push(at(
            "run_experiment dispatch not found or has no string arms".to_string(),
        ));
        return out;
    }
    for name in &registry {
        if !arms.contains(name) {
            out.push(at(format!(
                "experiment \"{name}\" is registered but run_experiment has no arm for it"
            )));
        }
    }
    for name in &arms {
        if !registry.contains(name) {
            out.push(at(format!(
                "run_experiment dispatches \"{name}\" but it is not in EXPERIMENTS \
                 (the campaign will never schedule it)"
            )));
        }
    }
    if let Some(summary) = summary_job {
        if registry.iter().any(|n| n == summary) {
            out.push(at(format!(
                "experiment \"{summary}\" collides with the campaign summary job name"
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_name_grammar() {
        for good in [
            "area_m2",
            "power_w",
            "ambient_c",
            "exchanger_w_per_k",
            "density_kg_per_m3",
            "v_m_per_s",
            "film_um",
            "lifetime_years",
            "bond_metal_fraction",
            "pump_efficiency",
            "coverage",
            "alpha",
            "watts",
            "tolerance",
            "freq_ghz",
            "_ignored_w",
        ] {
            assert!(unit_name_ok(good), "{good} should pass");
        }
        for bad in ["h", "w", "x", "temp", "power", "value", "ambient", "speed"] {
            assert!(!unit_name_ok(bad), "{bad} should fail");
        }
    }
}
