//! The frozen-debt allowlist (`lint.allow` at the workspace root).
//!
//! Each line is `<rule> <workspace-relative-path> <count>`: the number
//! of violations of that rule the file is allowed to keep. The file is
//! a ratchet: counts may only go down. `watercool lint` fails when a
//! (rule, file) pair exceeds its budget, and warns when the budget is
//! stale (actual count below the recorded one) so `--fix-allowlist`
//! can ratchet it down. Entries never get added for new code — new
//! violations are errors.

use crate::rules::Rule;
use std::collections::BTreeMap;

/// Parsed allowlist: (rule, file) → allowed violation count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: BTreeMap<(Rule, String), usize>,
}

impl Allowlist {
    /// Parse the `lint.allow` format. Blank lines and `#` comments are
    /// skipped; malformed lines are reported with their line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let (rule, file, count) = match (cols.next(), cols.next(), cols.next(), cols.next()) {
                (Some(r), Some(f), Some(c), None) => (r, f, c),
                _ => {
                    return Err(format!(
                        "lint.allow:{}: expected `<rule> <file> <count>`, got `{line}`",
                        idx + 1
                    ))
                }
            };
            let rule = Rule::from_id(rule)
                .ok_or_else(|| format!("lint.allow:{}: unknown rule `{rule}`", idx + 1))?;
            let count: usize = count
                .parse()
                .map_err(|_| format!("lint.allow:{}: bad count `{count}`", idx + 1))?;
            if count == 0 {
                return Err(format!(
                    "lint.allow:{}: zero-count entry for {file} — delete the line",
                    idx + 1
                ));
            }
            if entries.insert((rule, file.to_string()), count).is_some() {
                return Err(format!(
                    "lint.allow:{}: duplicate entry for {} {file}",
                    idx + 1,
                    rule.id()
                ));
            }
        }
        Ok(Allowlist { entries })
    }

    /// Allowed count for a (rule, file) pair; 0 when unlisted.
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.entries
            .get(&(rule, file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Entries whose (rule, file) pair is absent from `actual` — debt
    /// that has been fully paid off but is still listed.
    pub fn stale_entries<'a>(
        &'a self,
        actual: &BTreeMap<(Rule, String), usize>,
    ) -> Vec<(&'a (Rule, String), usize)> {
        self.entries
            .iter()
            .filter(|(key, _)| !actual.contains_key(*key))
            .map(|(key, &count)| (key, count))
            .collect()
    }

    /// Total number of allowed violations across all entries.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Total allowed violations for one rule.
    pub fn total_for(&self, rule: Rule) -> usize {
        self.entries
            .iter()
            .filter(|((r, _), _)| *r == rule)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Render current violation counts in the `lint.allow` format
    /// (deterministic order), used by `--fix-allowlist`.
    pub fn render(actual: &BTreeMap<(Rule, String), usize>) -> String {
        let mut out = String::from(
            "# Frozen static-analysis debt: `<rule> <file> <allowed-count>` per line.\n\
             # This file is a ratchet — counts only go down. `watercool lint` fails\n\
             # when a file exceeds its budget; run `watercool lint --fix-allowlist`\n\
             # after paying debt down. Never add entries for new code.\n",
        );
        for ((rule, file), count) in actual {
            if *count > 0 {
                out.push_str(&format!("{} {file} {count}\n", rule.id()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_looks_up() {
        let a =
            Allowlist::parse("# comment\n\nR1 crates/foo/src/bar.rs 3\nR4 crates/w/src/k.rs 1\n")
                .unwrap();
        assert_eq!(a.allowed(Rule::R1, "crates/foo/src/bar.rs"), 3);
        assert_eq!(a.allowed(Rule::R4, "crates/w/src/k.rs"), 1);
        assert_eq!(a.allowed(Rule::R1, "crates/other.rs"), 0);
        assert_eq!(a.total(), 4);
        assert_eq!(a.total_for(Rule::R1), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("R1 only-two-cols").is_err());
        assert!(Allowlist::parse("R99 f.rs 1").is_err());
        assert!(Allowlist::parse("R1 f.rs banana").is_err());
        assert!(Allowlist::parse("R1 f.rs 0").is_err());
        assert!(Allowlist::parse("R1 f.rs 1\nR1 f.rs 2").is_err());
    }

    #[test]
    fn render_round_trips() {
        let mut actual = BTreeMap::new();
        actual.insert((Rule::R1, "a.rs".to_string()), 2);
        actual.insert((Rule::R2, "b.rs".to_string()), 1);
        actual.insert((Rule::R3, "c.rs".to_string()), 0); // dropped
        let text = Allowlist::render(&actual);
        let parsed = Allowlist::parse(&text).unwrap();
        assert_eq!(parsed.allowed(Rule::R1, "a.rs"), 2);
        assert_eq!(parsed.allowed(Rule::R2, "b.rs"), 1);
        assert_eq!(parsed.allowed(Rule::R3, "c.rs"), 0);
    }

    #[test]
    fn stale_entries_surface_paid_debt() {
        let a = Allowlist::parse("R1 gone.rs 2\nR1 kept.rs 1\n").unwrap();
        let mut actual = BTreeMap::new();
        actual.insert((Rule::R1, "kept.rs".to_string()), 1);
        let stale = a.stale_entries(&actual);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].0 .1, "gone.rs");
    }
}
