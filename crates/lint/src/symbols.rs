//! Per-crate symbol table over the parsed workspace.
//!
//! Every function definition the parser finds becomes a [`FnSym`] with
//! a stable integer id, its crate (derived from the workspace-relative
//! path), and the parsed [`FnDef`] itself. The table is the substrate
//! the call graph resolves against.

use crate::ast::{self, FnDef, Vis};
use crate::lexer;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index into [`SymbolTable::fns`].
    pub id: usize,
    /// Crate name: `crates/<name>/…` → `<name>`, root `src/…` → `root`.
    pub krate: String,
    /// Workspace-relative `/`-separated source path.
    pub file: String,
    /// The parsed definition (name, qual, vis, params, body).
    pub def: FnDef,
}

impl FnSym {
    /// `Type::name` or plain `name`.
    pub fn qual_name(&self) -> String {
        self.def.qual_name()
    }

    /// Display form used in call paths and the DOT dump:
    /// `crate::Type::name`.
    pub fn display(&self) -> String {
        format!("{}::{}", self.krate, self.qual_name())
    }

    /// Is this part of a crate's public API surface? `pub(crate)` and
    /// friends are *not* public for the rules' purposes.
    pub fn is_pub(&self) -> bool {
        self.def.vis == Vis::Pub
    }
}

/// All function symbols in the workspace, indexed for call resolution.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function, id = index.
    pub fns: Vec<FnSym>,
    /// Bare name → ids of every fn with that name.
    by_name: HashMap<String, Vec<usize>>,
    /// `Type::name` → ids.
    by_qual: HashMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build the table from `(rel_path, source)` pairs. Files that fail
    /// to lex or parse are reported in the error list (and skipped);
    /// the caller decides whether that is fatal.
    pub fn build(sources: &[(String, String)]) -> (SymbolTable, Vec<String>) {
        let mut table = SymbolTable::default();
        let mut errors = Vec::new();
        for (rel, src) in sources {
            let tokens = match lexer::lex(src) {
                Ok(t) => t,
                Err(e) => {
                    errors.push(format!("{rel}: {e}"));
                    continue;
                }
            };
            let tokens = lexer::strip_test_items(&tokens);
            let parsed = match ast::parse_file(&tokens) {
                Ok(p) => p,
                Err(e) => {
                    errors.push(format!("{rel}: {e}"));
                    continue;
                }
            };
            let krate = crate_of(rel);
            for def in parsed.fns {
                let id = table.fns.len();
                table.by_name.entry(def.name.clone()).or_default().push(id);
                table.by_qual.entry(def.qual_name()).or_default().push(id);
                table.fns.push(FnSym {
                    id,
                    krate: krate.clone(),
                    file: rel.clone(),
                    def,
                });
            }
        }
        (table, errors)
    }

    /// Load and build the table for the workspace rooted at `root`.
    pub fn from_workspace(root: &Path) -> io::Result<(SymbolTable, Vec<String>)> {
        let mut sources = Vec::new();
        for path in crate::collect_sources(root)? {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, fs::read_to_string(&path)?));
        }
        Ok(SymbolTable::build(&sources))
    }

    /// Ids of every fn with this bare name.
    pub fn lookup_name(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Ids of every fn with this `Type::name`.
    pub fn lookup_qual(&self, qual: &str) -> &[usize] {
        self.by_qual.get(qual).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Crate name from a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(slash) = rest.find('/') {
            return rest[..slash].to_string();
        }
    }
    "root".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of("crates/thermal/src/solver.rs"), "thermal");
        assert_eq!(crate_of("src/main.rs"), "root");
    }

    #[test]
    fn table_indexes_by_name_and_qual() {
        let sources = vec![
            (
                "crates/a/src/lib.rs".to_string(),
                "pub fn go() {}\nimpl T { pub fn go(&self) {} }".to_string(),
            ),
            ("crates/b/src/lib.rs".to_string(), "fn go() {}".to_string()),
        ];
        let (t, errs) = SymbolTable::build(&sources);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(t.lookup_name("go").len(), 3);
        assert_eq!(t.lookup_qual("T::go").len(), 1);
        assert_eq!(t.fns[t.lookup_qual("T::go")[0]].display(), "a::T::go");
    }
}
