//! Machine-readable renderings of a [`LintReport`]: a plain JSON
//! object (`--format json`) and SARIF 2.1.0 (`--format sarif`), both
//! hand-rolled so the lint crate stays dependency-free.
//!
//! JSON schema (`--format json`):
//!
//! ```json
//! {
//!   "files_checked": 82,
//!   "clean": true,
//!   "suppressed": 61,
//!   "allowlist_total": 61,
//!   "errors": ["<rendered error lines>"],
//!   "warnings": ["<rendered warning lines>"],
//!   "violations": [
//!     {"rule": "R6", "file": "crates/x/src/y.rs", "line": 10,
//!      "message": "...", "suppressed": true}
//!   ]
//! }
//! ```
//!
//! `violations` lists new (budget-exceeding) findings first, then the
//! ones absorbed by `lint.allow` with `"suppressed": true`.
//!
//! The SARIF rendering targets the 2.1.0 schema: one run, the driver
//! named `watercool-lint` with all rules declared, one `result` per
//! violation (`level: error`; allowlisted findings additionally carry a
//! `suppressions` entry with `kind: external`), and non-violation
//! errors (lex/parse failures, budget summaries) as
//! `toolExecutionNotifications` on the invocation.

use crate::rules::{Rule, Violation};
use crate::LintReport;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent + 2);
    let body: Vec<String> = items
        .iter()
        .map(|s| format!("{pad}\"{}\"", escape_json(s)))
        .collect();
    format!("[\n{}\n{}]", body.join(",\n"), " ".repeat(indent))
}

fn value_array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let pad = " ".repeat(indent + 2);
    let body: Vec<String> = items.iter().map(|s| format!("{pad}{s}")).collect();
    format!("[\n{}\n{}]", body.join(",\n"), " ".repeat(indent))
}

fn violation_json(v: &Violation, suppressed: bool) -> String {
    format!(
        "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
         \"suppressed\": {suppressed}}}",
        v.rule.id(),
        escape_json(&v.file),
        v.line,
        escape_json(&v.msg)
    )
}

/// Render the report as the plain JSON object documented in the module
/// docs.
pub fn to_json(r: &LintReport) -> String {
    let mut violations: Vec<String> = Vec::new();
    for v in &r.new_violations {
        violations.push(violation_json(v, false));
    }
    for v in &r.suppressed_violations {
        violations.push(violation_json(v, true));
    }
    format!(
        "{{\n  \"files_checked\": {},\n  \"clean\": {},\n  \"suppressed\": {},\n  \
         \"allowlist_total\": {},\n  \"errors\": {},\n  \"warnings\": {},\n  \
         \"violations\": {}\n}}\n",
        r.files_checked,
        r.is_clean(),
        r.suppressed,
        r.allowlist_total,
        string_array(&r.errors, 2),
        string_array(&r.warnings, 2),
        value_array(&violations, 2)
    )
}

fn rule_index(rule: Rule) -> usize {
    Rule::ALL.iter().position(|&r| r == rule).unwrap_or(0)
}

fn sarif_result(v: &Violation, suppressed: bool) -> String {
    let suppression = if suppressed {
        ", \"suppressions\": [{\"kind\": \"external\", \"justification\": \"lint.allow\"}]"
    } else {
        ""
    };
    format!(
        "{{\"ruleId\": \"{}\", \"ruleIndex\": {}, \"level\": \"error\", \
         \"message\": {{\"text\": \"{}\"}}, \
         \"locations\": [{{\"physicalLocation\": {{\
         \"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}}, \
         \"region\": {{\"startLine\": {}}}}}}}]{suppression}}}",
        v.rule.id(),
        rule_index(v.rule),
        escape_json(&v.msg),
        escape_json(&v.file),
        v.line.max(1)
    )
}

/// Render the report as a SARIF 2.1.0 log.
pub fn to_sarif(r: &LintReport) -> String {
    let rules: Vec<String> = Rule::ALL
        .iter()
        .map(|rule| {
            format!(
                "{{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
                rule.id(),
                escape_json(rule.summary())
            )
        })
        .collect();

    let mut results: Vec<String> = Vec::new();
    for v in &r.new_violations {
        results.push(sarif_result(v, false));
    }
    for v in &r.suppressed_violations {
        results.push(sarif_result(v, true));
    }

    // Errors that are not renderings of a structured violation
    // (lex/parse failures, budget summaries) become notifications so
    // they survive the SARIF round trip.
    let rendered: Vec<String> = r
        .new_violations
        .iter()
        .map(|v| format!("[{}] {}:{}: {}", v.rule.id(), v.file, v.line, v.msg))
        .collect();
    let notifications: Vec<String> = r
        .errors
        .iter()
        .filter(|e| !rendered.iter().any(|s| s == *e))
        .map(|e| {
            format!(
                "{{\"level\": \"error\", \"message\": {{\"text\": \"{}\"}}}}",
                escape_json(e)
            )
        })
        .collect();

    format!(
        "{{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \
         \"tool\": {{\"driver\": {{\"name\": \"watercool-lint\", \"version\": \"{}\", \
         \"rules\": {}}}}},\n      \
         \"invocations\": [{{\"executionSuccessful\": {}, \
         \"toolExecutionNotifications\": {}}}],\n      \
         \"results\": {}\n    }}\n  ]\n}}\n",
        env!("CARGO_PKG_VERSION"),
        value_array(&rules, 6),
        r.is_clean(),
        value_array(&notifications, 6),
        value_array(&results, 6)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        let mut r = LintReport {
            files_checked: 2,
            suppressed: 1,
            allowlist_total: 1,
            ..LintReport::default()
        };
        r.errors.push("[R1] crates/a/src/x.rs:3: `unwrap()`".into());
        r.warnings.push("stale budget".into());
        r.new_violations.push(Violation {
            rule: Rule::R1,
            file: "crates/a/src/x.rs".into(),
            line: 3,
            msg: "`unwrap()`".into(),
        });
        r.suppressed_violations.push(Violation {
            rule: Rule::R6,
            file: "crates/b/src/y.rs".into(),
            line: 7,
            msg: "pub fn `f` can reach a panic site".into(),
        });
        r
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_lists_new_then_suppressed() {
        let j = to_json(&sample_report());
        assert!(j.contains("\"files_checked\": 2"));
        let new_pos = j.find("\"suppressed\": false").unwrap();
        let old_pos = j.find("\"suppressed\": true").unwrap();
        assert!(new_pos < old_pos);
    }

    #[test]
    fn sarif_declares_all_rules_and_marks_suppressions() {
        let s = to_sarif(&sample_report());
        assert!(s.contains("\"version\": \"2.1.0\""));
        for rule in Rule::ALL {
            assert!(s.contains(&format!("\"id\": \"{}\"", rule.id())));
        }
        assert!(s.contains("\"kind\": \"external\""));
        assert!(s.contains("\"executionSuccessful\": false"));
    }

    #[test]
    fn empty_report_is_minimal_and_successful() {
        let r = LintReport::default();
        let j = to_json(&r);
        assert!(j.contains("\"violations\": []"));
        let s = to_sarif(&r);
        assert!(s.contains("\"results\": []"));
        assert!(s.contains("\"executionSuccessful\": true"));
    }
}
