//! A lightweight recursive-descent parser over the lexer's token
//! stream: token trees (delimiter nesting), items (functions with
//! their signatures and visibility), blocks, and expressions (paths,
//! calls, method calls, field access, indexing, binary operators,
//! macros).
//!
//! Like the lexer, this is dependency-free by design — no syn, no
//! proc-macro, no network. It is also deliberately *total* over the
//! workspace: any construct it does not model parses into
//! [`Expr::Other`] with its sub-expressions preserved, so the only
//! hard errors are unbalanced delimiters. The parser-smoke test in
//! `tests/` holds it to that contract for every source file in the
//! repository, which is what lets the interprocedural rules (R6–R9)
//! trust the call graph built on top of it.
//!
//! The AST is intentionally *not* a faithful precedence tree: binary
//! operators chain right-associatively regardless of precedence. The
//! semantic rules only ever inspect an operator together with its
//! immediately adjacent operands (via [`leftmost`]), for which the
//! flat chain is exact.

use crate::lexer::{Token, TokenKind};

// ---------------------------------------------------------------------------
// Token trees
// ---------------------------------------------------------------------------

/// A token or a delimited group of trees (`(…)`, `[…]`, `{…}`).
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single non-delimiter token.
    Leaf(Token),
    /// A delimited group; `delim` is the opening delimiter.
    Group {
        /// `'('`, `'['` or `'{'`.
        delim: char,
        /// Line of the opening delimiter.
        line: u32,
        /// The trees inside the delimiters.
        trees: Vec<Tree>,
    },
}

impl Tree {
    /// Source line this tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }

    /// Is this a punctuation leaf with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(s))
    }

    /// Is this an identifier leaf with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_ident(s))
    }

    /// Is this a group opened by `delim`?
    pub fn is_group(&self, delim: char) -> bool {
        matches!(self, Tree::Group { delim: d, .. } if *d == delim)
    }

    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) if t.kind == TokenKind::Ident => Some(&t.text),
            _ => None,
        }
    }
}

/// Nest a flat token stream into trees. The only possible failures are
/// delimiter mismatches — everything else nests.
pub fn build_trees(tokens: &[Token]) -> Result<Vec<Tree>, String> {
    let mut i = 0usize;
    let trees = build_level(tokens, &mut i, None)?;
    if i < tokens.len() {
        return Err(format!(
            "line {}: unmatched closing `{}`",
            tokens[i].line, tokens[i].text
        ));
    }
    Ok(trees)
}

fn build_level(tokens: &[Token], i: &mut usize, close: Option<&str>) -> Result<Vec<Tree>, String> {
    let mut out = Vec::new();
    while *i < tokens.len() {
        let t = &tokens[*i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => {
                    let delim = t.text.chars().next().unwrap_or('(');
                    let line = t.line;
                    let expect = match delim {
                        '(' => ")",
                        '[' => "]",
                        _ => "}",
                    };
                    *i += 1;
                    let trees = build_level(tokens, i, Some(expect))?;
                    if *i >= tokens.len() {
                        return Err(format!("line {line}: unclosed `{delim}`"));
                    }
                    *i += 1; // consume the closer
                    out.push(Tree::Group { delim, line, trees });
                    continue;
                }
                ")" | "]" | "}" => {
                    if close == Some(t.text.as_str()) {
                        return Ok(out); // caller consumes the closer
                    }
                    if close.is_some() {
                        return Err(format!(
                            "line {}: mismatched `{}` (expected `{}`)",
                            t.line,
                            t.text,
                            close.unwrap_or("")
                        ));
                    }
                    return Ok(out); // top level: leave for build_trees to report
                }
                _ => {}
            }
        }
        out.push(Tree::Leaf(t.clone()));
        *i += 1;
    }
    if close.is_some() {
        return Err("unexpected end of file inside a delimited group".to_string());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's public API.
    Pub,
    /// `pub(crate)` / `pub(in …)` — visible but not public API.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One `name: type` function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`self` for methods; `_` patterns keep their text).
    pub name: String,
    /// The declared type, rendered as space-joined tokens.
    pub ty: String,
    /// Line of the binding.
    pub line: u32,
}

/// A parsed function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's own name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when any.
    pub qual: Option<String>,
    /// Visibility.
    pub vis: Vis,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Rendered return type (empty when the function returns `()`).
    pub ret_ty: String,
    /// The body, when the function has one (trait methods may not).
    pub body: Option<Vec<Stmt>>,
}

impl FnDef {
    /// `Type::name` when inside an impl/trait, else just `name`.
    pub fn qual_name(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything the semantic pass needs from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every function definition, including impl/trait methods and
    /// functions nested in `mod` blocks.
    pub fns: Vec<FnDef>,
}

/// Parse a whole file's token stream into its function definitions.
pub fn parse_file(tokens: &[Token]) -> Result<ParsedFile, String> {
    let trees = build_trees(tokens)?;
    let mut file = ParsedFile::default();
    parse_items(&trees, None, &mut file.fns);
    Ok(file)
}

/// Scan one level of trees for items, recursing into `mod`, `impl` and
/// `trait` bodies.
fn parse_items(trees: &[Tree], qual: Option<&str>, out: &mut Vec<FnDef>) {
    let mut i = 0usize;
    while i < trees.len() {
        // Attributes: `#[…]` / `#![…]`.
        if trees[i].is_punct("#") {
            i += 1;
            if i < trees.len() && trees[i].is_punct("!") {
                i += 1;
            }
            if i < trees.len() && trees[i].is_group('[') {
                i += 1;
            }
            continue;
        }
        // Visibility.
        let mut vis = Vis::Private;
        if trees[i].is_ident("pub") {
            vis = Vis::Pub;
            i += 1;
            if i < trees.len() && trees[i].is_group('(') {
                vis = Vis::Restricted;
                i += 1;
            }
        }
        // Function modifiers before `fn`.
        while i < trees.len()
            && (trees[i].is_ident("const")
                || trees[i].is_ident("async")
                || trees[i].is_ident("unsafe")
                || trees[i].is_ident("extern")
                || matches!(&trees[i], Tree::Leaf(t) if t.kind == TokenKind::Str))
        {
            // `const NAME: …` is an item, not a modifier: only treat
            // `const` as a modifier when `fn` follows the modifier run.
            if trees[i].is_ident("const")
                && !trees[i + 1..]
                    .iter()
                    .take(3)
                    .any(|t| t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern"))
            {
                break;
            }
            i += 1;
        }
        let Some(word) = trees.get(i).and_then(Tree::ident) else {
            i += 1;
            continue;
        };
        match word {
            "fn" => {
                if let Some((def, next)) = parse_fn(trees, i, vis, qual) {
                    out.push(def);
                    i = next;
                } else {
                    i += 1;
                }
            }
            "impl" => {
                let (ty, body) = impl_header(&trees[i + 1..]);
                if let Some(body) = body {
                    parse_items(body, ty.as_deref(), out);
                }
                i = skip_to_body_or_semi(trees, i + 1);
            }
            "trait" => {
                let ty = trees.get(i + 1).and_then(Tree::ident).map(str::to_string);
                let body_at = skip_to_body_or_semi(trees, i + 1);
                if let Some(Tree::Group { trees: body, .. }) = trees.get(body_at - 1) {
                    parse_items(body, ty.as_deref(), out);
                }
                i = body_at;
            }
            "mod" => {
                let body_at = skip_to_body_or_semi(trees, i + 1);
                if let Some(Tree::Group {
                    delim: '{',
                    trees: body,
                    ..
                }) = trees.get(body_at - 1)
                {
                    parse_items(body, None, out);
                }
                i = body_at;
            }
            "macro_rules" => {
                // `macro_rules! name { … }`.
                i = skip_to_body_or_semi(trees, i + 1);
            }
            _ => {
                // use / const / static / type / struct / enum / extern
                // blocks — skip to the terminating `;` or body group.
                i = skip_to_body_or_semi(trees, i + 1);
            }
        }
    }
}

/// Advance past the next top-level `;` or `{…}` group, whichever comes
/// first, returning the index just after it.
fn skip_to_body_or_semi(trees: &[Tree], mut i: usize) -> usize {
    while i < trees.len() {
        if trees[i].is_punct(";") || trees[i].is_group('{') {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// From the trees after the `impl` keyword, extract the implementing
/// type name and the body group: `impl<T> Foo<T> { … }` → `Foo`,
/// `impl Display for Bar { … }` → `Bar`.
fn impl_header(trees: &[Tree]) -> (Option<String>, Option<&[Tree]>) {
    let mut depth = 0i32;
    let mut first_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    for t in trees {
        match t {
            Tree::Leaf(tok) if tok.kind == TokenKind::Punct => match tok.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            },
            Tree::Leaf(tok) if tok.kind == TokenKind::Ident && depth == 0 => {
                if tok.text == "for" {
                    saw_for = true;
                } else if tok.text == "where" {
                    break;
                } else if saw_for {
                    if after_for.is_none()
                        && tok.text != "mut"
                        && tok.text != "dyn"
                        && tok.text != "crate"
                    {
                        after_for = Some(tok.text.clone());
                    }
                } else if first_ident.is_none() {
                    first_ident = Some(tok.text.clone());
                }
            }
            Tree::Group {
                delim: '{', trees, ..
            } => {
                return (after_for.or(first_ident), Some(trees));
            }
            _ => {}
        }
    }
    (after_for.or(first_ident), None)
}

/// Parse `fn name<…>(params) -> Ret where … { body }` starting at the
/// `fn` keyword. Returns the definition and the index just past it.
fn parse_fn(trees: &[Tree], at: usize, vis: Vis, qual: Option<&str>) -> Option<(FnDef, usize)> {
    let line = trees[at].line();
    let mut i = at + 1;
    let name = trees.get(i).and_then(Tree::ident)?.to_string();
    i += 1;
    // Generic parameter list: balanced angle leaves (groups inside,
    // e.g. `Fn(i32) -> i32` bounds, are whole trees and skip freely).
    if trees.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while i < trees.len() {
            if let Tree::Leaf(tok) = &trees[i] {
                match tok.text.as_str() {
                    "<" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
    }
    let params = match trees.get(i) {
        Some(Tree::Group {
            delim: '(',
            trees: p,
            ..
        }) => {
            i += 1;
            parse_params(p)
        }
        _ => return None,
    };
    // Return type: trees between `->` and the body/`;`/`where`.
    let mut ret_ty = String::new();
    if trees.get(i).is_some_and(|t| t.is_punct("->")) {
        i += 1;
        let start = i;
        while i < trees.len()
            && !trees[i].is_group('{')
            && !trees[i].is_punct(";")
            && !trees[i].is_ident("where")
        {
            i += 1;
        }
        ret_ty = render(&trees[start..i]);
    }
    // Where clause.
    if trees.get(i).is_some_and(|t| t.is_ident("where")) {
        while i < trees.len() && !trees[i].is_group('{') && !trees[i].is_punct(";") {
            i += 1;
        }
    }
    let body = match trees.get(i) {
        Some(Tree::Group {
            delim: '{',
            trees: b,
            ..
        }) => {
            i += 1;
            Some(parse_block(b))
        }
        Some(t) if t.is_punct(";") => {
            i += 1;
            None
        }
        _ => None,
    };
    Some((
        FnDef {
            name,
            qual: qual.map(str::to_string),
            vis,
            line,
            params,
            ret_ty,
            body,
        },
        i,
    ))
}

/// Split a parameter group on top-level commas and parse each
/// `pattern: type` pair.
fn parse_params(trees: &[Tree]) -> Vec<Param> {
    let mut out = Vec::new();
    for part in split_on_comma(trees) {
        if part.is_empty() {
            continue;
        }
        let colon = part.iter().position(|t| t.is_punct(":"));
        match colon {
            Some(c) => {
                // Last plain identifier before the colon is the binding.
                let name = part[..c]
                    .iter()
                    .rev()
                    .find_map(Tree::ident)
                    .filter(|n| *n != "mut" && *n != "ref")
                    .unwrap_or("_")
                    .to_string();
                out.push(Param {
                    name,
                    ty: render(&part[c + 1..]),
                    line: part[0].line(),
                });
            }
            None => {
                // `self` / `&mut self` / `&'a self`.
                if part.iter().any(|t| t.is_ident("self")) {
                    out.push(Param {
                        name: "self".to_string(),
                        ty: "Self".to_string(),
                        line: part[0].line(),
                    });
                }
            }
        }
    }
    out
}

/// Render trees back to compact text (types, diagnostics).
pub fn render(trees: &[Tree]) -> String {
    let mut out = String::new();
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if !out.is_empty() && needs_space(&out, &tok.text) {
                    out.push(' ');
                }
                match tok.kind {
                    TokenKind::Str => {
                        out.push('"');
                        out.push_str(&tok.text);
                        out.push('"');
                    }
                    TokenKind::Lifetime => {
                        out.push('\'');
                        out.push_str(&tok.text);
                    }
                    _ => out.push_str(&tok.text),
                }
            }
            Tree::Group { delim, trees, .. } => {
                let (open, close) = match delim {
                    '(' => ('(', ')'),
                    '[' => ('[', ']'),
                    _ => ('{', '}'),
                };
                out.push(open);
                out.push_str(&render(trees));
                out.push(close);
            }
        }
    }
    out
}

/// Would omitting a space glue two word-like tokens together?
fn needs_space(left: &str, right: &str) -> bool {
    let l = left
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let r = right
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    l && r
}

/// Split one tree level on top-level commas.
pub fn split_on_comma(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in trees.iter().enumerate() {
        if t.is_punct(",") {
            out.push(&trees[start..i]);
            start = i + 1;
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

// ---------------------------------------------------------------------------
// Statements and expressions
// ---------------------------------------------------------------------------

/// One statement in a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let <pattern> = <init>;` — all pattern binding names captured.
    Let {
        /// Every identifier bound by the pattern (`["_"]` for a bare
        /// wildcard discard, so rules can see `let _ =`).
        names: Vec<String>,
        /// The declared type annotation, rendered, when present.
        ty: Option<String>,
        /// The initializer, when present.
        init: Option<Expr>,
        /// Line of the `let`.
        line: u32,
    },
    /// An expression statement (with or without `;`).
    Expr(Expr),
}

/// A lightweight expression. Constructs the rules do not model parse
/// into [`Expr::Other`] with their sub-expressions preserved, so
/// visitors still see every call underneath.
#[derive(Debug, Clone)]
pub enum Expr {
    /// `a::b::c` (one segment for plain identifiers).
    Path {
        /// The `::`-separated segments.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// A literal token (number, string, char).
    Lit {
        /// Literal kind from the lexer.
        kind: TokenKind,
        /// Literal text.
        text: String,
        /// Source line.
        line: u32,
    },
    /// `f(args…)` — `func` is usually a [`Expr::Path`].
    Call {
        /// Callee expression.
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.name(args…)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `base.name` (also tuple indices: `t.0`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Subscript expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `lhs op rhs` — right-associative chain, not a precedence tree.
    Binary {
        /// Operator text (`+`, `==`, `..`, …).
        op: String,
        /// Left operand (always the operand adjacent to `op`).
        lhs: Box<Expr>,
        /// Right operand chain.
        rhs: Box<Expr>,
        /// Source line of the operator.
        line: u32,
    },
    /// `name!(…)` — arguments parsed best-effort as expressions.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `{ … }`.
    Block {
        /// The statements.
        stmts: Vec<Stmt>,
        /// Line of the opening brace.
        line: u32,
    },
    /// `for <vars> in <iter> <body>` — vars captured for guard
    /// analysis.
    ForLoop {
        /// Identifiers bound by the loop pattern.
        vars: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `if cond { … } else …` (also `if let`, with the pattern
    /// skipped and the scrutinee as `cond`).
    If {
        /// The condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// The then-block.
        then_branch: Box<Expr>,
        /// `else` block or chained `else if`, when present.
        else_branch: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `match scrut { … }` — arm guards and bodies flattened in order.
    Match {
        /// The scrutinee.
        scrut: Box<Expr>,
        /// Arm guards and bodies in source order.
        arms: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `while cond { … }` (also `while let`).
    While {
        /// The condition (or `while let` scrutinee).
        cond: Box<Expr>,
        /// Loop body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `return` / `return value`.
    Ret {
        /// The returned value, when present.
        value: Option<Box<Expr>>,
        /// Source line.
        line: u32,
    },
    /// `inner?`.
    Try {
        /// The expression the `?` applies to.
        inner: Box<Expr>,
        /// Source line of the `?`.
        line: u32,
    },
    /// Anything else (closures/struct literals/unsafe blocks/…), with
    /// all recognizable sub-expressions as children.
    Other {
        /// Sub-expressions found inside the construct.
        children: Vec<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// Source line of the expression.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::Method { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Block { line, .. }
            | Expr::ForLoop { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Ret { line, .. }
            | Expr::Try { line, .. }
            | Expr::Other { line, .. } => *line,
        }
    }
}

/// The operand textually adjacent to the *right* of a binary operator
/// in the flat chain: the leftmost primary of the right subtree.
pub fn leftmost(e: &Expr) -> &Expr {
    match e {
        Expr::Binary { lhs, .. } => leftmost(lhs),
        other => other,
    }
}

/// Parse the trees of a `{ … }` group into statements.
pub fn parse_block(trees: &[Tree]) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Attributes on statements.
        if trees[i].is_punct("#") {
            i += 1;
            if i < trees.len() && trees[i].is_punct("!") {
                i += 1;
            }
            if i < trees.len() && trees[i].is_group('[') {
                i += 1;
            }
            continue;
        }
        if trees[i].is_punct(";") {
            i += 1;
            continue;
        }
        // Nested items inside a body: skip their headers, but still
        // surface nested fn bodies as block statements so calls inside
        // them are visible.
        if let Some(word) = trees[i].ident() {
            if matches!(
                word,
                "use" | "struct" | "enum" | "type" | "trait" | "impl" | "mod"
            ) {
                i = skip_to_body_or_semi(trees, i + 1);
                continue;
            }
            if word == "let" {
                let (stmt, next) = parse_let(trees, i);
                stmts.push(stmt);
                i = next;
                continue;
            }
        }
        let (expr, next) = parse_expr(trees, i, false);
        stmts.push(Stmt::Expr(expr));
        i = next.max(i + 1);
    }
    stmts
}

/// Parse `let <pattern> (= <init>)? (else { … })? ;` starting at `let`.
fn parse_let(trees: &[Tree], at: usize) -> (Stmt, usize) {
    let line = trees[at].line();
    let mut i = at + 1;
    let pat_start = i;
    while i < trees.len() && !trees[i].is_punct("=") && !trees[i].is_punct(";") {
        i += 1;
    }
    // Split the pattern from the type annotation at the top-level `:`
    // (`::` is a distinct token, so path separators never match).
    let pat_and_ty = &trees[pat_start..i];
    let ty_split = pat_and_ty.iter().position(|t| t.is_punct(":"));
    let pat = &pat_and_ty[..ty_split.unwrap_or(pat_and_ty.len())];
    let ty = ty_split
        .map(|c| render(&pat_and_ty[c + 1..]))
        .filter(|t| !t.is_empty());
    let mut names = Vec::new();
    collect_pattern_names(pat, &mut names);
    // A bare `let _ = …` discard binds nothing; surface it as the
    // sentinel name `_` so the error-flow rule can see the drop.
    if names.is_empty() && pat.len() == 1 && pat[0].is_ident("_") {
        names.push("_".to_string());
    }
    let mut init = None;
    if i < trees.len() && trees[i].is_punct("=") {
        i += 1;
        let (expr, next) = parse_expr(trees, i, false);
        init = Some(expr);
        i = next;
    }
    // let-else and any stragglers: consume to the `;`.
    while i < trees.len() && !trees[i].is_punct(";") {
        i += 1;
    }
    (
        Stmt::Let {
            names,
            ty,
            init,
            line,
        },
        i.min(trees.len()),
    )
}

fn collect_pattern_names(trees: &[Tree], names: &mut Vec<String>) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Leaf(tok) if tok.kind == TokenKind::Ident => {
                let s = tok.text.as_str();
                if matches!(s, "mut" | "ref" | "box" | "_") {
                    continue;
                }
                // Skip path prefixes (`Some` in `Some(x)`, `E` in
                // `E::V`): an ident directly followed by `::` or a
                // group is a constructor, not a binding.
                let next = trees.get(i + 1);
                let is_ctor =
                    next.is_some_and(|n| n.is_punct("::") || n.is_group('(') || n.is_group('{'));
                let after_path = i > 0 && trees[i - 1].is_punct("::");
                if !is_ctor && !after_path {
                    names.push(tok.text.clone());
                }
            }
            Tree::Group { trees, .. } => collect_pattern_names(trees, names),
            _ => {}
        }
    }
}

/// Binary operators the expression parser chains on.
const BINARY_OPS: &[&str] = &[
    "+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||", "&", "|", "^", "<<",
    ">>", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "..", "..=",
];

/// Keywords that start a construct `parse_expr` models explicitly or
/// wraps into `Other`.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "unsafe"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "async"
            | "await"
            | "let"
    )
}

/// Parse one expression starting at `trees[i]`; returns the expression
/// and the index just past it. `no_struct` disables struct-literal
/// parsing (condition/iterator position, as in Rust itself).
pub fn parse_expr(trees: &[Tree], i: usize, no_struct: bool) -> (Expr, usize) {
    let (mut lhs, mut i) = parse_prefix(trees, i, no_struct);
    // Binary chain, right-associative.
    while i < trees.len() {
        // `as` cast: swallow the type and keep chaining.
        if trees[i].is_ident("as") {
            i = skip_type(trees, i + 1);
            continue;
        }
        let Some(op) = binary_op_at(trees, i) else {
            break;
        };
        let line = trees[i].line();
        let next = i + 1;
        // Range with no right operand (`a..`): end of chain.
        if (op == ".." || op == "..=") && range_has_no_rhs(trees, next) {
            lhs = Expr::Binary {
                op: op.to_string(),
                lhs: Box::new(lhs),
                rhs: Box::new(Expr::Other {
                    children: Vec::new(),
                    line,
                }),
                line,
            };
            i = next;
            break;
        }
        let (rhs, after) = parse_expr(trees, next, no_struct);
        lhs = Expr::Binary {
            op: op.to_string(),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            line,
        };
        i = after;
        break; // rhs consumed the rest of the chain
    }
    (lhs, i)
}

/// The binary operator at `trees[i]`, if the position can continue an
/// expression.
fn binary_op_at(trees: &[Tree], i: usize) -> Option<&'static str> {
    let Tree::Leaf(tok) = &trees[i] else {
        return None;
    };
    if tok.kind != TokenKind::Punct {
        return None;
    }
    BINARY_OPS.iter().find(|op| **op == tok.text).copied()
}

/// After `a..`, is there genuinely no right operand?
fn range_has_no_rhs(trees: &[Tree], i: usize) -> bool {
    match trees.get(i) {
        None => true,
        Some(t) => t.is_punct(",") || t.is_punct(";") || t.is_group('{'),
    }
}

/// Skip a type after `as` / in a turbofish: path segments, balanced
/// angles, references, and grouped types.
fn skip_type(trees: &[Tree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(tok) => match tok.kind {
                TokenKind::Ident => {
                    if angle == 0 && is_expr_keyword(&tok.text) {
                        return i;
                    }
                }
                TokenKind::Lifetime => {}
                TokenKind::Punct => match tok.text.as_str() {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "::" | "&" | "*" | "'" => {}
                    "->" if angle > 0 => {}
                    _ if angle > 0 => {}
                    _ => return i,
                },
                _ => return i,
            },
            Tree::Group { .. } if angle > 0 => {}
            Tree::Group { delim: '(', .. } | Tree::Group { delim: '[', .. } => {
                // Tuple/array type: part of the type only if we have
                // consumed nothing yet (e.g. `as (u8, u8)` — rare).
                return i + 1;
            }
            Tree::Group { .. } => return i,
        }
        i += 1;
        if angle <= 0 && i < trees.len() {
            // A type ends when the next token cannot extend it.
            if let Tree::Leaf(tok) = &trees[i] {
                if tok.kind == TokenKind::Punct
                    && !matches!(tok.text.as_str(), "::" | "<" | "&" | "*")
                {
                    return i;
                }
            }
        }
    }
    i
}

/// Parse a prefix/primary expression plus its postfix operators.
fn parse_prefix(trees: &[Tree], i: usize, no_struct: bool) -> (Expr, usize) {
    let Some(t) = trees.get(i) else {
        return (
            Expr::Other {
                children: Vec::new(),
                line: 0,
            },
            i,
        );
    };
    let line = t.line();
    // Unary operators.
    if t.is_punct("&") || t.is_punct("*") || t.is_punct("!") || t.is_punct("-") || t.is_punct("&&")
    {
        let mut j = i + 1;
        while j < trees.len() && (trees[j].is_ident("mut") || trees[j].is_ident("dyn")) {
            j += 1;
        }
        let (inner, next) = parse_prefix(trees, j, no_struct);
        return (
            Expr::Other {
                children: vec![inner],
                line,
            },
            next,
        );
    }
    // Prefix range.
    if t.is_punct("..") || t.is_punct("..=") {
        if range_has_no_rhs(trees, i + 1) {
            return (
                Expr::Other {
                    children: Vec::new(),
                    line,
                },
                i + 1,
            );
        }
        let (inner, next) = parse_expr(trees, i + 1, no_struct);
        return (
            Expr::Other {
                children: vec![inner],
                line,
            },
            next,
        );
    }
    // Closures.
    if t.is_punct("|") || t.is_punct("||") {
        return parse_closure(trees, i, no_struct);
    }
    // Loop labels: `'outer: loop { … }`.
    if matches!(t, Tree::Leaf(tok) if tok.kind == TokenKind::Lifetime) {
        let mut j = i + 1;
        if trees.get(j).is_some_and(|t| t.is_punct(":")) {
            j += 1;
        }
        return parse_prefix(trees, j, no_struct);
    }
    let (primary, next) = parse_primary(trees, i, no_struct);
    parse_postfix(trees, primary, next, no_struct)
}

/// `|a, b| body` / `move |…| body` / `|| body`.
fn parse_closure(trees: &[Tree], i: usize, no_struct: bool) -> (Expr, usize) {
    let line = trees[i].line();
    let mut j = i;
    if trees[j].is_punct("||") {
        j += 1;
    } else {
        // Skip to the closing `|` at this level.
        j += 1;
        while j < trees.len() && !trees[j].is_punct("|") {
            j += 1;
        }
        j += 1;
    }
    // Optional return type.
    if trees.get(j).is_some_and(|t| t.is_punct("->")) {
        j = skip_type(trees, j + 1);
        // Closure with declared return type must have a block body.
    }
    let (body, next) = parse_expr(trees, j, no_struct);
    (
        Expr::Other {
            children: vec![body],
            line,
        },
        next,
    )
}

/// Primary expressions: literals, paths (with struct literals and
/// macros), groups, keyword constructs.
fn parse_primary(trees: &[Tree], i: usize, no_struct: bool) -> (Expr, usize) {
    let t = &trees[i];
    let line = t.line();
    match t {
        Tree::Leaf(tok) => match tok.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Char => (
                Expr::Lit {
                    kind: tok.kind,
                    text: tok.text.clone(),
                    line,
                },
                i + 1,
            ),
            TokenKind::Ident if is_expr_keyword(&tok.text) => {
                parse_keyword_expr(trees, i, &tok.text)
            }
            TokenKind::Ident => parse_path_expr(trees, i, no_struct),
            _ => (
                Expr::Other {
                    children: Vec::new(),
                    line,
                },
                i + 1,
            ),
        },
        Tree::Group {
            delim,
            trees: inner,
            ..
        } => {
            let children = match delim {
                '{' => {
                    return (
                        Expr::Block {
                            stmts: parse_block(inner),
                            line,
                        },
                        i + 1,
                    )
                }
                _ => split_on_comma(inner)
                    .into_iter()
                    .filter(|part| !part.is_empty())
                    .map(|part| parse_expr(part, 0, false).0)
                    .collect::<Vec<_>>(),
            };
            if *delim == '(' && children.len() == 1 {
                let mut children = children;
                (children.remove(0), i + 1)
            } else {
                (Expr::Other { children, line }, i + 1)
            }
        }
    }
}

/// `if`, `match`, `for`, `while`, `loop`, `unsafe`, `return`, `break`,
/// `continue`, `move`, `async`.
fn parse_keyword_expr(trees: &[Tree], i: usize, word: &str) -> (Expr, usize) {
    let line = trees[i].line();
    match word {
        "if" => {
            let mut j = i + 1;
            // `if let pat = expr` — skip the pattern to the `=`.
            if trees.get(j).is_some_and(|t| t.is_ident("let")) {
                while j < trees.len() && !trees[j].is_punct("=") && !trees[j].is_group('{') {
                    j += 1;
                }
                if trees.get(j).is_some_and(|t| t.is_punct("=")) {
                    j += 1;
                }
            }
            let (cond, next) = parse_expr(trees, j, true);
            j = next;
            let then_branch = if let Some(Tree::Group {
                delim: '{',
                trees: body,
                ..
            }) = trees.get(j)
            {
                j += 1;
                Expr::Block {
                    stmts: parse_block(body),
                    line,
                }
            } else {
                Expr::Other {
                    children: Vec::new(),
                    line,
                }
            };
            let mut else_branch = None;
            if trees.get(j).is_some_and(|t| t.is_ident("else")) {
                j += 1;
                if trees.get(j).is_some_and(|t| t.is_ident("if")) {
                    let (elif, next) = parse_keyword_expr(trees, j, "if");
                    else_branch = Some(Box::new(elif));
                    j = next;
                } else if let Some(Tree::Group {
                    delim: '{',
                    trees: body,
                    ..
                }) = trees.get(j)
                {
                    else_branch = Some(Box::new(Expr::Block {
                        stmts: parse_block(body),
                        line,
                    }));
                    j += 1;
                }
            }
            (
                Expr::If {
                    cond: Box::new(cond),
                    then_branch: Box::new(then_branch),
                    else_branch,
                    line,
                },
                j,
            )
        }
        "match" => {
            let (scrut, mut j) = parse_expr(trees, i + 1, true);
            let mut arms = Vec::new();
            if let Some(Tree::Group {
                delim: '{',
                trees: arm_trees,
                ..
            }) = trees.get(j)
            {
                arms = parse_match_arms(arm_trees);
                j += 1;
            }
            (
                Expr::Match {
                    scrut: Box::new(scrut),
                    arms,
                    line,
                },
                j,
            )
        }
        "for" => {
            let mut j = i + 1;
            let pat_start = j;
            while j < trees.len() && !trees[j].is_ident("in") {
                j += 1;
            }
            let vars = {
                let mut names = Vec::new();
                collect_pattern_names(&trees[pat_start..j.min(trees.len())], &mut names);
                names
            };
            j += 1; // past `in`
            let (iter, next) = parse_expr(trees, j, true);
            j = next;
            let body = if let Some(Tree::Group {
                delim: '{',
                trees: b,
                ..
            }) = trees.get(j)
            {
                j += 1;
                Expr::Block {
                    stmts: parse_block(b),
                    line,
                }
            } else {
                Expr::Other {
                    children: Vec::new(),
                    line,
                }
            };
            (
                Expr::ForLoop {
                    vars,
                    iter: Box::new(iter),
                    body: Box::new(body),
                    line,
                },
                j,
            )
        }
        "while" => {
            let mut j = i + 1;
            if trees.get(j).is_some_and(|t| t.is_ident("let")) {
                while j < trees.len() && !trees[j].is_punct("=") && !trees[j].is_group('{') {
                    j += 1;
                }
                if trees.get(j).is_some_and(|t| t.is_punct("=")) {
                    j += 1;
                }
            }
            let (cond, next) = parse_expr(trees, j, true);
            j = next;
            let body = if let Some(Tree::Group {
                delim: '{',
                trees: b,
                ..
            }) = trees.get(j)
            {
                j += 1;
                Expr::Block {
                    stmts: parse_block(b),
                    line,
                }
            } else {
                Expr::Other {
                    children: Vec::new(),
                    line,
                }
            };
            (
                Expr::While {
                    cond: Box::new(cond),
                    body: Box::new(body),
                    line,
                },
                j,
            )
        }
        "loop" => {
            let mut j = i + 1;
            let body = if let Some(Tree::Group {
                delim: '{',
                trees: b,
                ..
            }) = trees.get(j)
            {
                j += 1;
                Expr::Block {
                    stmts: parse_block(b),
                    line,
                }
            } else {
                Expr::Other {
                    children: Vec::new(),
                    line,
                }
            };
            (
                Expr::Loop {
                    body: Box::new(body),
                    line,
                },
                j,
            )
        }
        "unsafe" | "async" | "move" => {
            let mut j = i + 1;
            // `move |…|` closure.
            if trees
                .get(j)
                .is_some_and(|t| t.is_punct("|") || t.is_punct("||"))
            {
                return parse_closure(trees, j, false);
            }
            let mut children = Vec::new();
            if let Some(Tree::Group {
                delim: '{',
                trees: b,
                ..
            }) = trees.get(j)
            {
                children.push(Expr::Block {
                    stmts: parse_block(b),
                    line,
                });
                j += 1;
            }
            (Expr::Other { children, line }, j)
        }
        "return" => {
            let j = i + 1;
            let done = match trees.get(j) {
                None => true,
                Some(t) => t.is_punct(";") || t.is_punct(",") || t.is_group('{'),
            };
            if done {
                return (Expr::Ret { value: None, line }, j);
            }
            let (inner, next) = parse_expr(trees, j, false);
            (
                Expr::Ret {
                    value: Some(Box::new(inner)),
                    line,
                },
                next,
            )
        }
        "break" | "continue" => {
            let j = i + 1;
            let done = match trees.get(j) {
                None => true,
                Some(t) => t.is_punct(";") || t.is_punct(",") || t.is_group('{'),
            };
            if done || word == "continue" {
                return (
                    Expr::Other {
                        children: Vec::new(),
                        line,
                    },
                    j,
                );
            }
            let (inner, next) = parse_expr(trees, j, false);
            (
                Expr::Other {
                    children: vec![inner],
                    line,
                },
                next,
            )
        }
        // `let` in expression position (let-chains) — skip pattern.
        "let" => {
            let mut j = i + 1;
            while j < trees.len() && !trees[j].is_punct("=") && !trees[j].is_group('{') {
                j += 1;
            }
            if trees.get(j).is_some_and(|t| t.is_punct("=")) {
                let (inner, next) = parse_expr(trees, j + 1, true);
                return (
                    Expr::Other {
                        children: vec![inner],
                        line,
                    },
                    next,
                );
            }
            (
                Expr::Other {
                    children: Vec::new(),
                    line,
                },
                j,
            )
        }
        // `else`/`await` reached directly: consume defensively.
        _ => (
            Expr::Other {
                children: Vec::new(),
                line,
            },
            i + 1,
        ),
    }
}

/// Parse the bodies of match arms: everything after each top-level
/// `=>` up to the arm-separating comma.
fn parse_match_arms(trees: &[Tree]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        // Skip the pattern (and any `if` guard) to the `=>`.
        let mut guard: Option<Expr> = None;
        while i < trees.len() && !trees[i].is_punct("=>") {
            if trees[i].is_ident("if") {
                let (g, next) = parse_expr(trees, i + 1, true);
                guard = Some(g);
                i = next;
                continue;
            }
            i += 1;
        }
        if i >= trees.len() {
            break;
        }
        i += 1; // past `=>`
        if let Some(g) = guard {
            out.push(g);
        }
        if i < trees.len() {
            let (body, next) = parse_expr(trees, i, false);
            out.push(body);
            i = next.max(i + 1);
        }
        // Arm separator.
        if i < trees.len() && trees[i].is_punct(",") {
            i += 1;
        }
    }
    out
}

/// Paths with optional turbofish, struct literals and macro calls.
fn parse_path_expr(trees: &[Tree], i: usize, no_struct: bool) -> (Expr, usize) {
    let line = trees[i].line();
    let mut segs = Vec::new();
    let mut j = i;
    while j < trees.len() {
        let Some(name) = trees[j].ident() else { break };
        segs.push(name.to_string());
        j += 1;
        if trees.get(j).is_some_and(|t| t.is_punct("::")) {
            j += 1;
            // Turbofish `::<…>`.
            if trees.get(j).is_some_and(|t| t.is_punct("<")) {
                j = skip_angles(trees, j);
                if trees.get(j).is_some_and(|t| t.is_punct("::")) {
                    j += 1;
                    continue;
                }
                break;
            }
            continue;
        }
        break;
    }
    if segs.is_empty() {
        return (
            Expr::Other {
                children: Vec::new(),
                line,
            },
            i + 1,
        );
    }
    // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
    if trees.get(j).is_some_and(|t| t.is_punct("!")) {
        if let Some(Tree::Group { trees: inner, .. }) = trees.get(j + 1) {
            let args = split_on_comma(inner)
                .into_iter()
                .filter(|part| !part.is_empty())
                .map(|part| parse_expr(part, 0, false).0)
                .collect();
            let name = segs.last().cloned().unwrap_or_default();
            return (Expr::Macro { name, args, line }, j + 2);
        }
    }
    // Struct literal: `Path { … }` when allowed and the path looks like
    // a type (capitalized last segment or `Self`).
    if !no_struct {
        let looks_type = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(|c| c.is_ascii_uppercase());
        if looks_type {
            if let Some(Tree::Group {
                delim: '{',
                trees: inner,
                ..
            }) = trees.get(j)
            {
                let children = struct_literal_fields(inner);
                return (Expr::Other { children, line }, j + 1);
            }
        }
    }
    (Expr::Path { segs, line }, j)
}

/// Field initializers of a struct literal: the expression after each
/// top-level `name:`, plus any `..base` expression.
fn struct_literal_fields(trees: &[Tree]) -> Vec<Expr> {
    let mut out = Vec::new();
    for part in split_on_comma(trees) {
        if part.is_empty() {
            continue;
        }
        if part[0].is_punct("..") {
            out.push(parse_expr(part, 1, false).0);
            continue;
        }
        match part.iter().position(|t| t.is_punct(":")) {
            Some(c) if c + 1 < part.len() => out.push(parse_expr(part, c + 1, false).0),
            _ => out.push(parse_expr(part, 0, false).0),
        }
    }
    out
}

/// Skip a balanced `<…>` starting at the `<`.
fn skip_angles(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < trees.len() {
        if let Tree::Leaf(tok) = &trees[i] {
            match tok.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// Postfix operators: field access, method calls, calls, indexing, `?`.
fn parse_postfix(trees: &[Tree], mut expr: Expr, mut i: usize, no_struct: bool) -> (Expr, usize) {
    loop {
        match trees.get(i) {
            Some(t) if t.is_punct(".") => {
                let line = t.line();
                i += 1;
                let Some(next) = trees.get(i) else { break };
                match next {
                    Tree::Leaf(tok)
                        if tok.kind == TokenKind::Ident || tok.kind == TokenKind::Number =>
                    {
                        let name = tok.text.clone();
                        i += 1;
                        // Turbofish between name and args.
                        if trees.get(i).is_some_and(|t| t.is_punct("::")) {
                            i += 1;
                            if trees.get(i).is_some_and(|t| t.is_punct("<")) {
                                i = skip_angles(trees, i);
                            }
                        }
                        if let Some(Tree::Group {
                            delim: '(',
                            trees: args,
                            ..
                        }) = trees.get(i)
                        {
                            let args = split_on_comma(args)
                                .into_iter()
                                .filter(|p| !p.is_empty())
                                .map(|p| parse_expr(p, 0, false).0)
                                .collect();
                            expr = Expr::Method {
                                recv: Box::new(expr),
                                name,
                                args,
                                line,
                            };
                            i += 1;
                        } else {
                            expr = Expr::Field {
                                base: Box::new(expr),
                                name,
                                line,
                            };
                        }
                    }
                    _ => break,
                }
            }
            Some(Tree::Group {
                delim: '(',
                trees: args,
                line,
            }) => {
                let args = split_on_comma(args)
                    .into_iter()
                    .filter(|p| !p.is_empty())
                    .map(|p| parse_expr(p, 0, false).0)
                    .collect();
                expr = Expr::Call {
                    func: Box::new(expr),
                    args,
                    line: *line,
                };
                i += 1;
            }
            Some(Tree::Group {
                delim: '[',
                trees: idx,
                line,
            }) => {
                let index = parse_expr(idx, 0, false).0;
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(index),
                    line: *line,
                };
                i += 1;
            }
            Some(t) if t.is_punct("?") => {
                expr = Expr::Try {
                    inner: Box::new(expr),
                    line: t.line(),
                };
                i += 1;
            }
            _ => break,
        }
    }
    let _ = no_struct;
    (expr, i)
}

// ---------------------------------------------------------------------------
// Visitors
// ---------------------------------------------------------------------------

/// Visit `e` and every sub-expression, depth-first.
pub fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } => {}
        Expr::Call { func, args, .. } => {
            walk_expr(func, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Method { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Block { stmts, .. } => walk_stmts(stmts, f),
        Expr::ForLoop { iter, body, .. } => {
            walk_expr(iter, f);
            walk_expr(body, f);
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            walk_expr(cond, f);
            walk_expr(then_branch, f);
            if let Some(e) = else_branch {
                walk_expr(e, f);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            walk_expr(scrut, f);
            for a in arms {
                walk_expr(a, f);
            }
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_expr(body, f);
        }
        Expr::Loop { body, .. } => walk_expr(body, f),
        Expr::Ret { value, .. } => {
            if let Some(v) = value {
                walk_expr(v, f);
            }
        }
        Expr::Try { inner, .. } => walk_expr(inner, f),
        Expr::Other { children, .. } => {
            for c in children {
                walk_expr(c, f);
            }
        }
    }
}

/// Visit every expression in a statement list, depth-first.
pub fn walk_stmts(stmts: &[Stmt], f: &mut dyn FnMut(&Expr)) {
    for s in stmts {
        match s {
            Stmt::Let { init: Some(e), .. } => walk_expr(e, f),
            Stmt::Let { init: None, .. } => {}
            Stmt::Expr(e) => walk_expr(e, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn fn_signatures_and_visibility() {
        let f = parse(
            "pub fn area_m2(w_m: f64, h_m: f64) -> f64 { w_m * h_m }\n\
             pub(crate) fn helper() {}\n\
             fn private(x: usize) {}",
        );
        assert_eq!(f.fns.len(), 3);
        assert_eq!(f.fns[0].name, "area_m2");
        assert_eq!(f.fns[0].vis, Vis::Pub);
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].params[0].name, "w_m");
        assert_eq!(f.fns[0].params[0].ty, "f64");
        assert_eq!(f.fns[0].ret_ty, "f64");
        assert_eq!(f.fns[1].vis, Vis::Restricted);
        assert_eq!(f.fns[2].vis, Vis::Private);
    }

    #[test]
    fn impl_methods_are_qualified() {
        let f = parse(
            "struct T;\n\
             impl T { pub fn go(&self) {} }\n\
             impl std::fmt::Display for T { fn fmt(&self) {} }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].qual_name(), "T::go");
        assert_eq!(f.fns[0].params[0].name, "self");
        assert_eq!(f.fns[1].qual_name(), "T::fmt");
    }

    #[test]
    fn generic_fn_with_fn_bound_finds_real_params() {
        let f = parse("pub fn run<F: Fn(i32) -> i32>(work: F, n: usize) {}");
        assert_eq!(f.fns[0].params.len(), 2);
        assert_eq!(f.fns[0].params[0].name, "work");
        assert_eq!(f.fns[0].params[1].name, "n");
    }

    #[test]
    fn calls_methods_index_and_macros_are_visible() {
        let f = parse(
            "fn f(v: Vec<f64>, i: usize) {\n\
               let x = v[i];\n\
               let y = x.max(0.0);\n\
               helper(x, y);\n\
               mod_a::helper2();\n\
               panic!(\"boom {}\", y);\n\
             }",
        );
        let body = f.fns[0].body.as_ref().unwrap();
        let mut saw = Vec::new();
        walk_stmts(body, &mut |e| match e {
            Expr::Index { .. } => saw.push("index".to_string()),
            Expr::Method { name, .. } => saw.push(format!("m:{name}")),
            Expr::Call { func, .. } => {
                if let Expr::Path { segs, .. } = func.as_ref() {
                    saw.push(format!("c:{}", segs.join("::")));
                }
            }
            Expr::Macro { name, .. } => saw.push(format!("mac:{name}")),
            _ => {}
        });
        assert!(saw.contains(&"index".to_string()), "{saw:?}");
        assert!(saw.contains(&"m:max".to_string()), "{saw:?}");
        assert!(saw.contains(&"c:helper".to_string()), "{saw:?}");
        assert!(saw.contains(&"c:mod_a::helper2".to_string()), "{saw:?}");
        assert!(saw.contains(&"mac:panic".to_string()), "{saw:?}");
    }

    #[test]
    fn binary_chain_keeps_adjacent_operands() {
        let f = parse("fn f(a_c: f64, b_k: f64) -> f64 { a_c + b_k }");
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Expr(Expr::Binary { op, lhs, rhs, .. }) = &body[0] else {
            panic!("expected binary, got {body:?}");
        };
        assert_eq!(op, "+");
        assert!(matches!(lhs.as_ref(), Expr::Path { segs, .. } if segs == &["a_c"]));
        assert!(matches!(leftmost(rhs), Expr::Path { segs, .. } if segs == &["b_k"]));
    }

    #[test]
    fn for_loop_captures_bound_vars() {
        let f = parse("fn f(n: usize) { for (i, j) in grid(n) { work(i, j); } }");
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Expr(Expr::ForLoop { vars, .. }) = &body[0] else {
            panic!("expected for loop");
        };
        assert_eq!(vars, &["i", "j"]);
    }

    #[test]
    fn match_arm_bodies_are_parsed() {
        let f = parse(
            "fn f(x: u8) { match x { 0 => zero(), 1 if cond() => one(), _ => { other(); } } }",
        );
        let mut calls = Vec::new();
        walk_stmts(f.fns[0].body.as_ref().unwrap(), &mut |e| {
            if let Expr::Call { func, .. } = e {
                if let Expr::Path { segs, .. } = func.as_ref() {
                    calls.push(segs.join("::"));
                }
            }
        });
        for c in ["zero", "cond", "one", "other"] {
            assert!(calls.iter().any(|x| x == c), "{c} missing from {calls:?}");
        }
    }

    #[test]
    fn closures_and_nested_blocks_are_traversed() {
        let f = parse("fn f() { let c = |a: u8| inner(a); run(move || other()); }");
        let mut calls = Vec::new();
        walk_stmts(f.fns[0].body.as_ref().unwrap(), &mut |e| {
            if let Expr::Call { func, .. } = e {
                if let Expr::Path { segs, .. } = func.as_ref() {
                    calls.push(segs.join("::"));
                }
            }
        });
        assert!(calls.iter().any(|c| c == "inner"), "{calls:?}");
        assert!(calls.iter().any(|c| c == "other"), "{calls:?}");
    }

    #[test]
    fn let_pattern_names_are_collected() {
        let f = parse("fn f() { let (a, mut b) = pair(); let Some(c) = opt() else { return; }; }");
        let body = f.fns[0].body.as_ref().unwrap();
        let Stmt::Let { names, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(names, &["a", "b"]);
        let Stmt::Let { names, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(names, &["c"]);
    }

    #[test]
    fn unbalanced_delimiters_are_the_only_errors() {
        assert!(parse_file(&lex("fn f() { (").unwrap()).is_err());
        assert!(parse_file(&lex("fn f() } {").unwrap()).is_err());
        // Weird-but-balanced input parses.
        assert!(parse_file(&lex("@ # $ fn f() {} %").unwrap()).is_ok());
    }
}
