//! R12 fixture (violating): a `let _ =` swallow, a bare dropped
//! Result, and a binding consumed on only one of two paths.
pub fn save(path: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::write(path, bytes);
}

pub fn branchy(path: &std::path::Path, fast: bool) -> u64 {
    let r = std::fs::read_to_string(path);
    if fast {
        return match r {
            Ok(s) => s.len() as u64,
            Err(_) => 0,
        };
    }
    7
}

fn helper() -> Result<u64, String> {
    Ok(1)
}

pub fn fire_and_forget() {
    helper();
}
