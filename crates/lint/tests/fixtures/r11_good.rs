//! R11 fixture (clean): every path takes the locks in the same order
//! and guards are dropped before any re-acquisition.
pub struct Hub {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl Hub {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        combine(ga, gb)
    }

    pub fn also_forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        combine(ga, gb)
    }

    pub fn scoped(&self) {
        {
            let g = self.a.lock();
            drop(g);
        }
        let g2 = self.a.lock();
        drop(g2);
    }
}

fn combine(_x: std::sync::LockResult<std::sync::MutexGuard<u64>>, _y: u64) -> u64 {
    0
}
