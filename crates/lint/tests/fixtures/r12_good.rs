//! R12 fixture (clean): every fallible result reaches `?`, a `match`,
//! or a logged sink on every path.
pub fn save(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)?;
    Ok(())
}

pub fn save_logged(path: &std::path::Path, bytes: &[u8]) {
    if let Err(e) = std::fs::write(path, bytes) {
        eprintln!("write failed: {e}");
    }
}

pub fn consumed_on_both(path: &std::path::Path) -> u64 {
    let r = std::fs::read_to_string(path);
    match r {
        Ok(s) => s.len() as u64,
        Err(_) => 0,
    }
}

fn helper() -> Result<u64, String> {
    Ok(1)
}

pub fn propagated() -> Result<u64, String> {
    let n = helper()?;
    Ok(n + 1)
}
