//! R10 fixture (clean): ordered containers everywhere and the one
//! timing site annotated with the escape hatch.
use std::collections::BTreeMap;
use std::time::Instant;

pub fn digest_counts(counts: &BTreeMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for (_k, v) in counts.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(*v);
    }
    acc
}

pub fn timed_section() -> u64 {
    let t = Instant::now(); // lint: wall-clock-ok
    let _elapsed = t.elapsed();
    42
}
