//! R10 fixture (violating): wall clock, unordered iteration over a
//! parameter, and unordered iteration over a local binding — all in a
//! file the test presents as a replay-critical root.
use std::collections::HashMap;
use std::time::Instant;

pub fn seed_material() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn digest_counts(counts: &HashMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for (_k, v) in counts.iter() {
        acc = acc.wrapping_mul(31).wrapping_add(*v);
    }
    acc
}

pub fn local_map_iteration() -> u64 {
    let mut m = HashMap::new();
    m.insert("a", 1u64);
    let mut acc = 0u64;
    for v in m.values() {
        acc += v;
    }
    acc
}
