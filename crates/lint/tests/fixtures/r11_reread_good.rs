//! R11 fixture (clean): the first read guard is dropped before the
//! same `RwLock` is read again, so no writer can wedge between two
//! live read guards held by one thread.
pub struct Snap {
    data: std::sync::RwLock<u64>,
}

impl Snap {
    pub fn doubled(&self) -> u64 {
        let first = {
            let a = self.data.read();
            peek(a)
        };
        let b = self.data.read();
        first + peek(b)
    }
}

fn peek(_x: std::sync::LockResult<std::sync::RwLockReadGuard<u64>>) -> u64 {
    0
}
