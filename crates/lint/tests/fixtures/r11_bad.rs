//! R11 fixture (violating): two functions take the same pair of locks
//! in opposite orders (a cycle), and a third calls a helper that
//! re-acquires a lock the caller already holds.
pub struct Hub {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl Hub {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        combine(ga, gb)
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        combine(ga, gb)
    }

    pub fn tick(&self) {
        let g = self.a.lock();
        self.bump();
        drop(g);
    }

    pub fn bump(&self) {
        let g = self.a.lock();
        drop(g);
    }
}

fn combine(_x: std::sync::LockResult<std::sync::MutexGuard<u64>>, _y: u64) -> u64 {
    0
}
