//! R11 fixture (violating): a second `.read()` on an `RwLock` whose
//! read guard is still live. std makes no read-reentrancy promise — a
//! writer queued between the two reads blocks the second read while
//! the first guard blocks the writer, deadlocking all three.
pub struct Snap {
    data: std::sync::RwLock<u64>,
}

impl Snap {
    pub fn doubled(&self) -> u64 {
        let a = self.data.read();
        let b = self.data.read();
        combine(a, b)
    }
}

fn combine(
    _x: std::sync::LockResult<std::sync::RwLockReadGuard<u64>>,
    _y: std::sync::LockResult<std::sync::RwLockReadGuard<u64>>,
) -> u64 {
    0
}
