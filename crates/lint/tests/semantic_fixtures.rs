//! Good/bad fixture pairs for the semantic rules R6–R9, driven through
//! the in-memory [`SymbolTable::build`] API with synthetic workspace
//! paths (the rules key off `crates/<name>/` prefixes).

use immersion_lint::callgraph::CallGraph;
use immersion_lint::rules::Rule;
use immersion_lint::semantic::{check_r6, check_r7, check_r8, check_r9};
use immersion_lint::symbols::SymbolTable;

fn model(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let (table, errors) = SymbolTable::build(&sources);
    assert!(errors.is_empty(), "fixture must parse: {errors:?}");
    let graph = CallGraph::build(&table);
    (table, graph)
}

// --- R6: panic reachability -----------------------------------------------

#[test]
fn r6_flags_pub_fn_reaching_unwrap_through_private_helper() {
    let (table, graph) = model(&[(
        "crates/power/src/fixture.rs",
        "pub fn peak_w(xs: &[f64]) -> f64 { helper(xs) }\n\
         fn helper(xs: &[f64]) -> f64 { *xs.first().unwrap() }",
    )]);
    let v = check_r6(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::R6);
    assert!(v[0].msg.contains("peak_w"), "{}", v[0].msg);
    assert!(v[0].msg.contains("call path"), "{}", v[0].msg);
    assert!(v[0].msg.contains("helper"), "{}", v[0].msg);
}

#[test]
fn r6_accepts_result_returning_version() {
    let (table, graph) = model(&[(
        "crates/power/src/fixture.rs",
        "pub fn peak_w(xs: &[f64]) -> Option<f64> { helper(xs) }\n\
         fn helper(xs: &[f64]) -> Option<f64> { xs.first().copied() }",
    )]);
    assert!(check_r6(&table, &graph).is_empty());
}

#[test]
fn r6_flags_unguarded_param_indexing_but_accepts_asserted() {
    let bad = model(&[(
        "crates/thermal/src/fixture.rs",
        "pub struct G { xs: Vec<f64> }\n\
         impl G { pub fn at(&self, i: usize) -> f64 { self.xs[i] } }",
    )]);
    let v = check_r6(&bad.0, &bad.1);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("indexing"), "{}", v[0].msg);

    let good = model(&[(
        "crates/thermal/src/fixture.rs",
        "pub struct G { xs: Vec<f64> }\n\
         impl G { pub fn at(&self, i: usize) -> f64 { \
         assert!(i < self.xs.len()); self.xs[i] } }",
    )]);
    assert!(check_r6(&good.0, &good.1).is_empty());
}

#[test]
fn r6_ignores_crates_outside_the_physics_set() {
    let (table, graph) = model(&[(
        "crates/archsim/src/fixture.rs",
        "pub fn go(xs: &[f64]) -> f64 { *xs.first().unwrap() }",
    )]);
    assert!(check_r6(&table, &graph).is_empty());
}

#[test]
fn r6_panic_macro_is_a_site_and_cross_crate_paths_resolve() {
    let (table, graph) = model(&[
        (
            "crates/coolant/src/fixture.rs",
            "pub fn film_w(x: f64) -> f64 { inner_solver(x) }",
        ),
        (
            "crates/thermal/src/fixture.rs",
            "pub fn inner_solver(x: f64) -> f64 { \
             if x < 0.0 { panic!(\"negative\"); } x }",
        ),
    ]);
    let v = check_r6(&table, &graph);
    // Both pub fns flag: the thermal entry point directly, the coolant
    // one through the cross-crate edge.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v
        .iter()
        .any(|v| v.msg.contains("film_w")
            && v.msg.contains("coolant::film_w -> thermal::inner_solver")));
}

// --- R7: unit-dimension inference -----------------------------------------

#[test]
fn r7_flags_mixed_unit_addition() {
    let (table, _) = model(&[(
        "crates/thermal/src/fixture.rs",
        "pub fn mix(temp_c: f64, temp_k: f64) -> f64 { temp_c + temp_k }",
    )]);
    let v = check_r7(&table);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::R7);
    assert!(v[0].msg.contains("_c"), "{}", v[0].msg);
    assert!(v[0].msg.contains("_k"), "{}", v[0].msg);
}

#[test]
fn r7_accepts_matching_units_and_dimensionless_operands() {
    let (table, _) = model(&[(
        "crates/thermal/src/fixture.rs",
        "pub fn ok(temp_c: f64, delta_c: f64, ratio: f64) -> f64 { \
         temp_c + delta_c * ratio }",
    )]);
    assert!(check_r7(&table).is_empty());
}

#[test]
fn r7_flags_raw_literal_added_to_suffixed_operand() {
    let (table, _) = model(&[(
        "crates/power/src/fixture.rs",
        "pub fn bump(power_w: f64) -> f64 { power_w + 3.5 }",
    )]);
    let v = check_r7(&table);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("literal"), "{}", v[0].msg);
}

#[test]
fn r7_flags_product_assigned_to_same_unit_name() {
    // power × area cannot still be watts.
    let (table, _) = model(&[(
        "crates/power/src/fixture.rs",
        "pub fn density(power_w: f64, area_mm2: f64) -> f64 { \
         let total_w = power_w * area_mm2; total_w }",
    )]);
    let v = check_r7(&table);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("total_w"), "{}", v[0].msg);
}

#[test]
fn r7_accepts_product_with_dimensionless_factor() {
    let (table, _) = model(&[(
        "crates/power/src/fixture.rs",
        "pub fn scaled(power_w: f64, factor: f64) -> f64 { \
         let out_w = power_w * factor; out_w }",
    )]);
    assert!(check_r7(&table).is_empty());
}

#[test]
fn r7_does_not_apply_outside_the_unit_crates() {
    let (table, _) = model(&[(
        "crates/campaign/src/fixture.rs",
        "pub fn mix(temp_c: f64, temp_k: f64) -> f64 { temp_c + temp_k }",
    )]);
    assert!(check_r7(&table).is_empty());
}

// --- R8: dead experiment detection ----------------------------------------

const EXP_FILE: &str = "crates/bench/src/experiments.rs";

#[test]
fn r8_flags_experiment_unreachable_from_dispatch() {
    let (table, graph) = model(&[
        (
            EXP_FILE,
            "pub fn fig4_speedup() {}\npub fn orphan_study() {}",
        ),
        (
            "crates/bench/src/cli.rs",
            "pub fn dispatch() { fig4_speedup(); }",
        ),
    ]);
    let v = check_r8(&table, &graph, EXP_FILE);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::R8);
    assert!(v[0].msg.contains("orphan_study"), "{}", v[0].msg);
}

#[test]
fn r8_accepts_fully_wired_registry() {
    let (table, graph) = model(&[
        (EXP_FILE, "pub fn fig4_speedup() {}\npub fn fig6_power() {}"),
        (
            "crates/bench/src/cli.rs",
            "pub fn dispatch() { fig4_speedup(); fig6_power(); }",
        ),
    ]);
    assert!(check_r8(&table, &graph, EXP_FILE).is_empty());
}

#[test]
fn r8_counts_intra_registry_helpers_reached_via_a_dispatched_fn() {
    // A helper called only by a dispatched experiment is not dead.
    let (table, graph) = model(&[
        (
            EXP_FILE,
            "pub fn fig4_speedup() { shared_setup(); }\nfn shared_setup() {}",
        ),
        (
            "crates/bench/src/cli.rs",
            "pub fn dispatch() { fig4_speedup(); }",
        ),
    ]);
    assert!(check_r8(&table, &graph, EXP_FILE).is_empty());
}

// --- R9: lock-hold discipline ---------------------------------------------

#[test]
fn r9_flags_file_io_under_live_guard() {
    let (table, graph) = model(&[(
        "crates/campaign/src/fixture.rs",
        "pub fn worker(s: &Shared) {\n\
         let g = s.state.lock();\n\
         let _ = std::fs::read_to_string(\"cache.json\");\n\
         drop(g);\n}",
    )]);
    let v = check_r9(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::R9);
    assert!(v[0].msg.contains("file I/O"), "{}", v[0].msg);
}

#[test]
fn r9_accepts_io_after_drop_or_outside_guard_scope() {
    let (table, graph) = model(&[(
        "crates/campaign/src/fixture.rs",
        "pub fn worker(s: &Shared) {\n\
         let g = s.state.lock();\n\
         drop(g);\n\
         let _ = std::fs::read_to_string(\"cache.json\");\n}\n\
         pub fn scoped(s: &Shared) {\n\
         { let g = s.state.lock(); let _ = g; }\n\
         let _ = std::fs::read_to_string(\"cache.json\");\n}",
    )]);
    assert!(check_r9(&table, &graph).is_empty());
}

#[test]
fn r9_flags_command_spawn_under_guard() {
    let (table, graph) = model(&[(
        "crates/campaign/src/fixture.rs",
        "pub fn runner(s: &Shared) {\n\
         let st = s.state.write();\n\
         let _ = std::process::Command::new(\"solver\").spawn();\n\
         drop(st);\n}",
    )]);
    let v = check_r9(&table, &graph);
    assert!(!v.is_empty(), "{v:?}");
}

#[test]
fn r9_flags_cross_crate_solver_call_under_guard() {
    let (table, graph) = model(&[
        (
            "crates/campaign/src/fixture.rs",
            "pub fn tick(s: &Shared) {\n\
             let g = s.state.lock();\n\
             solve_steady();\n\
             drop(g);\n}",
        ),
        ("crates/thermal/src/fixture.rs", "pub fn solve_steady() {}"),
    ]);
    let v = check_r9(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("solver"), "{}", v[0].msg);
}

#[test]
fn r9_ignores_lock_shaped_calls_outside_campaign() {
    let (table, graph) = model(&[(
        "crates/archsim/src/fixture.rs",
        "pub fn worker(s: &Shared) {\n\
         let g = s.state.lock();\n\
         let _ = std::fs::read_to_string(\"trace.bin\");\n\
         drop(g);\n}",
    )]);
    assert!(check_r9(&table, &graph).is_empty());
}

#[test]
fn r9_flags_transitive_solver_call_under_guard() {
    // The lock-holding fn never names the solver crate directly: it
    // calls a local helper that calls another helper that finally
    // crosses into `thermal`. The call-graph pass must still flag it.
    let (table, graph) = model(&[
        (
            "crates/campaign/src/fixture.rs",
            "pub fn tick(s: &Shared) {\n\
             let g = s.state.lock();\n\
             refresh();\n\
             drop(g);\n}\n\
             pub fn refresh() { hot_path(); }\n\
             pub fn hot_path() { solve_steady(); }",
        ),
        ("crates/thermal/src/fixture.rs", "pub fn solve_steady() {}"),
    ]);
    let v = check_r9(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].msg.contains("transitively reaches a solver crate"),
        "{}",
        v[0].msg
    );
    assert!(v[0].msg.contains("refresh"), "{}", v[0].msg);
}

#[test]
fn r9_accepts_local_helper_that_never_reaches_a_solver() {
    let (table, graph) = model(&[(
        "crates/campaign/src/fixture.rs",
        "pub fn tick(s: &Shared) {\n\
         let g = s.state.lock();\n\
         bump();\n\
         drop(g);\n}\n\
         pub fn bump() { count(); }\n\
         pub fn count() {}",
    )]);
    assert!(check_r9(&table, &graph).is_empty());
}

#[test]
fn r9_covers_the_core_crate_sweep_path() {
    // `core` holds the explorer's concurrent sweep; a direct solver
    // call under a lock there is just as illegal as in `campaign`.
    let (table, graph) = model(&[
        (
            "crates/core/src/fixture.rs",
            "pub fn sweep(s: &Shared) {\n\
             let g = s.state.lock();\n\
             solve_steady();\n\
             drop(g);\n}",
        ),
        ("crates/thermal/src/fixture.rs", "pub fn solve_steady() {}"),
    ]);
    let v = check_r9(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("solver"), "{}", v[0].msg);
}
