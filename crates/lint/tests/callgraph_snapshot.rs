//! Snapshot test for the DOT rendering of the call graph: a small
//! synthetic workspace with free functions, methods, cross-crate
//! calls, and an unresolvable ambiguous call, compared byte-for-byte
//! against `tests/golden/cgdemo.dot`.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p immersion-lint`.

use immersion_lint::callgraph::CallGraph;
use immersion_lint::symbols::SymbolTable;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/cgdemo.dot");

fn demo_sources() -> Vec<(String, String)> {
    vec![
        (
            "crates/thermal/src/demo.rs".to_string(),
            "pub struct Grid;\n\
             impl Grid {\n\
                 pub fn solve(&self) -> f64 { self.relax() }\n\
                 fn relax(&self) -> f64 { norm() }\n\
             }\n\
             fn norm() -> f64 { 0.0 }\n"
                .to_string(),
        ),
        (
            "crates/power/src/demo.rs".to_string(),
            "pub fn chip_power_w(g: &Grid) -> f64 { g.solve() + leakage_w() }\n\
             fn leakage_w() -> f64 { 0.0 }\n\
             // `helper` exists in two crates: the ambiguous free call in\n\
             // campaign resolves to neither.\n\
             pub fn helper() {}\n"
                .to_string(),
        ),
        (
            "crates/coolant/src/demo.rs".to_string(),
            "pub fn helper() {}\n".to_string(),
        ),
        (
            "crates/campaign/src/demo.rs".to_string(),
            "pub fn run(g: &Grid) -> f64 {\n\
                 helper();\n\
                 chip_power_w(g)\n\
             }\n"
            .to_string(),
        ),
    ]
}

#[test]
fn dot_snapshot_matches_golden() {
    let (table, errors) = SymbolTable::build(&demo_sources());
    assert!(errors.is_empty(), "{errors:?}");
    let graph = CallGraph::build(&table);
    let dot = graph.to_dot(&table);

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &dot).expect("write golden");
    }
    let expected = std::fs::read_to_string(GOLDEN).expect("golden file (run with UPDATE_GOLDEN=1)");
    assert_eq!(
        dot, expected,
        "DOT snapshot drifted; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn snapshot_edges_reflect_resolution_rules() {
    let (table, _) = SymbolTable::build(&demo_sources());
    let graph = CallGraph::build(&table);
    let dot = graph.to_dot(&table);

    // Method chain within thermal, cross-crate call, and the campaign
    // entry edge all resolve:
    assert!(dot.contains("\"thermal::Grid::solve\" -> \"thermal::Grid::relax\""));
    assert!(dot.contains("\"power::chip_power_w\" -> \"thermal::Grid::solve\""));
    assert!(dot.contains("\"campaign::run\" -> \"power::chip_power_w\""));
    // Ambiguous free call (power::helper vs coolant::helper, caller in
    // neither crate) must produce no edge at all:
    assert!(!dot.contains("-> \"power::helper\""));
    assert!(!dot.contains("-> \"coolant::helper\""));
}
