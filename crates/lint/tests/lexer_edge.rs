//! Lexer edge-case regressions: nested block comments, raw strings,
//! lifetimes vs char literals, and the other shapes that historically
//! trip hand-rolled Rust lexers.

use immersion_lint::lexer::{lex, strip_test_items, TokenKind};

#[test]
fn nested_block_comments() {
    let toks = lex("a /* outer /* inner */ still comment */ b").unwrap();
    let idents: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(idents, ["a", "b"]);
}

#[test]
fn deeply_nested_block_comment_with_code_inside() {
    let toks = lex("/* /* /* unwrap() */ */ panic!() */ fn ok() {}").unwrap();
    assert!(toks.iter().any(|t| t.is_ident("ok")));
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    assert!(!toks.iter().any(|t| t.is_ident("panic")));
}

#[test]
fn unterminated_block_comment_is_an_error() {
    assert!(lex("fn f() {} /* never closed").is_err());
}

#[test]
fn raw_strings_with_hashes_and_quotes() {
    let toks = lex(r####"let s = r#"quote " inside"#;"####).unwrap();
    let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
    assert_eq!(s.text, "quote \" inside");
}

#[test]
fn raw_string_with_two_hashes_containing_one_hash_terminator() {
    let toks = lex(r#####"let s = r##"ends "# not yet"##;"#####).unwrap();
    let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
    assert_eq!(s.text, "ends \"# not yet");
}

#[test]
fn raw_string_swallows_would_be_tokens() {
    // The contents must not leak tokens: `unwrap()` inside a raw
    // string is data, not a call.
    let toks = lex(r##"let s = r"x.unwrap()";"##).unwrap();
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
}

#[test]
fn byte_strings_and_byte_chars() {
    let toks = lex(r#"let b = b"bytes"; let c = b'x';"#).unwrap();
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Str && t.text == "bytes"));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokenKind::Char && t.text == "x"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").unwrap();
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["a", "a", "a"]);
    assert!(!toks.iter().any(|t| t.kind == TokenKind::Char));
}

#[test]
fn static_lifetime_and_label() {
    let toks = lex("static X: &'static str = \"s\"; 'outer: loop { break 'outer; }").unwrap();
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["static", "outer", "outer"]);
}

#[test]
fn char_literal_with_escapes() {
    let toks = lex(r"let nl = '\n'; let q = '\''; let tick = '\u{2713}';").unwrap();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, [r"\n", r"\'", r"\u{2713}"]);
}

#[test]
fn numeric_literal_flavours() {
    let toks = lex("0xff 0b1010 0o77 1_000 1.5e-3 2.0f64 3f32").unwrap();
    assert!(toks.iter().all(|t| t.kind == TokenKind::Number));
    assert_eq!(toks.len(), 7);
    assert!(!toks[0].is_float_literal()); // 0xff
    assert!(toks[4].is_float_literal()); // 1.5e-3
    assert!(toks[5].is_float_literal()); // 2.0f64
}

#[test]
fn maximal_munch_multi_punct() {
    let toks = lex("a <<= b ..= c => d :: e").unwrap();
    let puncts: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Punct)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(puncts, ["<<=", "..=", "=>", "::"]);
}

#[test]
fn line_numbers_survive_comments_and_strings() {
    let src = "// line 1\n/* spans\nlines */ a\nb";
    let toks = lex(src).unwrap();
    assert_eq!(toks[0].text, "a");
    assert_eq!(toks[0].line, 3);
    assert_eq!(toks[1].text, "b");
    assert_eq!(toks[1].line, 4);
}

#[test]
fn strip_test_items_removes_cfg_test_module_only() {
    let src = "pub fn keep() {}\n\
               #[cfg(test)]\nmod tests { fn gone() { x.unwrap(); } }\n\
               pub fn also_keep() {}";
    let toks = strip_test_items(&lex(src).unwrap());
    assert!(toks.iter().any(|t| t.is_ident("keep")));
    assert!(toks.iter().any(|t| t.is_ident("also_keep")));
    assert!(!toks.iter().any(|t| t.is_ident("gone")));
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
}
