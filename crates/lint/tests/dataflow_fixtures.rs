//! Good/bad fixture pairs for the dataflow-powered rules R10–R12,
//! loaded from `tests/fixtures/` and presented under synthetic
//! workspace paths (R10 keys off its replay-root file list, R11 off
//! the `serve`/`campaign`/`thermal`/`core` crates).

use immersion_lint::callgraph::CallGraph;
use immersion_lint::determinism::{check_r10, collect_wall_clock_ok};
use immersion_lint::errflow::check_r12;
use immersion_lint::lockorder::check_r11;
use immersion_lint::rules::Rule;
use immersion_lint::symbols::SymbolTable;

fn model(files: &[(&str, &str)]) -> (Vec<(String, String)>, SymbolTable, CallGraph) {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    let (table, errors) = SymbolTable::build(&sources);
    assert!(errors.is_empty(), "fixture must parse: {errors:?}");
    let graph = CallGraph::build(&table);
    (sources, table, graph)
}

// --- R10: determinism of the replay cone ----------------------------------

const R10_ROOT: &str = "crates/desim/src/rng.rs";

#[test]
fn r10_flags_wall_clock_and_unordered_iteration_in_replay_roots() {
    let (sources, table, graph) = model(&[(R10_ROOT, include_str!("fixtures/r10_bad.rs"))]);
    let wall_ok = collect_wall_clock_ok(&sources);
    let v = check_r10(&table, &graph, &wall_ok);
    assert!(v.len() >= 3, "expected >=3 findings, got {v:?}");
    assert!(v.iter().all(|f| f.rule == Rule::R10));
    assert!(
        v.iter().any(|f| f.msg.contains("Instant::now")),
        "wall clock not flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|f| f.msg.contains("`counts` `.iter()`") && f.msg.contains("digest_counts")),
        "param HashMap iteration not flagged: {v:?}"
    );
    assert!(
        v.iter().any(|f| f.msg.contains("`m` `.values()`")),
        "local HashMap iteration not flagged: {v:?}"
    );
}

#[test]
fn r10_accepts_ordered_containers_and_annotated_timing() {
    let (sources, table, graph) = model(&[(R10_ROOT, include_str!("fixtures/r10_good.rs"))]);
    let wall_ok = collect_wall_clock_ok(&sources);
    let v = check_r10(&table, &graph, &wall_ok);
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
}

#[test]
fn r10_reaches_nondeterminism_through_call_edges() {
    // The root file is clean; the nondeterminism lives in a helper
    // crate the root calls into.
    let (sources, table, graph) = model(&[
        (R10_ROOT, "pub fn schedule() -> u64 { tick_stamp() }"),
        (
            "crates/serve/src/metrics.rs",
            "pub fn tick_stamp() -> u64 {\n\
             let t = std::time::Instant::now();\n\
             t.elapsed().as_nanos() as u64\n}",
        ),
    ]);
    let wall_ok = collect_wall_clock_ok(&sources);
    let v = check_r10(&table, &graph, &wall_ok);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].msg.contains("replay root path") && v[0].msg.contains("schedule"),
        "{}",
        v[0].msg
    );
}

#[test]
fn r10_ignores_files_outside_the_replay_cone() {
    let (sources, table, graph) = model(&[(
        "crates/archsim/src/fixture.rs",
        include_str!("fixtures/r10_bad.rs"),
    )]);
    let wall_ok = collect_wall_clock_ok(&sources);
    assert!(check_r10(&table, &graph, &wall_ok).is_empty());
}

// --- R11: lock-acquisition order ------------------------------------------

#[test]
fn r11_flags_opposite_order_cycle_and_reentrant_call() {
    let (_, table, graph) = model(&[(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r11_bad.rs"),
    )]);
    let (v, lg) = check_r11(&table, &graph);
    assert!(v.iter().all(|f| f.rule == Rule::R11));
    assert!(
        v.iter().any(|f| f.msg.contains("lock-order cycle")),
        "cycle not flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|f| f.msg.contains("re-acquire") && f.msg.contains("bump")),
        "re-entrant call not flagged: {v:?}"
    );
    assert!(!lg.cycles().is_empty(), "graph should be cyclic");
}

#[test]
fn r11_accepts_consistent_order_and_scoped_guards() {
    let (_, table, graph) = model(&[(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r11_good.rs"),
    )]);
    let (v, lg) = check_r11(&table, &graph);
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
    assert!(lg.cycles().is_empty(), "graph should be acyclic");
    // The one real ordering edge is still recorded for the DOT dump.
    let dot = lg.to_dot();
    assert!(
        dot.contains("\"serve::Hub.a\" -> \"serve::Hub.b\""),
        "{dot}"
    );
}

#[test]
fn r11_flags_reentrant_read_with_live_read_guard() {
    let (_, table, graph) = model(&[(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r11_reread_bad.rs"),
    )]);
    let (v, _) = check_r11(&table, &graph);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::R11);
    assert!(
        v[0].msg.contains("readers are not reentrant"),
        "read-read re-entry needs its own message: {}",
        v[0].msg
    );
    assert!(v[0].msg.contains("serve::Snap.data"), "{}", v[0].msg);
}

#[test]
fn r11_accepts_sequential_reads_with_dropped_guard() {
    let (_, table, graph) = model(&[(
        "crates/serve/src/fixture.rs",
        include_str!("fixtures/r11_reread_good.rs"),
    )]);
    let (v, _) = check_r11(&table, &graph);
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
}

#[test]
fn r11_ignores_crates_outside_its_scope() {
    let (_, table, graph) = model(&[(
        "crates/archsim/src/fixture.rs",
        include_str!("fixtures/r11_bad.rs"),
    )]);
    let (v, _) = check_r11(&table, &graph);
    assert!(v.is_empty(), "{v:?}");
}

// --- R12: swallowed errors ------------------------------------------------

#[test]
fn r12_flags_let_underscore_dropped_result_and_one_sided_consumption() {
    let (_, table, _) = model(&[(
        "crates/campaign/src/fixture.rs",
        include_str!("fixtures/r12_bad.rs"),
    )]);
    let v = check_r12(&table);
    assert!(v.iter().all(|f| f.rule == Rule::R12));
    assert!(
        v.iter().any(|f| f.msg.contains("`let _ =`")),
        "let _ swallow not flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|f| f.msg.contains("dropped on the floor") && f.msg.contains("fire_and_forget")),
        "bare dropped Result not flagged: {v:?}"
    );
    assert!(
        v.iter()
            .any(|f| f.msg.contains("never consumed on at least one path")
                && f.msg.contains("`r`")),
        "one-sided consumption not flagged: {v:?}"
    );
}

#[test]
fn r12_accepts_propagation_logging_and_exhaustive_matching() {
    let (_, table, _) = model(&[(
        "crates/campaign/src/fixture.rs",
        include_str!("fixtures/r12_good.rs"),
    )]);
    let v = check_r12(&table);
    assert!(v.is_empty(), "clean fixture flagged: {v:?}");
}
