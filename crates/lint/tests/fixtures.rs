//! Every rule proven both ways: its negative fixture must fire, its
//! positive fixture must stay silent — and the live workspace itself
//! must lint clean, so the rules stay enforced by `cargo test` even if
//! CI forgets to call `watercool lint`.

use immersion_lint::{lexer, lint_source, lint_workspace, rules, Rule};

/// Run R1–R4 on a fixture as if it lived in a physics crate (so R2
/// applies too).
fn violations(src: &str) -> Vec<Rule> {
    lint_source("crates/thermal/src/fixture.rs", src)
        .expect("fixture lexes")
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

#[test]
fn r1_bad_fires_and_good_is_silent() {
    let bad = violations(include_str!("../fixtures/r1_bad.rs"));
    assert_eq!(bad.iter().filter(|r| **r == Rule::R1).count(), 3, "{bad:?}");
    let good = violations(include_str!("../fixtures/r1_good.rs"));
    assert!(!good.contains(&Rule::R1), "{good:?}");
}

#[test]
fn r2_bad_fires_and_good_is_silent() {
    let bad = violations(include_str!("../fixtures/r2_bad.rs"));
    assert_eq!(bad.iter().filter(|r| **r == Rule::R2).count(), 3, "{bad:?}");
    let good = violations(include_str!("../fixtures/r2_good.rs"));
    assert!(!good.contains(&Rule::R2), "{good:?}");
}

#[test]
fn r2_does_not_apply_outside_physics_crates() {
    let src = include_str!("../fixtures/r2_bad.rs");
    let out = lint_source("crates/archsim/src/fixture.rs", src).unwrap();
    assert!(out.iter().all(|v| v.rule != Rule::R2), "{out:?}");
}

#[test]
fn r3_bad_fires_and_good_is_silent() {
    let bad = violations(include_str!("../fixtures/r3_bad.rs"));
    assert_eq!(bad.iter().filter(|r| **r == Rule::R3).count(), 3, "{bad:?}");
    let good = violations(include_str!("../fixtures/r3_good.rs"));
    assert!(!good.contains(&Rule::R3), "{good:?}");
}

#[test]
fn r4_bad_fires_and_good_is_silent() {
    let bad = violations(include_str!("../fixtures/r4_bad.rs"));
    assert_eq!(bad.iter().filter(|r| **r == Rule::R4).count(), 1, "{bad:?}");
    let good = violations(include_str!("../fixtures/r4_good.rs"));
    assert!(!good.contains(&Rule::R4), "{good:?}");
}

#[test]
fn r5_bad_fires_in_both_directions_and_good_is_silent() {
    let bad = lexer::lex(include_str!("../fixtures/r5_bad.rs")).unwrap();
    let v = rules::check_r5("fixture.rs", &bad, Some("summary"));
    // "fig2" unregistered arm missing, "orphan" arm unregistered,
    // "summary" registered both as experiment and as the summary job.
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().any(|x| x.msg.contains("fig2")));
    assert!(v.iter().any(|x| x.msg.contains("orphan")));
    assert!(v.iter().any(|x| x.msg.contains("summary")));

    let good = lexer::lex(include_str!("../fixtures/r5_good.rs")).unwrap();
    let v = rules::check_r5("fixture.rs", &good, Some("summary"));
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn live_workspace_is_lint_clean() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = immersion_lint::find_workspace_root(here).expect("workspace root");
    let report = lint_workspace(&root, false).expect("lint runs");
    assert!(
        report.is_clean(),
        "workspace must lint clean:\n{}",
        report.render()
    );
    // The ratchet itself: R1 debt must stay strictly below the count
    // at the time the allowlist was introduced.
    let r1 = report
        .allowlist_by_rule
        .get(&Rule::R1)
        .copied()
        .unwrap_or(0);
    assert!(
        r1 < 189,
        "R1 debt grew to {r1}; the allowlist only ratchets down"
    );
    // Total debt must stay strictly below the pre-semantic-pass level
    // (68 when R6-R9 landed and the campaign/vfs panic debt was paid).
    assert!(
        report.allowlist_total < 68,
        "total allowed debt grew to {}; the allowlist only ratchets down",
        report.allowlist_total
    );
}
