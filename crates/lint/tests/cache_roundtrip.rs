//! The incremental cache must hit for every file (and the semantic
//! entry) on an unchanged tree, and invalidate on any edit.

use immersion_lint::lint_workspace_with;
use std::fs;
use std::path::PathBuf;

/// A throwaway single-file workspace under the system temp dir.
struct TempWorkspace {
    root: PathBuf,
}

impl TempWorkspace {
    fn new(tag: &str) -> TempWorkspace {
        let root =
            std::env::temp_dir().join(format!("lint-cache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src")).expect("mkdir");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        fs::write(root.join("src/lib.rs"), "pub fn ok() -> u64 { 1 }\n").expect("source");
        TempWorkspace { root }
    }
}

impl Drop for TempWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn unchanged_tree_hits_for_every_file_and_the_semantic_entry() {
    let ws = TempWorkspace::new("warm");
    let cold = lint_workspace_with(&ws.root, false, true).expect("cold run");
    assert!(cold.is_clean(), "{:?}", cold.errors);
    // One per-file entry plus the semantic entry, all cold.
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, cold.files_checked + 1);

    let warm = lint_workspace_with(&ws.root, false, true).expect("warm run");
    assert_eq!(warm.cache_misses, 0, "warm run recomputed something");
    assert_eq!(warm.cache_hits, warm.files_checked + 1);
}

#[test]
fn an_edit_invalidates_the_file_and_semantic_entries() {
    let ws = TempWorkspace::new("edit");
    lint_workspace_with(&ws.root, false, true).expect("cold run");
    fs::write(ws.root.join("src/lib.rs"), "pub fn ok() -> u64 { 2 }\n").expect("edit");
    let after = lint_workspace_with(&ws.root, false, true).expect("post-edit run");
    // The edited file and the workspace-wide semantic entry both miss.
    assert_eq!(after.cache_misses, 2, "{after:?}");
}

#[test]
fn disabling_the_cache_reports_no_traffic() {
    let ws = TempWorkspace::new("off");
    let report = lint_workspace_with(&ws.root, false, false).expect("uncached run");
    assert_eq!(report.cache_hits + report.cache_misses, 0);
    assert!(!ws.root.join("target/lint-cache").exists());
}
