//! The parser must stay *total* over the repository: every workspace
//! source file (raw, before test-stripping) must lex, nest into token
//! trees, and parse into items without error. CI runs this test so a
//! new syntax construct that defeats the parser fails the build
//! instead of silently dropping functions from the call graph.

use immersion_lint::{ast, collect_sources, find_workspace_root, lexer};

#[test]
fn every_workspace_file_parses() {
    let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root");
    let files = collect_sources(&root).expect("collect sources");
    assert!(files.len() > 50, "suspiciously few files: {}", files.len());
    let mut parsed_fns = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path).expect("read source");
        let tokens = lexer::lex(&src).unwrap_or_else(|e| panic!("{rel}: lex error: {e}"));
        let file = ast::parse_file(&tokens).unwrap_or_else(|e| panic!("{rel}: parse error: {e}"));
        parsed_fns += file.fns.len();
    }
    // The workspace defines hundreds of functions; if the item parser
    // silently skipped most of them the call graph would be hollow.
    assert!(
        parsed_fns > 300,
        "only {parsed_fns} fns parsed across {} files — item parser is dropping definitions",
        files.len()
    );
}
