//! Structural tests for the per-function CFG builder and the forward
//! dataflow engine: if/else diamonds, loop back edges, early `return`,
//! and `?` splits.

use immersion_lint::ast::{parse_file, Stmt};
use immersion_lint::cfg::{forward, Action, Cfg};
use immersion_lint::lexer::lex;
use std::collections::BTreeSet;

fn body_of(src: &str) -> Vec<Stmt> {
    let tokens = lex(src).expect("fixture lexes");
    let file = parse_file(&tokens).expect("fixture parses");
    assert_eq!(file.fns.len(), 1, "one fn per fixture");
    file.fns[0].body.clone().expect("fn has a body")
}

/// Does any block have an edge back to an earlier block (a loop)?
fn has_back_edge(cfg: &Cfg) -> bool {
    cfg.blocks
        .iter()
        .enumerate()
        .any(|(i, b)| b.succs.iter().any(|&s| s <= i && s != cfg.exit))
}

/// Blocks (other than straight-line predecessors of exit) that jump to
/// the exit — early-return/`?` edges.
fn blocks_reaching_exit(cfg: &Cfg) -> usize {
    cfg.blocks
        .iter()
        .filter(|b| b.succs.contains(&cfg.exit))
        .count()
}

#[test]
fn if_else_builds_a_diamond() {
    let body = body_of(
        "fn f(x: u64) -> u64 {\n\
         let mut out = 0;\n\
         if x > 1 { out = 1; } else { out = 2; }\n\
         out\n}",
    );
    let cfg = Cfg::build(&body, true);
    // Entry must branch two ways (then/else), and both arms must be
    // reachable.
    let branching = cfg.blocks.iter().filter(|b| b.succs.len() >= 2).count();
    assert!(branching >= 1, "no branch block: {cfg:?}");
    let reach = cfg.reachable();
    assert!(reach[cfg.exit], "exit unreachable: {cfg:?}");
    assert!(
        cfg.blocks.len() >= 5,
        "diamond needs entry/then/else/join/exit: {cfg:?}"
    );
}

#[test]
fn while_and_for_loops_have_back_edges() {
    let while_cfg_body = body_of(
        "fn f(mut x: u64) -> u64 {\n\
         while x > 0 { x -= 1; }\n\
         x\n}",
    );
    let cfg = Cfg::build(&while_cfg_body, true);
    assert!(
        has_back_edge(&cfg),
        "while loop lost its back edge: {cfg:?}"
    );

    let for_body = body_of(
        "fn f(xs: &[u64]) -> u64 {\n\
         let mut acc = 0;\n\
         for x in xs { acc += x; }\n\
         acc\n}",
    );
    let cfg = Cfg::build(&for_body, true);
    assert!(has_back_edge(&cfg), "for loop lost its back edge: {cfg:?}");
}

#[test]
fn early_return_edges_to_exit_and_marks_tail_unreachable() {
    let body = body_of(
        "fn f(x: u64) -> u64 {\n\
         if x == 0 { return 7; }\n\
         x + 1\n}",
    );
    let cfg = Cfg::build(&body, true);
    // Both the return inside the branch and the natural fall-out edge
    // reach the exit.
    assert!(
        blocks_reaching_exit(&cfg) >= 2,
        "return edge missing: {cfg:?}"
    );
}

#[test]
fn question_mark_splits_the_block_with_an_exit_edge() {
    let no_try = body_of("fn f() -> u64 { let a = g(); a }");
    let with_try = body_of("fn f() -> Result<u64, E> { let a = g()?; Ok(a) }");
    let plain = Cfg::build(&no_try, true);
    let split = Cfg::build(&with_try, true);
    assert!(
        blocks_reaching_exit(&split) > blocks_reaching_exit(&plain),
        "`?` added no early-exit edge: {split:?}"
    );
}

#[test]
fn forward_dataflow_unions_branch_facts_and_terminates_on_loops() {
    let body = body_of(
        "fn f(c: bool) -> u64 {\n\
         if c { let lhs = 1; } else { let rhs = 2; }\n\
         while c { let inner = 3; }\n\
         0\n}",
    );
    let cfg = Cfg::build(&body, true);
    // May-analysis: collect every name ever bound along any path.
    let exit_names = immersion_lint::cfg::exit_state(
        &cfg,
        BTreeSet::<String>::new(),
        |_, blk, state| {
            let mut s = state.clone();
            for a in &blk.actions {
                if let Action::Bind { names, .. } = a {
                    s.extend(names.iter().cloned());
                }
            }
            s
        },
        |a, b| a.extend(b.iter().cloned()),
    );
    for name in ["lhs", "rhs", "inner"] {
        assert!(exit_names.contains(name), "{name} missing: {exit_names:?}");
    }
}

#[test]
fn forward_returns_in_states_for_every_block() {
    let body = body_of("fn f() -> u64 { let a = 1; a }");
    let cfg = Cfg::build(&body, true);
    let states = forward(
        &cfg,
        0usize,
        |_, blk, s| s + blk.actions.len(),
        |a, b| *a = (*a).max(*b),
    );
    assert_eq!(states.len(), cfg.blocks.len());
    assert!(states[cfg.exit] >= 1, "exit saw no actions: {states:?}");
}
