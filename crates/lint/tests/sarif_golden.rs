//! Golden-file test for the SARIF rendering: a fixed [`LintReport`]
//! rendered to `tests/golden/sample.sarif`, plus a structural schema
//! check (the SARIF 2.1.0 subset we emit) done by actually parsing the
//! JSON with the vendored `serde_json`.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p immersion-lint`.

use immersion_lint::report::{to_json, to_sarif};
use immersion_lint::rules::{Rule, Violation};
use immersion_lint::LintReport;
use serde_json::Value;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/sample.sarif");

fn sample_report() -> LintReport {
    let mut r = LintReport {
        files_checked: 3,
        suppressed: 1,
        allowlist_total: 1,
        ..LintReport::default()
    };
    r.errors
        .push("[R6] crates/power/src/vfs.rs:12: pub fn `max_step` can reach a panic site".into());
    r.errors
        .push("parse error: crates/power/src/broken.rs:4: unbalanced `}`".into());
    r.warnings.push(
        "[R1] crates/power/src/vfs.rs: allowlist budget 2 but only 1 violation(s) remain — \
               run `watercool lint --fix-allowlist` to ratchet it down"
            .into(),
    );
    r.new_violations.push(Violation {
        rule: Rule::R6,
        file: "crates/power/src/vfs.rs".into(),
        line: 12,
        msg: "pub fn `max_step` can reach a panic site".into(),
    });
    r.suppressed_violations.push(Violation {
        rule: Rule::R1,
        file: "crates/power/src/vfs.rs".into(),
        line: 40,
        msg: ".expect() in non-test code (return a Result or use unwrap_or_*)".into(),
    });
    r
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => m.get(key).unwrap_or_else(|| panic!("missing key `{key}`")),
        other => panic!("expected object for `{key}`, got {other:?}"),
    }
}

fn seq(v: &Value) -> &[Value] {
    match v {
        Value::Seq(s) => s,
        other => panic!("expected array, got {other:?}"),
    }
}

fn string(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

#[test]
fn sarif_matches_golden() {
    let sarif = to_sarif(&sample_report());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &sarif).expect("write golden");
    }
    let expected = std::fs::read_to_string(GOLDEN).expect("golden file (run with UPDATE_GOLDEN=1)");
    assert_eq!(
        sarif, expected,
        "SARIF output drifted; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn sarif_conforms_to_the_emitted_schema_subset() {
    let sarif = to_sarif(&sample_report());
    let doc: Value = serde_json::from_str(&sarif).expect("SARIF must be valid JSON");

    assert_eq!(string(field(&doc, "version")), "2.1.0");
    assert!(string(field(&doc, "$schema")).contains("sarif-2.1.0"));

    let runs = seq(field(&doc, "runs"));
    assert_eq!(runs.len(), 1);
    let run = &runs[0];

    let driver = field(field(run, "tool"), "driver");
    assert_eq!(string(field(driver, "name")), "watercool-lint");
    let rules = seq(field(driver, "rules"));
    assert_eq!(rules.len(), Rule::ALL.len());
    for (decl, rule) in rules.iter().zip(Rule::ALL) {
        assert_eq!(string(field(decl, "id")), rule.id());
        let text = string(field(field(decl, "shortDescription"), "text"));
        assert!(!text.is_empty());
    }

    // Each result: ruleId among the declared rules, a message, and a
    // physical location with a 1-based line.
    let results = seq(field(run, "results"));
    assert_eq!(results.len(), 2);
    for res in results {
        let rule_id = string(field(res, "ruleId"));
        assert!(Rule::from_id(rule_id).is_some(), "unknown ruleId {rule_id}");
        assert!(!string(field(field(res, "message"), "text")).is_empty());
        let locations = seq(field(res, "locations"));
        assert_eq!(locations.len(), 1);
        let phys = field(&locations[0], "physicalLocation");
        let uri = string(field(field(phys, "artifactLocation"), "uri"));
        assert!(uri.starts_with("crates/"), "{uri}");
        match field(field(phys, "region"), "startLine") {
            Value::U64(n) => assert!(*n >= 1),
            other => panic!("startLine must be a number, got {other:?}"),
        }
    }

    // Suppressed findings carry a suppression; new ones must not.
    let suppressions: Vec<bool> = results
        .iter()
        .map(|r| matches!(r, Value::Map(m) if m.contains_key("suppressions")))
        .collect();
    assert_eq!(suppressions, [false, true]);

    // The failed invocation and the non-violation error notification.
    let invocations = seq(field(run, "invocations"));
    assert_eq!(invocations.len(), 1);
    assert_eq!(
        field(&invocations[0], "executionSuccessful"),
        &Value::Bool(false)
    );
    let notes = seq(field(&invocations[0], "toolExecutionNotifications"));
    assert_eq!(notes.len(), 1);
    assert!(string(field(field(&notes[0], "message"), "text")).contains("parse error"));
}

#[test]
fn json_rendering_is_parsable_and_complete() {
    let report = sample_report();
    let doc: Value = serde_json::from_str(&to_json(&report)).expect("JSON must parse");
    assert_eq!(field(&doc, "files_checked"), &Value::U64(3));
    assert_eq!(field(&doc, "clean"), &Value::Bool(false));
    assert_eq!(seq(field(&doc, "errors")).len(), 2);
    assert_eq!(seq(field(&doc, "warnings")).len(), 1);
    let violations = seq(field(&doc, "violations"));
    assert_eq!(violations.len(), 2);
    assert_eq!(string(field(&violations[0], "rule")), "R6");
    assert_eq!(field(&violations[0], "suppressed"), &Value::Bool(false));
    assert_eq!(field(&violations[1], "suppressed"), &Value::Bool(true));
}
