//! R2 positive fixture: every public f64 carries its unit, is a
//! blessed quantity word, or is typed; private fields are exempt.

pub struct PumpSpec {
    /// Suffixed: watts.
    pub power_w: f64,
    /// Suffixed: litres.
    pub volume_litres: f64,
    /// Compound suffix ending in a base unit.
    pub exchanger_w_per_k: f64,
    /// Dimensionless marker.
    pub duty_fraction: f64,
    /// Blessed dimensionless name.
    pub alpha: f64,
    /// Private fields are not part of the public surface.
    internal_scratch: f64,
}

/// Blessed quantity word as a whole name.
pub fn set_limit(celsius: f64, watts: f64) -> f64 {
    celsius + watts
}

/// Non-f64 parameters are out of scope for R2.
pub fn resize(n: usize, label: &str) -> usize {
    n + label.len()
}
