//! R4 positive fixture: the same conversion through a safe API; the
//! word unsafe in comments or strings does not count.

pub fn reinterpret(x: u64) -> f64 {
    // f64::from_bits is the safe spelling of that unsafe transmute.
    f64::from_bits(x)
}

pub fn describe() -> &'static str {
    "no unsafe here"
}
