//! R4 negative fixture: unsafe outside vendor/.

pub fn reinterpret(x: u64) -> f64 {
    unsafe { std::mem::transmute::<u64, f64>(x) }
}
