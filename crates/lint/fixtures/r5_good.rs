//! R5 positive fixture: registry and dispatch agree exactly, and no
//! experiment collides with the summary job name.

pub const EXPERIMENTS: &[&str] = &["fig1", "fig2"];

pub fn run_experiment(name: &str) -> Option<u32> {
    Some(match name {
        "fig1" => 1,
        "fig2" => 2,
        _ => return None,
    })
}
