//! R3 negative fixture: NaN-unsafe float comparisons.

pub fn hottest(temps: &[f64]) -> Option<f64> {
    // partial_cmp().unwrap() panics the moment a NaN appears.
    temps
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
}

pub fn is_ambient(t: f64) -> bool {
    // Exact equality against a float literal.
    t == 25.0
}

pub fn is_not_zero(x: f64) -> bool {
    x != 0.0
}
