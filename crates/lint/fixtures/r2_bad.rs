//! R2 negative fixture: unit-less public f64 surface.

/// A struct whose public fields hide their units.
pub struct PumpSpec {
    /// What unit is this? Watts? Horsepower?
    pub power: f64,
    /// Metres? Litres? Nobody knows.
    pub volume: f64,
}

/// A temperature parameter with no scale in its name.
pub fn set_limit(limit: f64) -> f64 {
    limit
}
