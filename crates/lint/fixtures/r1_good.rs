//! R1 positive fixture: fallible code without panics; unwrap_or family
//! and test-only unwraps are fine, as are mentions in strings/comments.

pub fn lookup(map: &std::collections::HashMap<String, f64>, key: &str) -> Option<f64> {
    map.get(key).copied()
}

pub fn lookup_or_zero(map: &std::collections::HashMap<String, f64>, key: &str) -> f64 {
    // unwrap_or_* are not unwrap(): they cannot panic.
    map.get(key).copied().unwrap_or(0.0)
}

pub fn describe() -> &'static str {
    // The words unwrap() and panic! in a string literal do not count.
    "call sites must not unwrap() or panic!"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let mut m = std::collections::HashMap::new();
        m.insert("k".to_string(), 1.0);
        assert_eq!(lookup(&m, "k").unwrap(), 1.0);
    }
}
