//! R3 positive fixture: NaN-safe comparisons.

pub fn hottest(temps: &[f64]) -> Option<f64> {
    temps.iter().copied().max_by(f64::total_cmp)
}

pub fn is_ambient(t: f64) -> bool {
    (t - 25.0).abs() < 1e-9
}

pub fn is_not_zero(x: f64) -> bool {
    x.abs() > 0.0
}

pub fn count_matches(n: usize) -> bool {
    // Integer equality is fine.
    n == 25
}
