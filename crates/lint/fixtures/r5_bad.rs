//! R5 negative fixture: registry and dispatch drifted in both
//! directions ("fig2" registered but never dispatched, "orphan"
//! dispatched but never registered) and an experiment shadows the
//! campaign summary job.

pub const EXPERIMENTS: &[&str] = &["fig1", "fig2", "summary"];

pub fn run_experiment(name: &str) -> Option<u32> {
    Some(match name {
        "fig1" => 1,
        "orphan" => 99,
        "summary" => 100,
        _ => return None,
    })
}
