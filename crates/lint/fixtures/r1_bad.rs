//! R1 negative fixture: panicking calls in shipped code.

pub fn lookup(map: &std::collections::HashMap<String, f64>, key: &str) -> f64 {
    // Each of the three banned forms, outside any test module.
    let a = map.get(key).unwrap();
    let b = map.get(key).expect("key present");
    if a != b {
        panic!("inconsistent map");
    }
    *a
}
