//! Equivalence and property tests for the multigrid preconditioner
//! and the stencil fast path.
//!
//! Three claims, checked on randomized stacked-CMP models (the same
//! assembly path production uses, not synthetic matrices):
//!
//! 1. **Solver equivalence** — the multigrid-preconditioned CG and
//!    the Jacobi-preconditioned CG converge to the same temperature
//!    field (a preconditioner changes the iteration path, never the
//!    fixpoint). Both run at a tightened tolerance so the comparison
//!    band is 1e-10 of the field magnitude.
//! 2. **Preconditioner symmetry** — the V-cycle operator `M` is
//!    symmetric (`xᵀMy == yᵀMx`): symmetric Gauss–Seidel smoothing
//!    with equal pre/post sweeps plus Galerkin coarse operators keep
//!    CG's convergence theory valid.
//! 3. **Stencil/CSR bitwise equality** — the 7-point stencil matvec
//!    reproduces the generic CSR matvec bit for bit on grid-born
//!    matrices (row-major neighbor order equals ascending-column CSR
//!    order), so enabling the fast path can never move a result.

use immersion_thermal::floorplan::{Floorplan, Rect};
use immersion_thermal::mg::MgScratch;
use immersion_thermal::sparse::CgOptions;
use immersion_thermal::stack3d::{CoolingParams, StackBuilder};
use immersion_thermal::{MgOptions, PrecondChoice, ThermalModel};
use proptest::prelude::*;

/// A two-block die floorplan; block split position comes from the
/// test case so the rasterization (and thus the RHS) varies.
fn floorplan(split: f64) -> Floorplan {
    let w = 0.01;
    let cut = w * split;
    let mut fp = Floorplan::new(w, w);
    fp.add_block("CORE", Rect::new(0.0, 0.0, cut, w)).unwrap();
    fp.add_block("CACHE", Rect::new(cut, 0.0, w - cut, w))
        .unwrap();
    fp
}

/// Build the randomized stack under `precond` with a tightened CG
/// tolerance (the equivalence band needs both arms well past their
/// default 1e-9 stopping point).
fn build(chips: usize, grid: usize, split: f64, precond: PrecondChoice) -> ThermalModel {
    StackBuilder::new(floorplan(split))
        .chips(chips)
        .grid(grid, grid)
        .cooling(CoolingParams::water_immersion())
        .cg_options(CgOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
        })
        .preconditioner(precond)
        .build()
        .expect("model builds")
}

fn solve_cold(model: &ThermalModel, powers: &[(f64, f64)]) -> Vec<f64> {
    let mut p = model.zero_power();
    for (die, &(core_w, cache_w)) in powers.iter().enumerate().take(model.n_power_layers()) {
        p.set(die, "CORE", core_w).unwrap();
        p.set(die, "CACHE", cache_w).unwrap();
    }
    let sol = model.solve_steady_cold(&p).expect("converges");
    sol.into_temps()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn multigrid_and_jacobi_converge_to_the_same_field(
        chips in 1usize..4,
        grid in 4usize..10,
        split in 0.2f64..0.8,
        powers in proptest::collection::vec((0.5f64..8.0, 0.5f64..8.0), 3),
    ) {
        let mg_model = build(chips, grid, split, PrecondChoice::Auto);
        prop_assert!(mg_model.multigrid().is_some(), "hierarchy must build");
        let jac_model = build(chips, grid, split, PrecondChoice::Jacobi);
        prop_assert!(jac_model.multigrid().is_none());

        let t_mg = solve_cold(&mg_model, &powers);
        let t_jac = solve_cold(&jac_model, &powers);
        let scale = t_jac.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in t_mg.iter().zip(&t_jac) {
            prop_assert!(
                (a - b).abs() <= 1e-10 * scale,
                "fields disagree: {a} vs {b} (band {:.3e})",
                1e-10 * scale
            );
        }
    }

    #[test]
    fn vcycle_operator_is_symmetric_on_random_models(
        chips in 1usize..4,
        grid in 4usize..10,
        split in 0.2f64..0.8,
        xs in proptest::collection::vec(-10.0f64..10.0, 64),
        ys in proptest::collection::vec(-10.0f64..10.0, 64),
    ) {
        let model = build(chips, grid, split, PrecondChoice::Auto);
        let mg = model.multigrid().expect("hierarchy");
        let n = model.n_nodes();
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let y: Vec<f64> = ys.iter().cycle().take(n).copied().collect();
        let mut scratch = MgScratch::default();
        let (mut mx, mut my) = (vec![0.0; n], vec![0.0; n]);
        mg.apply(&x, &mut mx, &mut scratch);
        mg.apply(&y, &mut my, &mut scratch);
        let xmy: f64 = x.iter().zip(&my).map(|(a, b)| a * b).sum();
        let ymx: f64 = y.iter().zip(&mx).map(|(a, b)| a * b).sum();
        let scale = xmy.abs().max(ymx.abs()).max(1e-30);
        prop_assert!(
            (xmy - ymx).abs() <= 1e-11 * scale,
            "asymmetry: x'My = {xmy} vs y'Mx = {ymx}"
        );
    }

    #[test]
    fn stencil_matvec_is_bitwise_equal_to_csr(
        chips in 1usize..4,
        grid in 4usize..10,
        split in 0.2f64..0.8,
        xs in proptest::collection::vec(-100.0f64..100.0, 64),
    ) {
        let model = build(chips, grid, split, PrecondChoice::Jacobi);
        let stencil = model.stencil().expect("grid-born matrix classifies");
        let n = model.n_nodes();
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let (mut y_st, mut y_csr) = (vec![0.0; n], vec![0.0; n]);
        stencil.mul_vec(&x, &mut y_st);
        model.matrix().mul_vec(&x, &mut y_csr);
        for (i, (a, b)) in y_st.iter().zip(&y_csr).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "row {i}: stencil {a:?} != csr {b:?}"
            );
        }
    }

    #[test]
    fn mixed_precision_inner_cycles_converge_to_the_same_field(
        chips in 1usize..3,
        grid in 4usize..9,
        split in 0.2f64..0.8,
        powers in proptest::collection::vec((0.5f64..8.0, 0.5f64..8.0), 2),
    ) {
        let full = build(chips, grid, split, PrecondChoice::Auto);
        let mixed = build(
            chips,
            grid,
            split,
            PrecondChoice::Multigrid(MgOptions {
                mixed_precision: true,
                ..MgOptions::default()
            }),
        );
        prop_assert!(mixed.multigrid().is_some());
        let t_full = solve_cold(&full, &powers);
        let t_mixed = solve_cold(&mixed, &powers);
        let scale = t_full.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in t_full.iter().zip(&t_mixed) {
            // The outer CG residual check runs in f64 for both, so the
            // narrowed inner cycles only change the path, not the
            // fixpoint.
            prop_assert!(
                (a - b).abs() <= 1e-10 * scale,
                "fields disagree: {a} vs {b}"
            );
        }
    }
}
