//! Parallel-vs-sequential equivalence of the solver kernels.
//!
//! The fork-join kernels (`mul_vec`, `dot`, the fused CG passes) must
//! match their sequential reference implementations within 1e-12
//! relative tolerance on random SPD grid matrices, and be **bitwise
//! deterministic** for a fixed thread count (the shim combines chunk
//! partials in chunk order, never completion order).

use immersion_thermal::sparse::{
    dot, dot_seq, fused_residual, fused_residual_seq, fused_step, fused_step_seq, CgOptions,
    CsrMatrix, TripletMatrix,
};
use proptest::prelude::*;

/// An SPD conductance-style matrix on an `nx x ny` grid: 5-point
/// Laplacian coupling with random positive edge conductances plus a
/// random positive diagonal tie (the convective term), exactly the
/// structure the thermal assembly produces.
fn grid_spd(nx: usize, ny: usize, edges: &[f64], ties: &[f64]) -> CsrMatrix {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut t = TripletMatrix::new(n);
    let mut e = edges.iter().cycle();
    for y in 0..ny {
        for x in 0..nx {
            let i = idx(x, y);
            if x + 1 < nx {
                let g = *e.next().unwrap();
                let j = idx(x + 1, y);
                t.add(i, j, -g);
                t.add(j, i, -g);
                t.add(i, i, g);
                t.add(j, j, g);
            }
            if y + 1 < ny {
                let g = *e.next().unwrap();
                let j = idx(x, y + 1);
                t.add(i, j, -g);
                t.add(j, i, -g);
                t.add(i, i, g);
                t.add(j, j, g);
            }
            t.add(i, i, ties[i % ties.len()]);
        }
    }
    t.to_csr()
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// Force real forking for any problem size: a 4-thread pool with a
/// tiny split threshold, restored on exit.
fn with_forked_pool<R>(f: impl FnOnce() -> R) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");
    let old = rayon::split_threshold();
    rayon::set_split_threshold(8);
    let r = pool.install(f);
    rayon::set_split_threshold(old);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spmv_matches_sequential(
        nx in 2usize..12,
        ny in 2usize..12,
        edges in proptest::collection::vec(0.05f64..20.0, 16),
        ties in proptest::collection::vec(0.01f64..5.0, 8),
        xs in proptest::collection::vec(-100.0f64..100.0, 144),
    ) {
        let a = grid_spd(nx, ny, &edges, &ties);
        let n = a.dim();
        let x: Vec<f64> = xs.iter().cycle().take(n).copied().collect();
        let (mut y_par, mut y_seq) = (vec![0.0; n], vec![0.0; n]);
        with_forked_pool(|| a.mul_vec(&x, &mut y_par));
        a.mul_vec_seq(&x, &mut y_seq);
        for (p, s) in y_par.iter().zip(&y_seq) {
            prop_assert!(rel_close(*p, *s), "spmv {p} vs {s}");
        }
    }

    #[test]
    fn dot_matches_sequential(
        xs in proptest::collection::vec(-50.0f64..50.0, 1..400),
        ys in proptest::collection::vec(-50.0f64..50.0, 400),
    ) {
        let y = &ys[..xs.len()];
        let par = with_forked_pool(|| dot(&xs, y));
        let seq = dot_seq(&xs, y);
        prop_assert!(rel_close(par, seq), "dot {par} vs {seq}");
    }

    #[test]
    fn fused_kernels_match_sequential(
        nx in 2usize..10,
        ny in 2usize..10,
        edges in proptest::collection::vec(0.05f64..20.0, 16),
        ties in proptest::collection::vec(0.01f64..5.0, 8),
        bs in proptest::collection::vec(-10.0f64..10.0, 100),
        alpha in 0.01f64..2.0,
    ) {
        let a = grid_spd(nx, ny, &edges, &ties);
        let n = a.dim();
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let b: Vec<f64> = bs.iter().cycle().take(n).copied().collect();
        let ax: Vec<f64> = b.iter().map(|v| v * 0.5 + 1.0).collect();

        let (mut r1, mut z1) = (ax.clone(), vec![0.0; n]);
        let (mut r2, mut z2) = (ax.clone(), vec![0.0; n]);
        let s1 = with_forked_pool(|| fused_residual(&mut r1, &mut z1, &b, &inv_diag));
        let s2 = fused_residual_seq(&mut r2, &mut z2, &b, &inv_diag);
        prop_assert!(rel_close(s1.0, s2.0) && rel_close(s1.1, s2.1));
        for i in 0..n {
            prop_assert!(rel_close(r1[i], r2[i]) && rel_close(z1[i], z2[i]));
        }

        let p: Vec<f64> = b.iter().map(|v| v * 0.25 - 0.5).collect();
        let mut ap = vec![0.0; n];
        a.mul_vec_seq(&p, &mut ap);
        let (mut x1, mut x2) = (b.clone(), b.clone());
        let t1 = with_forked_pool(|| fused_step(&mut x1, &mut r1, &mut z1, &p, &ap, &inv_diag, alpha));
        let t2 = fused_step_seq(&mut x2, &mut r2, &mut z2, &p, &ap, &inv_diag, alpha);
        prop_assert!(rel_close(t1.0, t2.0) && rel_close(t1.1, t2.1));
        for i in 0..n {
            prop_assert!(
                rel_close(x1[i], x2[i]) && rel_close(r1[i], r2[i]) && rel_close(z1[i], z2[i])
            );
        }
    }

    #[test]
    fn full_cg_solve_matches_between_pool_widths(
        nx in 3usize..9,
        ny in 3usize..9,
        edges in proptest::collection::vec(0.1f64..10.0, 16),
        ties in proptest::collection::vec(0.05f64..2.0, 8),
        bs in proptest::collection::vec(-5.0f64..5.0, 81),
    ) {
        let a = grid_spd(nx, ny, &edges, &ties);
        let n = a.dim();
        let b: Vec<f64> = bs.iter().cycle().take(n).copied().collect();
        let x0 = vec![0.0; n];
        // Parallel (forked) and 1-thread solves agree to the same
        // tolerance band; exact bitwise equality is only promised for a
        // fixed thread count, so compare against the combined tolerance.
        let (xp, _) = with_forked_pool(|| {
            immersion_thermal::sparse::solve_cg(&a, &b, &x0, CgOptions::default()).expect("par")
        });
        let seq_pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
        let (xs_, _) = seq_pool.install(|| {
            immersion_thermal::sparse::solve_cg(&a, &b, &x0, CgOptions::default()).expect("seq")
        });
        let scale = b.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        for (p, s) in xp.iter().zip(&xs_) {
            prop_assert!((p - s).abs() <= 1e-6 * scale, "{p} vs {s}");
        }
    }
}

/// Two runs with the same pool width produce bitwise-identical results:
/// chunk boundaries are a pure function of (len, threshold, width) and
/// partials are combined in chunk order.
#[test]
fn parallel_solve_is_deterministic_for_fixed_thread_count() {
    let edges: Vec<f64> = (0..16)
        .map(|i| 0.3 + 0.7 * (i as f64 * 0.9).sin().abs())
        .collect();
    let ties: Vec<f64> = (0..8).map(|i| 0.1 + 0.05 * i as f64).collect();
    let a = grid_spd(20, 20, &edges, &ties);
    let n = a.dim();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() * 5.0).collect();
    let x0 = vec![0.0; n];

    let run = || {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .expect("pool");
        let old = rayon::split_threshold();
        rayon::set_split_threshold(8);
        let r = pool.install(|| {
            immersion_thermal::sparse::solve_cg(&a, &b, &x0, CgOptions::default()).expect("cg")
        });
        rayon::set_split_threshold(old);
        r
    };
    let (x1, it1) = run();
    let (x2, it2) = run();
    assert_eq!(it1, it2, "iteration counts must match exactly");
    for (p, q) in x1.iter().zip(&x2) {
        assert_eq!(p.to_bits(), q.to_bits(), "bitwise determinism violated");
    }
}

/// The multigrid path makes the stronger promise: a cold solve is
/// bitwise identical across **different** pool widths (and across
/// runs). Every parallel kernel it touches is either elementwise, a
/// row-partitioned matvec, or the fixed-chunk stable dot; the
/// sequential symmetric Gauss–Seidel sweeps and coarse direct solve
/// never fork at all, so the width can only change scheduling, never
/// arithmetic.
#[test]
fn mg_cold_solve_is_bitwise_identical_across_pool_widths() {
    use immersion_thermal::floorplan::{Floorplan, Rect};
    use immersion_thermal::stack3d::{CoolingParams, StackBuilder};

    let mut fp = Floorplan::new(0.01, 0.01);
    fp.add_block("DIE", Rect::new(0.0, 0.0, 0.01, 0.01))
        .unwrap();
    let model = StackBuilder::new(fp)
        .chips(4)
        .grid(8, 8)
        .cooling(CoolingParams::water_immersion())
        .build()
        .expect("model");
    assert!(model.multigrid().is_some(), "multigrid must be armed");
    let mut p = model.zero_power();
    for die in 0..4 {
        p.set(die, "DIE", 20.0).unwrap();
    }

    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let old = rayon::split_threshold();
        rayon::set_split_threshold(8);
        let sol = pool.install(|| model.solve_steady_cold(&p).expect("solve"));
        rayon::set_split_threshold(old);
        let iters = sol.iterations();
        (sol.into_temps(), iters)
    };

    let (t_ref, it_ref) = run(1);
    assert!(it_ref > 0, "cold solve must iterate");
    for threads in [1usize, 2, 3, 4] {
        let (t, it) = run(threads);
        assert_eq!(it, it_ref, "iteration count changed at width {threads}");
        for (i, (a, b)) in t.iter().zip(&t_ref).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "node {i} differs at width {threads}: {a:?} vs {b:?}"
            );
        }
    }
}
