//! 3-D finite-volume thermal grid assembly.
//!
//! The model is a vertical stack of layers (PCB, package substrate,
//! dies, bonds, TIM, spreader, heatsink, ...). Each layer has its own
//! lateral extent and grid resolution; consecutive layers exchange heat
//! through the area where they overlap, so a 13 mm die sitting on a
//! 45 mm package on a 170 mm board "just works": the conductances follow
//! the geometry.
//!
//! Every grid cell becomes one node of a thermal RC network (one node
//! per layer in the vertical direction, like HotSpot's grid model, with
//! optional vertical subdivision for thick layers such as the heatsink
//! base). The steady-state system `G·T = q` is symmetric positive
//! definite and solved by preconditioned CG ([`crate::sparse`]).
//!
//! Temperatures are in °C. The ambient is not a node: convective ties
//! are folded into the diagonal and the right-hand side (standard
//! elimination of a Dirichlet ambient).

use crate::floorplan::{Floorplan, Rect};
use crate::materials::Material;
use crate::mg::{MgHierarchy, MgOptions, PrecondChoice};
use crate::sparse::{solve_cg_with, CgOptions, CsrMatrix, SolverContext, TripletMatrix};
use crate::steady::Solution;
use crate::stencil::{GridStructure, StencilMatrix};
use crate::{Result, ThermalError};
use immersion_sanitizer::{TrackedMutex, TrackedMutexGuard};
use immersion_units::{Celsius, HeatTransferCoeff};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which surface of a layer a boundary condition applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Surface {
    /// The +z face (towards later layers in the stack order).
    Top,
    /// The −z face (towards earlier layers).
    Bottom,
}

/// A laterally patterned material layout: each block of `floorplan`
/// (in layer-local coordinates) is made of the material at the same
/// index in `materials`; uncovered cells keep the layer's base
/// material. Used for thermal-TSV placement studies, where the bond
/// layer's metal fill is concentrated under chosen blocks.
#[derive(Debug, Clone)]
pub struct LayerPattern {
    /// Block geometry, sized like the layer's extent.
    pub floorplan: Floorplan,
    /// Material of each block (same order as the floorplan's blocks).
    pub materials: Vec<Material>,
}

/// One layer of the stack.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Name for reports ("die-0", "heatsink", ...).
    pub name: String,
    /// Bulk material.
    pub material: Material,
    /// Thickness in meters.
    pub thickness_m: f64,
    /// Lateral extent in the global (board) coordinate system, meters.
    pub extent: Rect,
    /// Lateral resolution.
    pub nx: usize,
    /// Lateral resolution.
    pub ny: usize,
    /// Optional lateral material pattern.
    pub pattern: Option<LayerPattern>,
}

impl LayerSpec {
    /// A layer spanning `extent` with resolution `nx × ny`.
    pub fn new(
        name: &str,
        material: Material,
        thickness_m: f64,
        extent: Rect,
        nx: usize,
        ny: usize,
    ) -> Self {
        LayerSpec {
            name: name.to_string(),
            material,
            thickness_m,
            extent,
            nx,
            ny,
            pattern: None,
        }
    }

    /// Attach a lateral material pattern (builder style).
    pub fn with_pattern(mut self, pattern: LayerPattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Per-cell `(lateral k, vertical k, volumetric heat capacity)` for
    /// this layer, blending pattern blocks by covered area fraction.
    pub(crate) fn cell_properties(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.cells();
        let mut k_lat = vec![self.material.lateral_conductivity.raw(); n];
        let mut k_vert = vec![self.material.conductivity.raw(); n];
        let mut vhc = vec![self.material.volumetric_heat_capacity.raw(); n];
        if let Some(pat) = &self.pattern {
            // Fraction of each cell covered, accumulated per block.
            let cell_area = (self.extent.w / self.nx as f64) * (self.extent.h / self.ny as f64);
            for (bi, block) in pat.floorplan.blocks().iter().enumerate() {
                let mat = pat.materials[bi];
                for (cell, frac_of_block) in pat.floorplan.rasterize_block(bi, self.nx, self.ny) {
                    // rasterize weights are fractions of the *block*;
                    // convert to the fraction of the *cell* covered.
                    let covered = (frac_of_block * block.rect.area() / cell_area).min(1.0);
                    k_lat[cell] += covered
                        * (mat.lateral_conductivity - self.material.lateral_conductivity).raw();
                    k_vert[cell] += covered * (mat.conductivity - self.material.conductivity).raw();
                    vhc[cell] += covered
                        * (mat.volumetric_heat_capacity - self.material.volumetric_heat_capacity)
                            .raw();
                }
            }
        }
        (k_lat, k_vert, vhc)
    }

    fn validate(&self) -> Result<()> {
        if self.thickness_m <= 0.0 || self.extent.w <= 0.0 || self.extent.h <= 0.0 {
            return Err(ThermalError::BadParameter(format!(
                "layer {}: non-positive dimension",
                self.name
            )));
        }
        if self.nx == 0 || self.ny == 0 {
            return Err(ThermalError::BadParameter(format!(
                "layer {}: zero grid resolution",
                self.name
            )));
        }
        if self.material.conductivity.raw() <= 0.0 {
            return Err(ThermalError::BadParameter(format!(
                "layer {}: non-positive conductivity",
                self.name
            )));
        }
        if let Some(pat) = &self.pattern {
            if pat.materials.len() != pat.floorplan.len() {
                return Err(ThermalError::BadParameter(format!(
                    "layer {}: pattern has {} blocks but {} materials",
                    self.name,
                    pat.floorplan.len(),
                    pat.materials.len()
                )));
            }
            if (pat.floorplan.width() - self.extent.w).abs() > 1e-9
                || (pat.floorplan.height() - self.extent.h).abs() > 1e-9
            {
                return Err(ThermalError::BadParameter(format!(
                    "layer {}: pattern outline does not match the extent",
                    self.name
                )));
            }
        }
        Ok(())
    }

    fn cells(&self) -> usize {
        self.nx * self.ny
    }
}

/// A convective boundary condition on one surface of one layer.
#[derive(Debug, Clone)]
pub struct Convection {
    /// Index of the layer carrying the boundary.
    pub layer: usize,
    /// Which face of the layer.
    pub surface: Surface,
    /// Heat transfer coefficient of the coolant film.
    pub h: HeatTransferCoeff,
    /// Effective-area multiplier (e.g. heatsink fins: Table 2's 0.3024 m²
    /// over a 12×12 cm base is a 21× multiplier).
    pub area_multiplier: f64,
    /// Extra series resistance per unit area, m²·K/W — used for thin
    /// conformal coatings such as the parylene film (R'' = t/k).
    pub series_resistance_m2_k_per_w: f64,
    /// Coolant temperature.
    pub ambient: Celsius,
}

impl Convection {
    /// A plain convective surface with no coating and no fins.
    pub fn simple(layer: usize, surface: Surface, h: HeatTransferCoeff, ambient: Celsius) -> Self {
        Convection {
            layer,
            surface,
            h,
            area_multiplier: 1.0,
            series_resistance_m2_k_per_w: 0.0,
            ambient,
        }
    }

    /// Effective conductance per unit *base* area, including the
    /// half-layer conduction `half_r` (m²K/W) from the node at the layer
    /// mid-plane to the surface.
    fn conductance_per_area(&self, half_r: f64) -> f64 {
        let film = 1.0 / (self.h.raw() * self.area_multiplier);
        1.0 / (half_r + self.series_resistance_m2_k_per_w + film)
    }
}

/// Per-chip, per-block power in watts.
///
/// Shaped like HotSpot's `.ptrace`: one row per *power layer* (die), one
/// named column per floorplan block.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerAssignment {
    /// `values[power_layer][block_index]` in watts.
    values: Vec<Vec<f64>>,
    block_names: Vec<Vec<String>>,
}

impl PowerAssignment {
    /// Set the power of `block` on power layer (die) `layer`.
    pub fn set(&mut self, layer: usize, block: &str, watts: f64) -> Result<()> {
        let names = self
            .block_names
            .get(layer)
            .ok_or_else(|| ThermalError::UnknownBlock(format!("power layer {layer}")))?;
        let idx = names
            .iter()
            .position(|n| n == block)
            .ok_or_else(|| ThermalError::UnknownBlock(format!("layer {layer} block {block}")))?;
        self.values[layer][idx] = watts;
        Ok(())
    }

    /// Set every block on every die from a closure `(die, block) -> W`.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, &str) -> f64) {
        for l in 0..self.values.len() {
            for b in 0..self.values[l].len() {
                self.values[l][b] = f(l, &self.block_names[l][b]);
            }
        }
    }

    /// Total power across all dies, watts.
    pub fn total(&self) -> f64 {
        self.values.iter().flatten().sum()
    }

    /// Number of power layers (dies).
    pub fn layers(&self) -> usize {
        self.values.len()
    }

    /// Power of one block.
    pub fn get(&self, layer: usize, block: &str) -> Option<f64> {
        let idx = self
            .block_names
            .get(layer)?
            .iter()
            .position(|n| n == block)?;
        Some(self.values[layer][idx])
    }
}

struct PowerLayer {
    layer: usize,
    /// Per block: rasterised (cell, weight) pairs.
    raster: Vec<Vec<(usize, f64)>>,
    block_names: Vec<String>,
}

/// The assembled thermal model: geometry + conductance matrix.
pub struct ThermalModel {
    layers: Vec<LayerSpec>,
    offsets: Vec<usize>,
    n_nodes: usize,
    matrix: CsrMatrix,
    /// `(node, conductance, ambient)` convective ties.
    conv_ties: Vec<(usize, f64, f64)>,
    power_layers: Vec<PowerLayer>,
    /// Per-node heat capacity (J/K), for the transient solver.
    capacities: Vec<f64>,
    cg: CgOptions,
    /// Reusable CG state (inverse diagonal, scratch vectors, last
    /// solution). Taken out of the lock for the duration of a solve so
    /// the solve itself never runs under the mutex; a concurrent solve
    /// that finds the slot empty just builds a throwaway context.
    /// Tracked by the concurrency sanitizer under the same name the
    /// static R11 lock-order analysis derives for this field.
    solver: TrackedMutex<SolverContext>,
    /// The 7-point stencil view of `matrix` (present whenever the
    /// grid-born matrix classifies, which it does by construction);
    /// shared with every solver context via `Arc`.
    stencil: Option<Arc<StencilMatrix>>,
    /// The multigrid hierarchy preconditioning steady solves; `None`
    /// under [`PrecondChoice::Jacobi`] or when the build declined.
    mg: Option<Arc<MgHierarchy>>,
}

/// Incremental builder for a [`ThermalModel`].
pub struct ModelBuilder {
    layers: Vec<LayerSpec>,
    convections: Vec<Convection>,
    power_floorplans: Vec<(usize, Floorplan)>,
    cg: CgOptions,
    precond: PrecondChoice,
}

impl Default for ModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ModelBuilder {
            layers: Vec::new(),
            convections: Vec::new(),
            power_floorplans: Vec::new(),
            cg: CgOptions::default(),
            precond: PrecondChoice::default(),
        }
    }

    /// Append a layer above all previously added layers; returns its index.
    pub fn add_layer(&mut self, spec: LayerSpec) -> usize {
        self.layers.push(spec);
        self.layers.len() - 1
    }

    /// Attach a convective boundary.
    pub fn add_convection(&mut self, c: Convection) -> &mut Self {
        self.convections.push(c);
        self
    }

    /// Declare `layer` to be a die whose power is described by `fp`.
    /// Power layers are numbered in the order of these calls (die 0 =
    /// first call), independent of their physical position.
    pub fn add_power_floorplan(&mut self, layer: usize, fp: Floorplan) -> &mut Self {
        self.power_floorplans.push((layer, fp));
        self
    }

    /// Override CG solver options.
    pub fn cg_options(&mut self, o: CgOptions) -> &mut Self {
        self.cg = o;
        self
    }

    /// Choose the steady-solve preconditioner (default
    /// [`PrecondChoice::Auto`]: multigrid when the hierarchy builds).
    pub fn preconditioner(&mut self, p: PrecondChoice) -> &mut Self {
        self.precond = p;
        self
    }

    /// Assemble the conductance matrix.
    pub fn build(self) -> Result<ThermalModel> {
        if self.layers.is_empty() {
            return Err(ThermalError::BadParameter("no layers".into()));
        }
        for l in &self.layers {
            l.validate()?;
        }
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut n = 0usize;
        for l in &self.layers {
            offsets.push(n);
            n += l.cells();
        }

        let mut trip = TripletMatrix::new(n);
        let mut capacities = vec![0.0; n];
        // Per-layer, per-cell material properties (patterned layers
        // deviate from the bulk material cell by cell).
        let cell_props: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
            self.layers.iter().map(|l| l.cell_properties()).collect();

        // Lateral conduction within each layer + capacities.
        for (li, l) in self.layers.iter().enumerate() {
            let off = offsets[li];
            let dx = l.extent.w / l.nx as f64;
            let dy = l.extent.h / l.ny as f64;
            let (k_lat, _, vhc) = &cell_props[li];
            for iy in 0..l.ny {
                for ix in 0..l.nx {
                    let cell = iy * l.nx + ix;
                    let node = off + cell;
                    capacities[node] = vhc[cell] * dx * dy * l.thickness_m;
                    if ix + 1 < l.nx {
                        // Series of the two half-cells (harmonic mean).
                        let g = l.thickness_m * dy
                            / (dx / (2.0 * k_lat[cell]) + dx / (2.0 * k_lat[cell + 1]));
                        trip.add_conductance(node, node + 1, g);
                    }
                    if iy + 1 < l.ny {
                        let g = l.thickness_m * dx
                            / (dy / (2.0 * k_lat[cell]) + dy / (2.0 * k_lat[cell + l.nx]));
                        trip.add_conductance(node, node + l.nx, g);
                    }
                }
            }
        }

        // Vertical conduction between consecutive layers over their overlap.
        for li in 0..self.layers.len().saturating_sub(1) {
            let (a, b) = (&self.layers[li], &self.layers[li + 1]);
            let ka = &cell_props[li].1;
            let kb = &cell_props[li + 1].1;
            let xo = overlaps_1d(a.extent.x, a.extent.w, a.nx, b.extent.x, b.extent.w, b.nx);
            let yo = overlaps_1d(a.extent.y, a.extent.h, a.ny, b.extent.y, b.extent.h, b.ny);
            for &(iya, iyb, ly) in &yo {
                for &(ixa, ixb, lx) in &xo {
                    let area = lx * ly;
                    let cell_a = iya * a.nx + ixa;
                    let cell_b = iyb * b.nx + ixb;
                    let r_per_area =
                        a.thickness_m / (2.0 * ka[cell_a]) + b.thickness_m / (2.0 * kb[cell_b]);
                    let g = area / r_per_area;
                    let na = offsets[li] + cell_a;
                    let nb = offsets[li + 1] + cell_b;
                    trip.add_conductance(na, nb, g);
                }
            }
        }

        // Convective ties.
        let mut conv_ties = Vec::new();
        for c in &self.convections {
            let l = self.layers.get(c.layer).ok_or_else(|| {
                ThermalError::BadParameter(format!("convection on layer {}", c.layer))
            })?;
            if c.h.raw() <= 0.0 || c.area_multiplier <= 0.0 {
                return Err(ThermalError::BadParameter(format!(
                    "convection on layer {}: non-positive h",
                    c.layer
                )));
            }
            let k_vert = &cell_props[c.layer].1;
            let dx = l.extent.w / l.nx as f64;
            let dy = l.extent.h / l.ny as f64;
            let off = offsets[c.layer];
            for (cell, &k) in k_vert.iter().enumerate().take(l.cells()) {
                let half_r = l.thickness_m / (2.0 * k);
                let g_cell = c.conductance_per_area(half_r) * dx * dy;
                trip.add_grounded(off + cell, g_cell);
                conv_ties.push((off + cell, g_cell, c.ambient.raw()));
            }
        }
        if conv_ties.is_empty() {
            return Err(ThermalError::BadParameter(
                "no convective boundary: steady-state system would be singular".into(),
            ));
        }

        // Power layers.
        let mut power_layers = Vec::new();
        for (li, fp) in &self.power_floorplans {
            let l = self.layers.get(*li).ok_or_else(|| {
                ThermalError::BadParameter(format!("power floorplan on layer {li}"))
            })?;
            if (fp.width() - l.extent.w).abs() > 1e-9 || (fp.height() - l.extent.h).abs() > 1e-9 {
                return Err(ThermalError::BadParameter(format!(
                    "floorplan ({} x {}) does not match layer {} extent ({} x {})",
                    fp.width(),
                    fp.height(),
                    l.name,
                    l.extent.w,
                    l.extent.h
                )));
            }
            let off = offsets[*li];
            let raster = (0..fp.len())
                .map(|b| {
                    fp.rasterize_block(b, l.nx, l.ny)
                        .into_iter()
                        .map(|(cell, w)| (off + cell, w))
                        .collect()
                })
                .collect();
            power_layers.push(PowerLayer {
                layer: *li,
                raster,
                block_names: fp.blocks().iter().map(|b| b.name.clone()).collect(),
            });
        }

        let matrix = trip.to_csr();
        let dims: Vec<(usize, usize)> = self.layers.iter().map(|l| (l.nx, l.ny)).collect();
        let structure = GridStructure::new(&dims);
        let stencil = StencilMatrix::from_csr(&matrix, &structure).map(Arc::new);
        let mg = match self.precond {
            PrecondChoice::Jacobi => None,
            PrecondChoice::Auto => {
                MgHierarchy::build(&matrix, MgOptions::default(), stencil.clone())
            }
            PrecondChoice::Multigrid(o) => MgHierarchy::build(&matrix, o, stencil.clone()),
        };
        let mut ctx = SolverContext::new(&matrix);
        ctx.attach_fast_paths(mg.clone(), stencil.clone());
        let solver = TrackedMutex::new("thermal::ThermalModel.solver", ctx);
        Ok(ThermalModel {
            layers: self.layers,
            offsets,
            n_nodes: n,
            matrix,
            conv_ties,
            power_layers,
            capacities,
            cg: self.cg,
            solver,
            stencil,
            mg,
        })
    }
}

impl Drop for ThermalModel {
    fn drop(&mut self) {
        // Models churn per request in the serve path; retire the
        // solver cell so a successor at the reused address starts
        // with a clean epoch history.
        immersion_sanitizer::retire(
            "thermal::ThermalModel.solver",
            immersion_sanitizer::obj_id(self),
        );
    }
}

impl ThermalModel {
    /// Number of thermal nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The layer specs, bottom to top.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Index of the first node of layer `li`.
    pub fn layer_offset(&self, li: usize) -> usize {
        assert!(li < self.offsets.len());
        self.offsets[li]
    }

    /// Index of a layer by name.
    pub fn layer_index(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name == name)
    }

    /// The physical layer index of power layer (die) `pl`.
    pub fn power_layer_physical(&self, pl: usize) -> Option<usize> {
        self.power_layers.get(pl).map(|p| p.layer)
    }

    /// Number of power layers (dies).
    pub fn n_power_layers(&self) -> usize {
        self.power_layers.len()
    }

    /// An all-zero power assignment matching this model's dies.
    pub fn zero_power(&self) -> PowerAssignment {
        PowerAssignment {
            values: self
                .power_layers
                .iter()
                .map(|p| vec![0.0; p.block_names.len()])
                .collect(),
            block_names: self
                .power_layers
                .iter()
                .map(|p| p.block_names.clone())
                .collect(),
        }
    }

    /// Per-node heat capacities (J/K); used by the transient solver.
    pub fn capacities(&self) -> &[f64] {
        &self.capacities
    }

    /// The assembled conductance matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// The convective ties `(node, conductance, ambient)`.
    pub fn conv_ties(&self) -> &[(usize, f64, f64)] {
        &self.conv_ties
    }

    /// The 7-point stencil view of the conductance matrix, when the
    /// grid discretization classified (it does for every model this
    /// builder produces).
    pub fn stencil(&self) -> Option<&StencilMatrix> {
        self.stencil.as_deref()
    }

    /// The multigrid hierarchy preconditioning steady solves, if armed.
    pub fn multigrid(&self) -> Option<&MgHierarchy> {
        self.mg.as_deref()
    }

    /// `"multigrid"` or `"jacobi"` — which preconditioner steady
    /// solves on this model actually use.
    pub fn preconditioner_name(&self) -> &'static str {
        if self.mg.is_some() {
            "multigrid"
        } else {
            "jacobi"
        }
    }

    /// Build the right-hand side `q` for a power assignment.
    pub fn rhs(&self, power: &PowerAssignment) -> Result<Vec<f64>> {
        if power.layers() != self.power_layers.len() {
            return Err(ThermalError::BadParameter(format!(
                "power assignment has {} layers, model has {}",
                power.layers(),
                self.power_layers.len()
            )));
        }
        let mut q = vec![0.0; self.n_nodes];
        for (pl, p) in self.power_layers.iter().enumerate() {
            for (b, cells) in p.raster.iter().enumerate() {
                let w = power.values[pl][b];
                if w.abs() > 0.0 {
                    for &(node, frac) in cells {
                        q[node] += w * frac;
                    }
                }
            }
        }
        for &(node, g, t_amb) in &self.conv_ties {
            q[node] += g * t_amb;
        }
        Ok(q)
    }

    /// Steady-state solve, warm-started from the model's last converged
    /// field when one is cached (repeated solves on the same model —
    /// sweeps, fixpoints — reuse it automatically). First solve falls
    /// back to the ambient guess. Use [`solve_steady_cold`] to force
    /// the ambient start.
    ///
    /// [`solve_steady_cold`]: ThermalModel::solve_steady_cold
    pub fn solve_steady(&self, power: &PowerAssignment) -> Result<Solution<'_>> {
        self.injected_divergence()?;
        let q = self.rhs(power)?;
        let mut ctx = self.take_solver();
        let guess = match ctx.warm_guess() {
            Some(w) => w.to_vec(),
            None => vec![self.mean_ambient(); self.n_nodes],
        };
        let solved = solve_cg_with(&self.matrix, &q, &guess, self.cg, &mut ctx);
        self.put_solver(ctx);
        let (t, iters) = solved?;
        Ok(Solution::new(self, t, iters))
    }

    /// Steady-state solve from the ambient guess, ignoring (but not
    /// discarding) any cached field — the benchmark's cold baseline.
    pub fn solve_steady_cold(&self, power: &PowerAssignment) -> Result<Solution<'_>> {
        let guess = vec![self.mean_ambient(); self.n_nodes];
        self.solve_steady_from(power, &guess)
    }

    /// Steady-state solve warm-started from an explicit `guess` (e.g.
    /// the previous frequency step of a sweep).
    pub fn solve_steady_from(
        &self,
        power: &PowerAssignment,
        guess: &[f64],
    ) -> Result<Solution<'_>> {
        self.injected_divergence()?;
        let q = self.rhs(power)?;
        let mut ctx = self.take_solver();
        let solved = solve_cg_with(&self.matrix, &q, guess, self.cg, &mut ctx);
        self.put_solver(ctx);
        let (t, iters) = solved?;
        Ok(Solution::new(self, t, iters))
    }

    /// Fault-injection hook at the entry of every steady solve: one
    /// disarmed probe per solve (never per CG iteration, so iteration
    /// counts and the bench baseline are untouched). An armed
    /// `Diverge` surfaces as the same [`ThermalError::SolverDiverged`]
    /// a genuine convergence failure produces.
    fn injected_divergence(&self) -> Result<()> {
        if immersion_faultsim::solve_fault(immersion_faultsim::site::THERMAL_CG) {
            return Err(ThermalError::SolverDiverged {
                iterations: 0,
                residual: f64::INFINITY,
            });
        }
        Ok(())
    }

    /// `(solves, total CG iterations)` recorded by the cached solver
    /// context since construction or the last [`reset_solver_state`].
    ///
    /// [`reset_solver_state`]: ThermalModel::reset_solver_state
    pub fn solver_stats(&self) -> (usize, usize) {
        let ctx = self.lock_solver();
        immersion_sanitizer::shared_read(
            "thermal::ThermalModel.solver",
            immersion_sanitizer::obj_id(self),
        );
        (ctx.solves(), ctx.total_iterations())
    }

    /// Drop the cached field so the next [`solve_steady`] cold-starts.
    /// Scratch vectors and the inverse diagonal are kept.
    ///
    /// [`solve_steady`]: ThermalModel::solve_steady
    pub fn reset_solver_state(&self) {
        self.lock_solver().forget_solution();
    }

    /// Move the cached context out of its slot so the solve runs
    /// without holding the lock. A concurrent caller finding the slot
    /// already taken gets a default context, which `solve_cg_with`
    /// transparently rebuilds — correct, just without the warm start.
    fn take_solver(&self) -> SolverContext {
        let mut slot = self.lock_solver();
        immersion_sanitizer::shared_write(
            "thermal::ThermalModel.solver",
            immersion_sanitizer::obj_id(self),
        );
        let mut ctx = std::mem::take(&mut *slot);
        // A default context (concurrent take) has no fast paths; re-arm
        // it so every solve — not just the cached-context one — runs
        // the multigrid/stencil route.
        ctx.attach_fast_paths(self.mg.clone(), self.stencil.clone());
        ctx
    }

    /// Return the context after a solve. If another solve slipped in
    /// meanwhile, keep whichever context has seen more work.
    fn put_solver(&self, ctx: SolverContext) {
        let mut slot = self.lock_solver();
        immersion_sanitizer::shared_write(
            "thermal::ThermalModel.solver",
            immersion_sanitizer::obj_id(self),
        );
        if ctx.solves() >= slot.solves() {
            *slot = ctx;
        }
    }

    fn lock_solver(&self) -> TrackedMutexGuard<'_, SolverContext> {
        self.solver.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mean ambient over the convective ties, used as the cold-start guess.
    pub fn mean_ambient(&self) -> f64 {
        if self.conv_ties.is_empty() {
            return 25.0;
        }
        self.conv_ties.iter().map(|&(_, _, a)| a).sum::<f64>() / self.conv_ties.len() as f64
    }

    /// Rasterised cells of `block` on power layer `pl`.
    pub(crate) fn block_cells(&self, pl: usize, block: &str) -> Option<&[(usize, f64)]> {
        let p = self.power_layers.get(pl)?;
        let b = p.block_names.iter().position(|n| n == block)?;
        Some(&p.raster[b])
    }
}

/// Overlap of two 1-D regular grids: returns `(cell_a, cell_b, overlap_len)`
/// for every pair of cells with positive overlap.
fn overlaps_1d(
    a_org: f64,
    a_len: f64,
    na: usize,
    b_org: f64,
    b_len: f64,
    nb: usize,
) -> Vec<(usize, usize, f64)> {
    let da = a_len / na as f64;
    let db = b_len / nb as f64;
    let mut out = Vec::new();
    for ia in 0..na {
        let a0 = a_org + ia as f64 * da;
        let a1 = a0 + da;
        // Candidate b-cells overlapping [a0, a1).
        let jb0 = (((a0 - b_org) / db).floor() as isize).max(0) as usize;
        if jb0 >= nb {
            continue;
        }
        for ib in jb0..nb {
            let b0 = b_org + ib as f64 * db;
            if b0 >= a1 {
                break;
            }
            let b1 = b0 + db;
            let len = a1.min(b1) - a0.max(b0);
            if len > 1e-15 {
                out.push((ia, ib, len));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::{COPPER, SILICON};
    use immersion_units::{Celsius, HeatTransferCoeff};

    fn conv(layer: usize, surface: Surface, h: f64) -> Convection {
        Convection::simple(
            layer,
            surface,
            HeatTransferCoeff::new(h),
            Celsius::new(25.0),
        )
    }

    fn slab_model(nx: usize, ny: usize, h: f64) -> ThermalModel {
        // A single 10x10 mm silicon slab, 0.5 mm thick, convection on top.
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("ALL", Rect::new(0.0, 0.0, 0.01, 0.01))
            .unwrap();
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new(
            "slab",
            SILICON,
            0.5e-3,
            Rect::new(0.0, 0.0, 0.01, 0.01),
            nx,
            ny,
        ));
        mb.add_convection(conv(l, Surface::Top, h));
        mb.add_power_floorplan(l, fp);
        mb.build().unwrap()
    }

    #[test]
    fn uniform_slab_matches_analytic() {
        let h = 800.0;
        let model = slab_model(8, 8, h);
        let mut p = model.zero_power();
        p.set(0, "ALL", 10.0).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        // Analytic: T = T_amb + P/A * (t/(2k) + 1/h), uniform.
        let area = 1e-4;
        let expected = 25.0 + 10.0 / area * (0.5e-3 / (2.0 * 100.0) + 1.0 / h);
        assert!(
            (sol.max_temp() - expected).abs() < 1e-6,
            "max {} vs analytic {expected}",
            sol.max_temp()
        );
        assert!((sol.min_temp() - expected).abs() < 1e-6);
    }

    #[test]
    fn two_layer_sandwich_matches_analytic() {
        // Power in the bottom layer, convection on the top of the top layer.
        let ext = Rect::new(0.0, 0.0, 0.01, 0.01);
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("ALL", Rect::new(0.0, 0.0, 0.01, 0.01))
            .unwrap();
        let mut mb = ModelBuilder::new();
        let bot = mb.add_layer(LayerSpec::new("bot", SILICON, 0.4e-3, ext, 4, 4));
        let top = mb.add_layer(LayerSpec::new("top", COPPER, 1.0e-3, ext, 4, 4));
        let h = 500.0;
        mb.add_convection(conv(top, Surface::Top, h));
        mb.add_power_floorplan(bot, fp);
        let model = mb.build().unwrap();
        let mut p = model.zero_power();
        p.set(0, "ALL", 20.0).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        let area = 1e-4;
        let (t1, k1) = (0.4e-3, 100.0);
        let (t2, k2) = (1.0e-3, 400.0);
        // bottom node at mid-plane: half bottom + half top (interface) +
        // half top again (to surface) + film.
        let r = t1 / (2.0 * k1) + t2 / (2.0 * k2) + t2 / (2.0 * k2) + 1.0 / h;
        let expected_bot = 25.0 + 20.0 / area * r;
        let got = sol.layer_max(bot);
        assert!(
            (got - expected_bot).abs() / expected_bot < 1e-6,
            "bottom {got} vs analytic {expected_bot}"
        );
    }

    #[test]
    fn energy_is_conserved() {
        let model = slab_model(16, 16, 100.0);
        let mut p = model.zero_power();
        p.set(0, "ALL", 42.0).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        let out: f64 = model
            .conv_ties()
            .iter()
            .map(|&(n, g, amb)| g * (sol.temps()[n] - amb))
            .sum();
        assert!((out - 42.0).abs() < 1e-6, "heat out {out} != 42 in");
    }

    #[test]
    fn hotspot_block_is_hotter_than_cold_block() {
        let ext = Rect::new(0.0, 0.0, 0.01, 0.01);
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("HOT", Rect::new(0.0, 0.0, 0.005, 0.01))
            .unwrap();
        fp.add_block("COLD", Rect::new(0.005, 0.0, 0.005, 0.01))
            .unwrap();
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new("die", SILICON, 0.15e-3, ext, 16, 16));
        mb.add_convection(conv(l, Surface::Top, 800.0));
        mb.add_power_floorplan(l, fp);
        let model = mb.build().unwrap();
        let mut p = model.zero_power();
        p.set(0, "HOT", 30.0).unwrap();
        p.set(0, "COLD", 2.0).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        assert!(sol.block_max(0, "HOT").unwrap() > sol.block_max(0, "COLD").unwrap());
    }

    #[test]
    fn higher_h_means_cooler() {
        let mut temps = Vec::new();
        for h in [14.0, 160.0, 800.0] {
            let model = slab_model(8, 8, h);
            let mut p = model.zero_power();
            p.set(0, "ALL", 10.0).unwrap();
            temps.push(model.solve_steady(&p).unwrap().max_temp());
        }
        assert!(temps[0] > temps[1] && temps[1] > temps[2], "{temps:?}");
    }

    #[test]
    fn different_extent_layers_couple_over_overlap_only() {
        // Small die on a big plate; the plate far from the die must stay
        // cooler than right under the die.
        let die_ext = Rect::new(0.02, 0.02, 0.01, 0.01);
        let plate_ext = Rect::new(0.0, 0.0, 0.05, 0.05);
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("D", Rect::new(0.0, 0.0, 0.01, 0.01)).unwrap();
        let mut mb = ModelBuilder::new();
        let plate = mb.add_layer(LayerSpec::new("plate", COPPER, 2e-3, plate_ext, 20, 20));
        let die = mb.add_layer(LayerSpec::new("die", SILICON, 0.15e-3, die_ext, 8, 8));
        mb.add_convection(conv(plate, Surface::Bottom, 50.0));
        mb.add_power_floorplan(die, fp);
        let model = mb.build().unwrap();
        let mut p = model.zero_power();
        p.set(0, "D", 15.0).unwrap();
        let sol = model.solve_steady(&p).unwrap();
        let map = sol.layer_map(plate);
        // Centre cell (under die) vs corner cell.
        let centre = map[10 * 20 + 10];
        let corner = map[0];
        assert!(centre > corner + 0.5, "centre {centre} corner {corner}");
    }

    #[test]
    fn no_convection_is_rejected() {
        let mut mb = ModelBuilder::new();
        mb.add_layer(LayerSpec::new(
            "slab",
            SILICON,
            1e-3,
            Rect::new(0.0, 0.0, 0.01, 0.01),
            4,
            4,
        ));
        assert!(mb.build().is_err());
    }

    #[test]
    fn mismatched_floorplan_is_rejected() {
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new(
            "die",
            SILICON,
            1e-3,
            Rect::new(0.0, 0.0, 0.01, 0.01),
            4,
            4,
        ));
        mb.add_convection(conv(l, Surface::Top, 100.0));
        let fp = Floorplan::new(0.02, 0.02); // wrong size
        mb.add_power_floorplan(l, fp);
        assert!(mb.build().is_err());
    }

    #[test]
    fn overlaps_1d_identical_grids() {
        let o = overlaps_1d(0.0, 1.0, 4, 0.0, 1.0, 4);
        assert_eq!(o.len(), 4);
        for (i, (a, b, len)) in o.iter().enumerate() {
            assert_eq!(*a, i);
            assert_eq!(*b, i);
            assert!((len - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn overlaps_1d_total_length_is_intersection() {
        let o = overlaps_1d(0.0, 1.0, 7, 0.25, 1.0, 5);
        let total: f64 = o.iter().map(|&(_, _, l)| l).sum();
        assert!((total - 0.75).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn overlaps_1d_disjoint() {
        let o = overlaps_1d(0.0, 1.0, 4, 2.0, 1.0, 4);
        assert!(o.is_empty());
    }

    #[test]
    fn matrix_is_symmetric() {
        let model = slab_model(6, 5, 200.0);
        assert!(model.matrix().is_symmetric(1e-12));
    }

    #[test]
    fn repeated_solves_warm_start_from_the_cached_field() {
        let model = slab_model(24, 24, 500.0);
        let mut p = model.zero_power();
        p.set(0, "ALL", 8.0).unwrap();
        let cold = model.solve_steady(&p).unwrap().iterations();
        let warm = model.solve_steady(&p).unwrap().iterations();
        assert!(warm <= 2, "second identical solve is free, got {warm}");
        assert!(cold > warm);
        let (solves, total) = model.solver_stats();
        assert_eq!(solves, 2);
        assert_eq!(total, cold + warm);
        model.reset_solver_state();
        let recold = model.solve_steady(&p).unwrap().iterations();
        assert_eq!(recold, cold, "reset restores the cold-start behaviour");
    }

    #[test]
    fn warm_and_cold_solves_agree() {
        let model = slab_model(16, 16, 300.0);
        let mut p = model.zero_power();
        p.set(0, "ALL", 5.0).unwrap();
        let first = model.solve_steady(&p).unwrap().into_temps();
        // Perturb the cached field with a different workload, then
        // re-solve the original one warm: same fixed point.
        let mut p2 = model.zero_power();
        p2.set(0, "ALL", 12.0).unwrap();
        model.solve_steady(&p2).unwrap();
        let warm = model.solve_steady(&p).unwrap().into_temps();
        let cold = model.solve_steady_cold(&p).unwrap().into_temps();
        for ((w, c), f) in warm.iter().zip(&cold).zip(&first) {
            assert!((w - c).abs() < 1e-6);
            assert!((w - f).abs() < 1e-6);
        }
    }
}
