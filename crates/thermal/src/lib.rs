//! # immersion-thermal
//!
//! A HotSpot-like 3-D finite-volume thermal solver, written from scratch
//! for the water-immersion reproduction.
//!
//! The original paper uses HotSpot v6.0 (plus the authors' 3-D extension)
//! to compute the steady-state temperature field of 1–15-chip 3-D stacked
//! CMPs under five cooling options. This crate reimplements the parts of
//! that pipeline the paper exercises:
//!
//! * **Floorplans** ([`floorplan`]): named rectangular blocks with per-block
//!   power, rasterised onto a regular grid; 180° rotation ("flip") for the
//!   thermal-aware layout study of §4.2.
//! * **Layer stacks** ([`grid`], [`materials`]): silicon dies, TIM/glue
//!   bonds (with a TSV/TCI metal fraction), heat spreader, finned heatsink,
//!   parylene film, package substrate and PCB — each layer with its own
//!   lateral extent and resolution, coupled through overlap conductances.
//! * **Boundary conditions**: convective (Robin) surfaces with a
//!   per-coolant heat-transfer coefficient `h` — air 14, mineral oil 160,
//!   fluorinert 180, water 800 W/(m²K) — and effective-area multipliers for
//!   finned sinks.
//! * **Solvers** ([`sparse`], [`mg`], [`stencil`], [`steady`],
//!   [`transient`]): a conjugate-gradient solve of the symmetric
//!   positive-definite conductance system for steady state (the paper's
//!   worst-case analysis), preconditioned by an aggregation-multigrid
//!   V-cycle (Jacobi fallback), with a 7-point stencil fast path for
//!   grid-born matvecs, and a backward-Euler integrator for transients.
//! * **Stack builder** ([`stack3d`]): assembles the whole N-chip 3-D CMP
//!   thermal model for a given cooling configuration, including the
//!   dual-path topology (primary path through the sink, secondary path
//!   through the board into the coolant) that full immersion enables.
//!
//! ## Quick example
//!
//! ```
//! use immersion_thermal::floorplan::{Floorplan, Rect};
//! use immersion_thermal::stack3d::{CoolingParams, StackBuilder};
//!
//! // A 10x10 mm die that is one single block...
//! let mut fp = Floorplan::new(0.01, 0.01);
//! fp.add_block("DIE", Rect::new(0.0, 0.0, 0.01, 0.01)).unwrap();
//!
//! // ...stacked two high, immersed in water.
//! let model = StackBuilder::new(fp)
//!     .chips(2)
//!     .grid(16, 16)
//!     .cooling(CoolingParams::water_immersion())
//!     .build()
//!     .unwrap();
//!
//! // 30 W per die, uniformly.
//! let mut power = model.zero_power();
//! power.set(0, "DIE", 30.0).unwrap();
//! power.set(1, "DIE", 30.0).unwrap();
//!
//! let sol = model.solve_steady(&power).unwrap();
//! assert!(sol.max_temp() > 25.0); // warmer than ambient
//! assert!(sol.max_temp() < 80.0); // water keeps 60 W easily in check
//! ```

pub use immersion_units as units;

pub mod floorplan;
pub mod grid;
pub mod hotspot_compat;
pub mod materials;
pub mod mg;
pub mod sparse;
pub mod stack3d;
pub mod steady;
pub mod stencil;
pub mod transient;

pub use floorplan::{Floorplan, Rect};
pub use grid::{LayerSpec, ThermalModel};
pub use mg::{MgOptions, PrecondChoice};
pub use stack3d::{CoolingParams, StackBuilder};
pub use steady::Solution;

/// Errors produced by model construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// A floorplan block falls outside the die outline or has zero area.
    BadBlock(String),
    /// The model references an unknown chip index or block name.
    UnknownBlock(String),
    /// Invalid construction parameter (dimension, resolution, ...).
    BadParameter(String),
    /// The linear solver failed to converge.
    SolverDiverged { iterations: usize, residual: f64 },
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::BadBlock(s) => write!(f, "bad floorplan block: {s}"),
            ThermalError::UnknownBlock(s) => write!(f, "unknown block: {s}"),
            ThermalError::BadParameter(s) => write!(f, "bad parameter: {s}"),
            ThermalError::SolverDiverged {
                iterations,
                residual,
            } => write!(
                f,
                "linear solver failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
        }
    }
}

impl std::error::Error for ThermalError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, ThermalError>;
