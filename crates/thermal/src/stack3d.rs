//! Assembly of complete N-chip 3-D CMP thermal models.
//!
//! This is the reproduction of the paper's experimental setup (§3.2,
//! Table 2): a vertical stack of dies bonded by glue (with a TSV/TCI
//! metal fraction — see DESIGN.md §2 for the calibration note), sitting
//! on a package substrate and PCB, capped by TIM, a copper heat
//! spreader, and either a finned heatsink (air / immersion options) or a
//! closed-loop cold plate (the "water pipe" option).
//!
//! The key physical distinction between the cooling options is the
//! *dual-path* topology:
//!
//! * the **primary path** climbs from the top die through TIM, spreader
//!   and sink into the coolant;
//! * the **secondary path** descends from the bottom die through package
//!   and board — and only full immersion puts coolant (through the
//!   parylene film) on that side too. A closed-loop water pipe has an
//!   excellent primary path but leaves the board in air, which is what
//!   caps its scalability in Figures 7, 8 and 13.

use crate::floorplan::{Floorplan, Rect};
use crate::grid::{Convection, LayerPattern, LayerSpec, ModelBuilder, Surface, ThermalModel};
use crate::materials;
use crate::mg::PrecondChoice;
use crate::sparse::CgOptions;
use crate::{Result, ThermalError};
use immersion_units::{Celsius, HeatTransferCoeff};
use serde::{Deserialize, Serialize};

/// Heat-transfer coefficients used throughout the paper (§3.2).
pub mod htc {
    use immersion_units::HeatTransferCoeff;

    /// Forced air.
    pub const AIR: HeatTransferCoeff = HeatTransferCoeff::new(14.0);
    /// Mineral oil immersion.
    pub const MINERAL_OIL: HeatTransferCoeff = HeatTransferCoeff::new(160.0);
    /// Fluorinert immersion.
    pub const FLUORINERT: HeatTransferCoeff = HeatTransferCoeff::new(180.0);
    /// Water immersion.
    pub const WATER: HeatTransferCoeff = HeatTransferCoeff::new(800.0);
}

/// The primary (top-of-stack) cooling device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrimaryCooling {
    /// Table 2's 12×12×3 cm finned heatsink; `h` is the coolant film
    /// coefficient on the fins, the 0.3024 m² fin area gives the
    /// area multiplier.
    Heatsink {
        /// Coolant heat-transfer coefficient on the fins.
        h: HeatTransferCoeff,
    },
    /// A typical closed-loop liquid CPU cooler: a 6×6 cm microchannel
    /// cold plate; `effective_h` folds the pumped loop and radiator into
    /// one film coefficient on the plate.
    ColdPlate {
        /// Loop-equivalent heat-transfer coefficient.
        effective_h: HeatTransferCoeff,
    },
}

/// A complete cooling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingParams {
    /// Short name for reports ("water", "air", ...).
    pub name: &'static str,
    /// Device on top of the stack.
    pub primary: PrimaryCooling,
    /// Heat-transfer coefficient on the board underside (the secondary
    /// path): the coolant's `h` when the board is immersed, air's
    /// otherwise.
    pub board_h: HeatTransferCoeff,
    /// Parylene film thickness on immersed board surfaces, meters
    /// (`None` for uncoated boards — air, oil, fluorinert, pipe).
    pub film_thickness_m: Option<f64>,
    /// Coolant temperature (Table 2: 25 °C).
    pub ambient: Celsius,
}

impl CoolingParams {
    /// Forced-air cooling (h = 14 W/m²K on sink and board).
    pub fn air() -> Self {
        CoolingParams {
            name: "air",
            primary: PrimaryCooling::Heatsink { h: htc::AIR },
            board_h: htc::AIR,
            film_thickness_m: None,
            ambient: Celsius::new(25.0),
        }
    }

    /// Closed-loop water-pipe (cold plate) cooling; the board stays in air.
    pub fn water_pipe() -> Self {
        CoolingParams {
            name: "water-pipe",
            primary: PrimaryCooling::ColdPlate {
                effective_h: HeatTransferCoeff::new(2800.0),
            },
            board_h: htc::AIR,
            film_thickness_m: None,
            ambient: Celsius::new(25.0),
        }
    }

    /// Mineral-oil immersion (h = 160 W/m²K everywhere).
    pub fn mineral_oil() -> Self {
        CoolingParams {
            name: "mineral-oil",
            primary: PrimaryCooling::Heatsink {
                h: htc::MINERAL_OIL,
            },
            board_h: htc::MINERAL_OIL,
            film_thickness_m: None,
            ambient: Celsius::new(25.0),
        }
    }

    /// Fluorinert immersion (h = 180 W/m²K everywhere).
    pub fn fluorinert() -> Self {
        CoolingParams {
            name: "fluorinert",
            primary: PrimaryCooling::Heatsink { h: htc::FLUORINERT },
            board_h: htc::FLUORINERT,
            film_thickness_m: None,
            ambient: Celsius::new(25.0),
        }
    }

    /// Full water immersion through a 120 µm parylene film (the film on
    /// the heat-spreader surface is broken and replaced by TIM + sink,
    /// §2.1, so the primary path is film-free).
    pub fn water_immersion() -> Self {
        CoolingParams {
            name: "water",
            primary: PrimaryCooling::Heatsink { h: htc::WATER },
            board_h: htc::WATER,
            film_thickness_m: Some(120e-6),
            ambient: Celsius::new(25.0),
        }
    }

    /// Immersion in a custom coolant (for the §4.1 h sweep).
    pub fn custom_immersion(name: &'static str, h: HeatTransferCoeff) -> Self {
        CoolingParams {
            name,
            primary: PrimaryCooling::Heatsink { h },
            board_h: h,
            film_thickness_m: Some(120e-6),
            ambient: Celsius::new(25.0),
        }
    }

    /// The five options of Figures 7/8/17, in the paper's order.
    pub fn paper_options() -> Vec<CoolingParams> {
        vec![
            Self::air(),
            Self::water_pipe(),
            Self::mineral_oil(),
            Self::fluorinert(),
            Self::water_immersion(),
        ]
    }
}

/// Package / board geometry shared by all configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackageParams {
    /// Die thickness, m.
    pub die_thickness_m: f64,
    /// Inter-die bond thickness, m (Table 2: 20 µm).
    pub bond_thickness_m: f64,
    /// Vertical-metal (TSV/TCI) area fraction of the bond. See DESIGN.md.
    pub bond_metal_fraction: f64,
    /// TIM thickness between top die / spreader and spreader / sink, m.
    pub tim_thickness_m: f64,
    /// Heat spreader side, m (Table 2: 6 cm).
    pub spreader_side_m: f64,
    /// Heat spreader thickness, m (Table 2: 1 mm).
    pub spreader_thickness_m: f64,
    /// Heatsink side, m (Table 2: 12 cm).
    pub sink_side_m: f64,
    /// Heatsink thickness, m (Table 2: 3 cm).
    pub sink_thickness_m: f64,
    /// Total convective fin area of the sink, m² (Table 2: 0.3024 m²).
    pub sink_fin_area_m2: f64,
    /// Package substrate side and thickness, m.
    pub substrate_side_m: f64,
    /// Package substrate thickness, m.
    pub substrate_thickness_m: f64,
    /// Board side, m (mini-ITX-ish board).
    pub board_side_m: f64,
    /// Board thickness, m.
    pub board_thickness_m: f64,
    /// Cold-plate thickness when the pipe option replaces the sink, m.
    pub cold_plate_thickness_m: f64,
}

impl Default for PackageParams {
    fn default() -> Self {
        PackageParams {
            die_thickness_m: 0.15e-3,
            bond_thickness_m: 20e-6,
            bond_metal_fraction: 0.02,
            tim_thickness_m: 20e-6,
            spreader_side_m: 0.06,
            spreader_thickness_m: 1.0e-3,
            sink_side_m: 0.12,
            sink_thickness_m: 0.03,
            sink_fin_area_m2: 0.3024,
            substrate_side_m: 0.045,
            substrate_thickness_m: 1.0e-3,
            board_side_m: 0.17,
            board_thickness_m: 1.6e-3,
            cold_plate_thickness_m: 3.0e-3,
        }
    }
}

/// Placement of the bond's vertical metal (TSV/TCI) fill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TsvPlacement {
    /// Metal spread uniformly across the bond (the calibrated default).
    Uniform,
    /// Thermal-TSV clustering: `fraction_under` metal beneath the named
    /// floorplan blocks, `fraction_elsewhere` under the rest — the
    /// placement question of the §5.1-cited 3-D-IC literature.
    UnderBlocks {
        /// Names of the floorplan blocks to cluster metal under.
        blocks: Vec<String>,
        /// Metal area fraction beneath those blocks.
        fraction_under: f64,
        /// Metal area fraction elsewhere.
        fraction_elsewhere: f64,
    },
}

/// Interlayer microchannel cooling (§5.1's related work, modelled for
/// comparison): each inter-die bond layer gains a convective tie to
/// pumped coolant flowing through etched channels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicrochannelParams {
    /// Convective coefficient inside the channels — forced single-phase
    /// water in 100 µm channels reaches 10⁴–10⁵ W/(m²·K).
    pub h: HeatTransferCoeff,
    /// Fraction of the bond area occupied by channels.
    pub coverage: f64,
    /// Coolant inlet temperature.
    pub inlet: Celsius,
}

impl Default for MicrochannelParams {
    fn default() -> Self {
        MicrochannelParams {
            h: HeatTransferCoeff::new(20_000.0),
            coverage: 0.4,
            inlet: Celsius::new(25.0),
        }
    }
}

/// Builder for an N-chip 3-D CMP thermal model.
pub struct StackBuilder {
    floorplan: Floorplan,
    chips: usize,
    grid_nx: usize,
    grid_ny: usize,
    flip_even: bool,
    rotations: Option<Vec<bool>>,
    microchannels: Option<MicrochannelParams>,
    tsv_placement: TsvPlacement,
    cooling: CoolingParams,
    package: PackageParams,
    cg: CgOptions,
    precond: PrecondChoice,
}

/// Indices of the interesting layers of a built stack.
#[derive(Debug, Clone)]
pub struct StackLayout {
    /// Physical layer index of each die, bottom-up.
    pub die_layers: Vec<usize>,
    /// Physical layer index of the spreader.
    pub spreader_layer: usize,
    /// Physical layer index of the sink or cold plate.
    pub sink_layer: usize,
}

impl StackBuilder {
    /// Start building a stack of chips sharing `floorplan`.
    pub fn new(floorplan: Floorplan) -> Self {
        StackBuilder {
            floorplan,
            chips: 1,
            grid_nx: 16,
            grid_ny: 16,
            flip_even: false,
            rotations: None,
            microchannels: None,
            tsv_placement: TsvPlacement::Uniform,
            cooling: CoolingParams::air(),
            package: PackageParams::default(),
            cg: CgOptions::default(),
            precond: PrecondChoice::default(),
        }
    }

    /// Number of stacked chips (1..=15 in the paper).
    pub fn chips(mut self, n: usize) -> Self {
        self.chips = n;
        self
    }

    /// Die grid resolution (default 16×16).
    pub fn grid(mut self, nx: usize, ny: usize) -> Self {
        self.grid_nx = nx;
        self.grid_ny = ny;
        self
    }

    /// Rotate every second chip by 180° — the §4.2 "flip" layout.
    pub fn flip_even_layers(mut self, flip: bool) -> Self {
        self.flip_even = flip;
        self
    }

    /// Explicit per-die rotation pattern (`true` = rotated 180°),
    /// overriding [`StackBuilder::flip_even_layers`]. Used by the
    /// thermal-aware layout optimizer.
    pub fn rotations(mut self, pattern: Vec<bool>) -> Self {
        self.rotations = Some(pattern);
        self
    }

    /// Add interlayer microchannel cooling to every inter-die bond.
    pub fn microchannels(mut self, p: MicrochannelParams) -> Self {
        self.microchannels = Some(p);
        self
    }

    /// Choose where the bond's TSV/TCI metal sits.
    pub fn tsv_placement(mut self, t: TsvPlacement) -> Self {
        self.tsv_placement = t;
        self
    }

    /// Select the cooling configuration.
    pub fn cooling(mut self, c: CoolingParams) -> Self {
        self.cooling = c;
        self
    }

    /// Override package geometry.
    pub fn package(mut self, p: PackageParams) -> Self {
        self.package = p;
        self
    }

    /// Override solver options.
    pub fn cg_options(mut self, o: CgOptions) -> Self {
        self.cg = o;
        self
    }

    /// Choose the steady-solve preconditioner (default
    /// [`PrecondChoice::Auto`]).
    pub fn preconditioner(mut self, p: PrecondChoice) -> Self {
        self.precond = p;
        self
    }

    /// Assemble the thermal model.
    pub fn build(self) -> Result<ThermalModel> {
        Ok(self.build_with_layout()?.0)
    }

    /// Assemble the thermal model and return the layer layout too.
    pub fn build_with_layout(self) -> Result<(ThermalModel, StackLayout)> {
        if self.chips == 0 {
            return Err(ThermalError::BadParameter(
                "stack needs at least 1 chip".into(),
            ));
        }
        let p = &self.package;
        let die_w = self.floorplan.width();
        let die_h = self.floorplan.height();
        let cx = p.board_side_m / 2.0;
        let cy = p.board_side_m / 2.0;
        let centered = |w: f64, h: f64| Rect::new(cx - w / 2.0, cy - h / 2.0, w, h);
        let die_ext = centered(die_w, die_h);
        let bond_mat = materials::bond_material(p.bond_metal_fraction);

        let mut mb = ModelBuilder::new();
        mb.cg_options(self.cg);
        mb.preconditioner(self.precond);

        // Board and package substrate.
        let board = mb.add_layer(LayerSpec::new(
            "board",
            materials::PCB,
            p.board_thickness_m,
            Rect::new(0.0, 0.0, p.board_side_m, p.board_side_m),
            16,
            16,
        ));
        let _substrate = mb.add_layer(LayerSpec::new(
            "substrate",
            materials::PACKAGE_SUBSTRATE,
            p.substrate_thickness_m,
            centered(p.substrate_side_m, p.substrate_side_m),
            12,
            12,
        ));

        // The die stack with bonds (optionally microchannel-cooled).
        let mut die_layers = Vec::with_capacity(self.chips);
        for chip in 0..self.chips {
            if chip > 0 {
                let mut spec = LayerSpec::new(
                    &format!("bond-{chip}"),
                    bond_mat,
                    p.bond_thickness_m,
                    die_ext,
                    self.grid_nx,
                    self.grid_ny,
                );
                if let TsvPlacement::UnderBlocks {
                    blocks,
                    fraction_under,
                    fraction_elsewhere,
                } = &self.tsv_placement
                {
                    // Base bond carries the "elsewhere" fill; pattern
                    // blocks override beneath the chosen units. TSVs are
                    // a physical column: the pattern does not rotate
                    // with flipped dies.
                    spec.material = materials::bond_material(*fraction_elsewhere);
                    let mut pat_fp = Floorplan::new(die_w, die_h);
                    let mut mats = Vec::new();
                    for b in self.floorplan.blocks() {
                        if blocks.iter().any(|n| n == &b.name) {
                            pat_fp.add_block(&b.name, b.rect)?;
                            mats.push(materials::bond_material(*fraction_under));
                        }
                    }
                    spec = spec.with_pattern(LayerPattern {
                        floorplan: pat_fp,
                        materials: mats,
                    });
                }
                let bond = mb.add_layer(spec);
                if let Some(mc) = self.microchannels {
                    mb.add_convection(Convection {
                        layer: bond,
                        surface: Surface::Top,
                        h: mc.h,
                        area_multiplier: mc.coverage,
                        series_resistance_m2_k_per_w: 0.0,
                        ambient: mc.inlet,
                    });
                }
            }
            let li = mb.add_layer(LayerSpec::new(
                &format!("die-{chip}"),
                materials::SILICON,
                p.die_thickness_m,
                die_ext,
                self.grid_nx,
                self.grid_ny,
            ));
            die_layers.push(li);
        }

        // TIM, spreader.
        mb.add_layer(LayerSpec::new(
            "tim-die-spreader",
            materials::TIM,
            p.tim_thickness_m,
            die_ext,
            self.grid_nx,
            self.grid_ny,
        ));
        let spreader_layer = mb.add_layer(LayerSpec::new(
            "spreader",
            materials::COPPER,
            p.spreader_thickness_m,
            centered(p.spreader_side_m, p.spreader_side_m),
            12,
            12,
        ));

        // Primary cooling device.
        let sink_layer = match self.cooling.primary {
            PrimaryCooling::Heatsink { h } => {
                mb.add_layer(LayerSpec::new(
                    "tim-spreader-sink",
                    materials::TIM,
                    p.tim_thickness_m,
                    centered(p.spreader_side_m, p.spreader_side_m),
                    12,
                    12,
                ));
                let sink = mb.add_layer(LayerSpec::new(
                    "heatsink",
                    materials::COPPER,
                    p.sink_thickness_m,
                    centered(p.sink_side_m, p.sink_side_m),
                    12,
                    12,
                ));
                let base_area = p.sink_side_m * p.sink_side_m;
                mb.add_convection(Convection {
                    layer: sink,
                    surface: Surface::Top,
                    h,
                    area_multiplier: p.sink_fin_area_m2 / base_area,
                    series_resistance_m2_k_per_w: 0.0,
                    ambient: self.cooling.ambient,
                });
                sink
            }
            PrimaryCooling::ColdPlate { effective_h } => {
                mb.add_layer(LayerSpec::new(
                    "tim-spreader-plate",
                    materials::TIM,
                    p.tim_thickness_m,
                    centered(p.spreader_side_m, p.spreader_side_m),
                    12,
                    12,
                ));
                let plate = mb.add_layer(LayerSpec::new(
                    "cold-plate",
                    materials::COPPER,
                    p.cold_plate_thickness_m,
                    centered(p.spreader_side_m, p.spreader_side_m),
                    12,
                    12,
                ));
                mb.add_convection(Convection {
                    layer: plate,
                    surface: Surface::Top,
                    h: effective_h,
                    area_multiplier: 1.0,
                    series_resistance_m2_k_per_w: 0.0,
                    ambient: self.cooling.ambient,
                });
                plate
            }
        };

        // Secondary path: the board's underside faces the coolant (or air),
        // through the parylene film when coated. The multiplier of 2 folds
        // in the board's exposed top face.
        let film_r = self.cooling.film_thickness_m.map_or(0.0, |t| {
            materials::PARYLENE
                .conductivity
                .slab_resistance_m2_k_per_w(t)
        });
        mb.add_convection(Convection {
            layer: board,
            surface: Surface::Bottom,
            h: self.cooling.board_h,
            area_multiplier: 2.0,
            series_resistance_m2_k_per_w: film_r,
            ambient: self.cooling.ambient,
        });

        // Power floorplans: one per die; rotation from the explicit
        // pattern when given, else the §4.2 every-second-die flip.
        if let Some(pat) = &self.rotations {
            if pat.len() != self.chips {
                return Err(ThermalError::BadParameter(format!(
                    "rotation pattern has {} entries for {} chips",
                    pat.len(),
                    self.chips
                )));
            }
        }
        for (chip, &li) in die_layers.iter().enumerate() {
            let rotated = match &self.rotations {
                Some(pat) => pat[chip],
                None => self.flip_even && chip % 2 == 1,
            };
            let fp = if rotated {
                self.floorplan.rotate_180()
            } else {
                self.floorplan.clone()
            };
            mb.add_power_floorplan(li, fp);
        }

        let model = mb.build()?;
        Ok((
            model,
            StackLayout {
                die_layers,
                spreader_layer,
                sink_layer,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::baseline_16_tile;

    fn uniform_power(model: &ThermalModel, watts_per_chip: f64) -> crate::grid::PowerAssignment {
        // 16 equal-area blocks per chip in the baseline plan.
        let mut p = model.zero_power();
        p.fill_with(|_, _| watts_per_chip / 16.0);
        p
    }

    #[test]
    fn single_chip_water_cooler_than_air() {
        let fp = baseline_16_tile();
        let mut temps = Vec::new();
        for cooling in [CoolingParams::air(), CoolingParams::water_immersion()] {
            let model = StackBuilder::new(fp.clone())
                .chips(1)
                .grid(8, 8)
                .cooling(cooling)
                .build()
                .unwrap();
            let p = uniform_power(&model, 47.2);
            temps.push(model.solve_steady(&p).unwrap().die_max());
        }
        assert!(
            temps[1] < temps[0],
            "water {} !< air {}",
            temps[1],
            temps[0]
        );
    }

    #[test]
    fn coolant_ordering_matches_paper() {
        // At a fixed 4-chip, fixed-power configuration the die temperature
        // must order air > oil > fluorinert > water (Figures 7/8).
        let fp = baseline_16_tile();
        let mut temps = Vec::new();
        for cooling in [
            CoolingParams::air(),
            CoolingParams::mineral_oil(),
            CoolingParams::fluorinert(),
            CoolingParams::water_immersion(),
        ] {
            let model = StackBuilder::new(fp.clone())
                .chips(4)
                .grid(8, 8)
                .cooling(cooling)
                .build()
                .unwrap();
            let p = uniform_power(&model, 20.0);
            temps.push(model.solve_steady(&p).unwrap().die_max());
        }
        assert!(temps[0] > temps[1], "air > oil: {temps:?}");
        assert!(temps[1] > temps[2], "oil > fluorinert: {temps:?}");
        assert!(temps[2] > temps[3], "fluorinert > water: {temps:?}");
    }

    #[test]
    fn more_chips_run_hotter() {
        let fp = baseline_16_tile();
        let mut prev = 0.0;
        for n in [1usize, 2, 4] {
            let model = StackBuilder::new(fp.clone())
                .chips(n)
                .grid(8, 8)
                .cooling(CoolingParams::water_immersion())
                .build()
                .unwrap();
            let p = uniform_power(&model, 30.0);
            let t = model.solve_steady(&p).unwrap().die_max();
            assert!(t > prev, "{n} chips: {t} !> {prev}");
            prev = t;
        }
    }

    #[test]
    fn bottom_die_hotter_than_top_die() {
        // The sink is on top: layer 1 (bottom) is hottest (Figure 9 text).
        let fp = baseline_16_tile();
        let (model, layout) = StackBuilder::new(fp)
            .chips(4)
            .grid(8, 8)
            .cooling(CoolingParams::water_immersion())
            .build_with_layout()
            .unwrap();
        let p = uniform_power(&model, 30.0);
        let sol = model.solve_steady(&p).unwrap();
        let bottom = sol.layer_max(layout.die_layers[0]);
        let top = sol.layer_max(*layout.die_layers.last().unwrap());
        assert!(bottom > top, "bottom {bottom} !> top {top}");
    }

    #[test]
    fn flip_reduces_peak_temperature() {
        // §4.2: rotating every second chip overlaps hot cores with cool L2.
        let fp = baseline_16_tile();
        let mut temps = Vec::new();
        for flip in [false, true] {
            let model = StackBuilder::new(fp.clone())
                .chips(4)
                .grid(16, 16)
                .flip_even_layers(flip)
                .cooling(CoolingParams::water_immersion())
                .build()
                .unwrap();
            let mut p = model.zero_power();
            // Core-heavy power split: cores 4x the density of L2.
            p.fill_with(|_, name| if name.starts_with("CORE") { 8.0 } else { 1.0 });
            temps.push(model.solve_steady(&p).unwrap().die_max());
        }
        assert!(
            temps[1] < temps[0],
            "flip {} !< no-flip {}",
            temps[1],
            temps[0]
        );
    }

    #[test]
    fn pipe_beats_air_but_immersion_scales_better() {
        // At one chip the cold plate is excellent; at a tall stack the
        // immersion's secondary path wins (the Figure 7/8 crossover).
        let fp = baseline_16_tile();
        let temp = |n: usize, c: CoolingParams| {
            let model = StackBuilder::new(fp.clone())
                .chips(n)
                .grid(8, 8)
                .cooling(c)
                .build()
                .unwrap();
            let p = uniform_power(&model, 25.0);
            model.solve_steady(&p).unwrap().die_max()
        };
        let pipe_1 = temp(1, CoolingParams::water_pipe());
        let air_1 = temp(1, CoolingParams::air());
        assert!(pipe_1 < air_1);
        let pipe_10 = temp(10, CoolingParams::water_pipe());
        let water_10 = temp(10, CoolingParams::water_immersion());
        assert!(water_10 < pipe_10, "water {water_10} !< pipe {pipe_10}");
    }

    #[test]
    fn microchannels_crush_the_stack_gradient() {
        // Interlayer microchannels cool every tier directly; a tall
        // stack that water immersion cannot hold at full power becomes
        // comfortable.
        let fp = baseline_16_tile();
        let temp = |mc: Option<MicrochannelParams>| {
            let mut b = StackBuilder::new(fp.clone())
                .chips(8)
                .grid(8, 8)
                .cooling(CoolingParams::water_immersion());
            if let Some(m) = mc {
                b = b.microchannels(m);
            }
            let model = b.build().unwrap();
            let p = uniform_power(&model, 40.0);
            model.solve_steady(&p).unwrap().die_max()
        };
        let plain = temp(None);
        let micro = temp(Some(MicrochannelParams::default()));
        assert!(
            micro < plain - 20.0,
            "microchannels {micro} C vs immersion {plain} C"
        );
    }

    #[test]
    fn clustered_tsvs_under_cores_beat_uniform_fill() {
        // Same average metal (cores are 4 of 16 equal tiles: 8% under
        // cores == 2% uniform): concentrating the fill beneath the hot
        // band must lower the peak.
        let fp = baseline_16_tile();
        let temp = |placement: TsvPlacement| {
            let model = StackBuilder::new(fp.clone())
                .chips(4)
                .grid(16, 16)
                .cooling(CoolingParams::water_immersion())
                .tsv_placement(placement)
                .build()
                .unwrap();
            let mut p = model.zero_power();
            // Core-heavy power, like the real chips.
            p.fill_with(|_, name| if name.starts_with("CORE") { 10.0 } else { 1.0 });
            model.solve_steady(&p).unwrap().die_max()
        };
        let uniform = temp(TsvPlacement::Uniform);
        let clustered = temp(TsvPlacement::UnderBlocks {
            blocks: (1..=4).map(|i| format!("CORE{i}")).collect(),
            fraction_under: 0.08,
            fraction_elsewhere: 0.0,
        });
        assert!(
            clustered < uniform,
            "clustered {clustered} C !< uniform {uniform} C"
        );
    }

    #[test]
    fn zero_chips_rejected() {
        let fp = baseline_16_tile();
        assert!(StackBuilder::new(fp).chips(0).build().is_err());
    }

    #[test]
    fn layout_indices_are_consistent() {
        let fp = baseline_16_tile();
        let (model, layout) = StackBuilder::new(fp)
            .chips(3)
            .grid(8, 8)
            .cooling(CoolingParams::air())
            .build_with_layout()
            .unwrap();
        assert_eq!(layout.die_layers.len(), 3);
        assert_eq!(model.n_power_layers(), 3);
        for (pl, &li) in layout.die_layers.iter().enumerate() {
            assert_eq!(model.power_layer_physical(pl), Some(li));
        }
        assert!(layout.sink_layer > layout.spreader_layer);
    }
}
