//! HotSpot file-format interoperability.
//!
//! The paper's released artifact is a HotSpot 6.0 extension, and the
//! wider thermal-modelling ecosystem speaks HotSpot's plain-text
//! formats. This module reads and writes the two that matter:
//!
//! * **`.flp` floorplans** — one block per line:
//!   `<name> <width> <height> <left-x> <bottom-y>` (metres), `#`
//!   comments and blank lines ignored;
//! * **`.ptrace` power traces** — a header line of block names followed
//!   by one row of per-block watts per interval.
//!
//! Round-tripping through these formats lets our floorplans be checked
//! against the real HotSpot, and lets HotSpot users bring their
//! floorplans here.

use crate::floorplan::{Floorplan, Rect};
use crate::{Result, ThermalError};

/// Serialise a floorplan as HotSpot `.flp` text.
pub fn to_flp(fp: &Floorplan) -> String {
    let mut out = String::new();
    out.push_str("# Floorplan exported by immersion-thermal\n");
    out.push_str(&format!(
        "# die outline: {:.6e} x {:.6e} m\n",
        fp.width(),
        fp.height()
    ));
    out.push_str("# <unit-name>\t<width>\t<height>\t<left-x>\t<bottom-y>\n");
    for b in fp.blocks() {
        out.push_str(&format!(
            "{}\t{:.6e}\t{:.6e}\t{:.6e}\t{:.6e}\n",
            b.name, b.rect.w, b.rect.h, b.rect.x, b.rect.y
        ));
    }
    out
}

/// Parse a HotSpot `.flp` file. The die outline is the bounding box of
/// the blocks.
pub fn from_flp(text: &str) -> Result<Floorplan> {
    let mut blocks: Vec<(String, Rect)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(ThermalError::BadParameter(format!(
                "flp line {}: expected 5 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let num = |s: &str| -> Result<f64> {
            s.parse::<f64>().map_err(|_| {
                ThermalError::BadParameter(format!("flp line {}: bad number '{s}'", lineno + 1))
            })
        };
        let (w, h, x, y) = (
            num(fields[1])?,
            num(fields[2])?,
            num(fields[3])?,
            num(fields[4])?,
        );
        blocks.push((fields[0].to_string(), Rect::new(x, y, w, h)));
    }
    if blocks.is_empty() {
        return Err(ThermalError::BadParameter("flp: no blocks".into()));
    }
    let die_w = blocks.iter().map(|(_, r)| r.x + r.w).fold(0.0f64, f64::max);
    let die_h = blocks.iter().map(|(_, r)| r.y + r.h).fold(0.0f64, f64::max);
    let mut fp = Floorplan::new(die_w, die_h);
    for (name, rect) in blocks {
        fp.add_block(&name, rect)?;
    }
    Ok(fp)
}

/// Serialise per-block powers (one interval) as HotSpot `.ptrace` text.
/// Block order follows the floorplan.
pub fn to_ptrace(fp: &Floorplan, watts: &[(String, f64)]) -> Result<String> {
    let mut header = Vec::with_capacity(fp.len());
    let mut row = Vec::with_capacity(fp.len());
    for b in fp.blocks() {
        let w = watts
            .iter()
            .find(|(n, _)| n == &b.name)
            .map(|&(_, w)| w)
            .ok_or_else(|| {
                ThermalError::UnknownBlock(format!("ptrace: no power for {}", b.name))
            })?;
        header.push(b.name.clone());
        row.push(format!("{w:.6}"));
    }
    Ok(format!("{}\n{}\n", header.join("\t"), row.join("\t")))
}

/// Parse a HotSpot `.ptrace` file: returns the per-interval rows of
/// `(block, watts)` pairs.
pub fn from_ptrace(text: &str) -> Result<Vec<Vec<(String, f64)>>> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    let header: Vec<String> = lines
        .next()
        .ok_or_else(|| ThermalError::BadParameter("ptrace: empty file".into()))?
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let vals: Vec<&str> = line.split_whitespace().collect();
        if vals.len() != header.len() {
            return Err(ThermalError::BadParameter(format!(
                "ptrace row {}: {} values for {} blocks",
                i + 1,
                vals.len(),
                header.len()
            )));
        }
        let mut row = Vec::with_capacity(header.len());
        for (name, v) in header.iter().zip(vals) {
            let w: f64 = v.parse().map_err(|_| {
                ThermalError::BadParameter(format!("ptrace row {}: bad number '{v}'", i + 1))
            })?;
            row.push((name.clone(), w));
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(ThermalError::BadParameter("ptrace: no data rows".into()));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::baseline_16_tile;

    #[test]
    fn flp_roundtrip_preserves_geometry() {
        let fp = baseline_16_tile();
        let text = to_flp(&fp);
        let back = from_flp(&text).unwrap();
        assert_eq!(back.len(), fp.len());
        assert!((back.width() - fp.width()).abs() < 1e-12);
        for (a, b) in fp.blocks().iter().zip(back.blocks()) {
            assert_eq!(a.name, b.name);
            assert!((a.rect.x - b.rect.x).abs() < 1e-12);
            assert!((a.rect.w - b.rect.w).abs() < 1e-12);
        }
    }

    #[test]
    fn flp_parses_hotspot_style_input() {
        // A fragment in the upstream format (HotSpot's ev6.flp style).
        let text = "\
# comment line
L2_left\t0.004900\t0.006200\t0.000000\t0.009800
L2\t0.016000\t0.009800\t0.000000\t0.000000
Icache\t0.003100\t0.002600\t0.004900\t0.009800
";
        let fp = from_flp(text).unwrap();
        assert_eq!(fp.len(), 3);
        assert!(fp.block("Icache").is_some());
        assert!((fp.width() - 0.016).abs() < 1e-9);
    }

    #[test]
    fn flp_rejects_garbage() {
        assert!(from_flp("").is_err());
        assert!(from_flp("onlyname 1.0 2.0").is_err());
        assert!(from_flp("x a b c d").is_err());
    }

    #[test]
    fn ptrace_roundtrip() {
        let fp = baseline_16_tile();
        let watts: Vec<(String, f64)> = fp
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name.clone(), i as f64 * 0.5 + 1.0))
            .collect();
        let text = to_ptrace(&fp, &watts).unwrap();
        let rows = from_ptrace(&text).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].len(), 16);
        assert_eq!(rows[0][0].0, "CORE1");
        assert!((rows[0][3].1 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn ptrace_multi_interval() {
        let text = "A\tB\n1.0\t2.0\n3.0\t4.0\n";
        let rows = from_ptrace(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][1], ("B".to_string(), 4.0));
    }

    #[test]
    fn ptrace_rejects_ragged_rows() {
        assert!(from_ptrace("A\tB\n1.0\n").is_err());
        assert!(from_ptrace("A\n").is_err());
        assert!(from_ptrace("").is_err());
    }

    #[test]
    fn ptrace_requires_all_blocks() {
        let fp = baseline_16_tile();
        let partial = vec![("CORE1".to_string(), 5.0)];
        assert!(to_ptrace(&fp, &partial).is_err());
    }

    #[test]
    fn exported_flp_feeds_the_stack_builder() {
        // A floorplan that went through the HotSpot format still builds
        // a working thermal model.
        use crate::stack3d::{CoolingParams, StackBuilder};
        let fp = from_flp(&to_flp(&baseline_16_tile())).unwrap();
        let model = StackBuilder::new(fp)
            .chips(2)
            .grid(8, 8)
            .cooling(CoolingParams::water_immersion())
            .build()
            .unwrap();
        let mut p = model.zero_power();
        p.fill_with(|_, _| 1.0);
        assert!(model.solve_steady(&p).unwrap().max_temp() > 25.0);
    }
}
