//! Die floorplans: named rectangular blocks on a die outline.
//!
//! This mirrors HotSpot's `.flp` files. A floorplan carries geometry
//! only; power is assigned separately (a `BTreeMap<block, watts>`-shaped
//! [`grid::PowerAssignment`](crate::grid::PowerAssignment)), exactly like
//! HotSpot's separation between `.flp` and `.ptrace`.

use crate::{Result, ThermalError};
use serde::{Deserialize, Serialize};

const GEOM_EPS: f64 = 1e-12;

/// An axis-aligned rectangle, in meters, with origin at the die's
/// lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (m).
    pub x: f64,
    /// Bottom edge (m).
    pub y: f64,
    /// Width (m).
    pub w: f64,
    /// Height (m).
    pub h: f64,
}

impl Rect {
    /// Construct a rectangle from its lower-left corner and size.
    pub const fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Rect { x, y, w, h }
    }

    /// Area in m².
    #[inline]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Area of the intersection with `other`, in m² (zero if disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let ox = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let oy = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if ox <= 0.0 || oy <= 0.0 {
            0.0
        } else {
            ox * oy
        }
    }

    /// This rectangle rotated 180° about the center of a `(die_w, die_h)`
    /// outline.
    pub fn rotate_180(&self, die_w: f64, die_h: f64) -> Rect {
        Rect {
            x: die_w - self.x - self.w,
            y: die_h - self.y - self.h,
            w: self.w,
            h: self.h,
        }
    }

    /// True if this rectangle lies within the `(die_w, die_h)` outline
    /// (up to floating-point slack).
    pub fn within(&self, die_w: f64, die_h: f64) -> bool {
        self.x >= -GEOM_EPS
            && self.y >= -GEOM_EPS
            && self.x + self.w <= die_w + 1e-9
            && self.y + self.h <= die_h + 1e-9
    }
}

/// A named block of a floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name, e.g. `"CORE1"` or `"L2_3"`.
    pub name: String,
    /// Block outline.
    pub rect: Rect,
}

/// A die floorplan: an outline plus named blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    width: f64,
    height: f64,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// An empty floorplan with the given die outline (meters).
    ///
    /// # Panics
    /// Panics if either dimension is not strictly positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "die outline must have positive area"
        );
        Floorplan {
            width,
            height,
            blocks: Vec::new(),
        }
    }

    /// Die width in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Die area in m².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// The blocks, in insertion order.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the floorplan has no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Add a block. Rejects zero-area rects, rects outside the die
    /// outline, and duplicate names.
    pub fn add_block(&mut self, name: &str, rect: Rect) -> Result<()> {
        if rect.w <= 0.0 || rect.h <= 0.0 {
            return Err(ThermalError::BadBlock(format!("{name}: zero area")));
        }
        if !rect.within(self.width, self.height) {
            return Err(ThermalError::BadBlock(format!(
                "{name}: outside the {}x{} m die outline",
                self.width, self.height
            )));
        }
        if self.blocks.iter().any(|b| b.name == name) {
            return Err(ThermalError::BadBlock(format!("{name}: duplicate name")));
        }
        self.blocks.push(Block {
            name: name.to_string(),
            rect,
        });
        Ok(())
    }

    /// Look up a block by name.
    pub fn block(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Index of a block by name.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Sum of the block areas, in m². For a complete floorplan this
    /// equals [`Floorplan::area`].
    pub fn covered_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.rect.area()).sum()
    }

    /// The floorplan rotated 180° in place on the same outline — the
    /// "flip" transform of the paper's §4.2 (rectangular dies cannot be
    /// stacked after a 90° rotation, so 180° is the rotation studied).
    pub fn rotate_180(&self) -> Floorplan {
        Floorplan {
            width: self.width,
            height: self.height,
            blocks: self
                .blocks
                .iter()
                .map(|b| Block {
                    name: b.name.clone(),
                    rect: b.rect.rotate_180(self.width, self.height),
                })
                .collect(),
        }
    }

    /// Rasterise one block onto an `nx × ny` grid covering the die
    /// outline: returns `(cell_index, fraction_of_block_area_in_cell)`
    /// pairs. The fractions over all cells sum to 1, so distributing a
    /// block's power by these weights conserves it exactly.
    pub fn rasterize_block(&self, block_idx: usize, nx: usize, ny: usize) -> Vec<(usize, f64)> {
        assert!(block_idx < self.blocks.len());
        let b = &self.blocks[block_idx];
        let dx = self.width / nx as f64;
        let dy = self.height / ny as f64;
        let total = b.rect.area();
        let ix0 = ((b.rect.x / dx).floor() as isize).max(0) as usize;
        let ix1 = (((b.rect.x + b.rect.w) / dx).ceil() as usize).min(nx);
        let iy0 = ((b.rect.y / dy).floor() as isize).max(0) as usize;
        let iy1 = (((b.rect.y + b.rect.h) / dy).ceil() as usize).min(ny);
        let mut out = Vec::new();
        for iy in iy0..iy1 {
            for ix in ix0..ix1 {
                let cell = Rect::new(ix as f64 * dx, iy as f64 * dy, dx, dy);
                let a = b.rect.overlap_area(&cell);
                if a > GEOM_EPS * total.max(1e-30) {
                    out.push((iy * nx + ix, a / total));
                }
            }
        }
        out
    }
}

/// Build the paper's 16-tile baseline floorplan: a 13 × 13 mm die
/// (169 mm², Table 1) as a 4×4 tile grid, with the four cores on the
/// bottom row and twelve L2 banks above (Figure 5).
///
/// Block names are `CORE1..CORE4` and `L2_1..L2_12`. Each tile also
/// contains its mesh router; router power is folded into the tile block
/// (McPAT reports NoC power per tile).
pub fn baseline_16_tile() -> Floorplan {
    let die = 0.013; // 13 mm; 169 mm^2
    let tile = die / 4.0;
    let mut fp = Floorplan::new(die, die);
    // The tile rects are compile-time constants checked by this
    // module's tests; a failed insert can only mean a typo here, so a
    // debug assert suffices — no release panic path.
    let mut add = |name: String, rect: Rect| {
        let added = fp.add_block(&name, rect);
        debug_assert!(added.is_ok(), "invalid baseline tile {name}: {added:?}");
    };
    // Bottom row: cores (high power density).
    for c in 0..4 {
        add(
            format!("CORE{}", c + 1),
            Rect::new(c as f64 * tile, 0.0, tile, tile),
        );
    }
    // Remaining 12 tiles: L2 banks, row-major from the second row.
    let mut bank = 1;
    for row in 1..4 {
        for col in 0..4 {
            add(
                format!("L2_{bank}"),
                Rect::new(col as f64 * tile, row as f64 * tile, tile, tile),
            );
            bank += 1;
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_overlap() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn rect_rotation_is_involution() {
        let r = Rect::new(0.001, 0.002, 0.003, 0.004);
        let rr = r.rotate_180(0.013, 0.013).rotate_180(0.013, 0.013);
        assert!((r.x - rr.x).abs() < 1e-15);
        assert!((r.y - rr.y).abs() < 1e-15);
    }

    #[test]
    fn add_block_validation() {
        let mut fp = Floorplan::new(0.01, 0.01);
        assert!(fp.add_block("A", Rect::new(0.0, 0.0, 0.005, 0.005)).is_ok());
        // duplicate name
        assert!(fp
            .add_block("A", Rect::new(0.005, 0.0, 0.005, 0.005))
            .is_err());
        // zero area
        assert!(fp.add_block("B", Rect::new(0.0, 0.0, 0.0, 0.005)).is_err());
        // out of bounds
        assert!(fp
            .add_block("C", Rect::new(0.008, 0.0, 0.005, 0.005))
            .is_err());
    }

    #[test]
    fn baseline_floorplan_tiles() {
        let fp = baseline_16_tile();
        assert_eq!(fp.len(), 16);
        assert!((fp.area() - 169e-6).abs() < 1e-9);
        // Complete tiling: covered area equals die area.
        assert!((fp.covered_area() - fp.area()).abs() < 1e-12);
        // Cores on the bottom row.
        let c1 = fp.block("CORE1").unwrap();
        assert_eq!(c1.rect.y, 0.0);
        let l12 = fp.block("L2_12").unwrap();
        assert!(l12.rect.y > 0.009);
    }

    #[test]
    fn flip_moves_cores_to_top_row() {
        let fp = baseline_16_tile();
        let flipped = fp.rotate_180();
        let c1 = flipped.block("CORE1").unwrap();
        // Bottom row tile (y=0) maps to the top row.
        assert!((c1.rect.y - 3.0 * 0.013 / 4.0).abs() < 1e-12);
        // And flipping twice returns the original.
        let back = flipped.rotate_180();
        for (a, b) in fp.blocks().iter().zip(back.blocks()) {
            assert!((a.rect.x - b.rect.x).abs() < 1e-15);
            assert!((a.rect.y - b.rect.y).abs() < 1e-15);
        }
    }

    #[test]
    fn rasterize_conserves_weight() {
        let fp = baseline_16_tile();
        for (i, _) in fp.blocks().iter().enumerate() {
            for &(nx, ny) in &[(4usize, 4usize), (7, 5), (32, 32)] {
                let w: f64 = fp.rasterize_block(i, nx, ny).iter().map(|(_, f)| f).sum();
                assert!((w - 1.0).abs() < 1e-9, "block {i} grid {nx}x{ny}: {w}");
            }
        }
    }

    #[test]
    fn rasterize_aligned_block_hits_exact_cells() {
        let mut fp = Floorplan::new(1.0, 1.0);
        fp.add_block("Q", Rect::new(0.0, 0.0, 0.5, 0.5)).unwrap();
        // On a 2x2 grid the block covers exactly cell 0.
        let cells = fp.rasterize_block(0, 2, 2);
        assert_eq!(cells, vec![(0, 1.0)]);
    }

    #[test]
    fn block_lookup() {
        let fp = baseline_16_tile();
        assert!(fp.block("CORE3").is_some());
        assert!(fp.block("NOPE").is_none());
        assert_eq!(fp.block_index("CORE1"), Some(0));
    }
}
