//! Minimal sparse linear algebra: CSR matrices and a Jacobi-preconditioned
//! conjugate-gradient solver.
//!
//! The steady-state heat equation discretised by finite volumes yields a
//! symmetric positive-definite conductance matrix `G` (diagonal = sum of
//! incident conductances + convective conductance; off-diagonals =
//! −conductance between neighbouring cells). CG with a Jacobi
//! preconditioner is the textbook solver for such M-matrices and needs
//! only matrix-vector products, which we parallelise with rayon per the
//! hpc-parallel guides.

use crate::{Result, ThermalError};
use rayon::prelude::*;

/// A triplet-form builder for assembling a sparse matrix.
#[derive(Debug, Default, Clone)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletMatrix {
    /// An empty `n × n` builder.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "matrix too large for u32 indices");
        TripletMatrix {
            n,
            entries: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Accumulate a value (a conductance contribution, W/K) into
    /// entry `(i, j)`. Duplicates are summed on conversion to CSR.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value_w_per_k: f64) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        if value_w_per_k.abs() > 0.0 {
            self.entries.push((i as u32, j as u32, value_w_per_k));
        }
    }

    /// Add a symmetric conductance `g` between nodes `i` and `j`:
    /// `+g` on both diagonals, `−g` on both off-diagonals.
    #[inline]
    pub fn add_conductance(&mut self, i: usize, j: usize, g_w_per_k: f64) {
        debug_assert!(i != j, "self-conductance is meaningless");
        self.add(i, i, g_w_per_k);
        self.add(j, j, g_w_per_k);
        self.add(i, j, -g_w_per_k);
        self.add(j, i, -g_w_per_k);
    }

    /// Add a grounded conductance at node `i` (e.g. a convective tie to
    /// the ambient node, which is eliminated onto the right-hand side).
    #[inline]
    pub fn add_grounded(&mut self, i: usize, g_w_per_k: f64) {
        self.add(i, i, g_w_per_k);
    }

    /// Finish assembly: sort, merge duplicates, and build CSR.
    pub fn to_csr(mut self) -> CsrMatrix {
        self.entries
            .sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.entries.len());
        for &(i, j, v) in &self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == i && last.1 == j => last.2 += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.n + 1];
        for &(i, _, _) in &merged {
            row_ptr[i as usize + 1] += 1;
        }
        for r in 0..self.n {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx: merged.iter().map(|e| e.1).collect(),
            values: merged.iter().map(|e| e.2).collect(),
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Read entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i + 1 < self.row_ptr.len());
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterate over the stored `(column, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i + 1 < self.row_ptr.len());
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&j, &v)| (j as usize, v))
    }

    /// The diagonal of the matrix.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// `y = A·x`, parallelised over rows.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        });
    }

    /// Check structural symmetry with value agreement to `tol`
    /// (diagnostic; O(nnz·log) — use in tests, not hot paths).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Options for the CG solve.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance ‖r‖/‖b‖.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Solve `A·x = b` for SPD `A` by Jacobi-preconditioned conjugate
/// gradients, starting from `x0` (pass zeros when no better guess
/// exists — the steady solver passes the previous operating point when
/// sweeping frequencies).
pub fn solve_cg(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: CgOptions,
) -> Result<(Vec<f64>, usize)> {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    let inv_diag: Vec<f64> = a
        .diagonal()
        .iter()
        .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
        .collect();

    let bnorm = l2(b);
    if bnorm <= 0.0 {
        return Ok((vec![0.0; n], 0));
    }

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    a.mul_vec(&x, &mut r);
    r.par_iter_mut()
        .zip(b.par_iter())
        .for_each(|(ri, &bi)| *ri = bi - *ri);

    let mut z: Vec<f64> = r
        .par_iter()
        .zip(inv_diag.par_iter())
        .map(|(&ri, &di)| ri * di)
        .collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..opts.max_iterations {
        let rnorm = l2(&r);
        if rnorm <= opts.tolerance * bnorm {
            return Ok((x, it));
        }
        a.mul_vec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown): fail loudly rather than return junk.
            return Err(ThermalError::SolverDiverged {
                iterations: it,
                residual: rnorm / bnorm,
            });
        }
        let alpha = rz / pap;
        x.par_iter_mut()
            .zip(p.par_iter())
            .for_each(|(xi, &pi)| *xi += alpha * pi);
        r.par_iter_mut()
            .zip(ap.par_iter())
            .for_each(|(ri, &api)| *ri -= alpha * api);
        z.par_iter_mut()
            .zip(r.par_iter().zip(inv_diag.par_iter()))
            .for_each(|(zi, (&ri, &di))| *zi = ri * di);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        p.par_iter_mut()
            .zip(z.par_iter())
            .for_each(|(pi, &zi)| *pi = zi + beta * *pi);
    }

    let rnorm = l2(&r) / bnorm;
    if rnorm <= opts.tolerance * 10.0 {
        // Close enough for reporting purposes; accept with the cap hit.
        Ok((x, opts.max_iterations))
    } else {
        Err(ThermalError::SolverDiverged {
            iterations: opts.max_iterations,
            residual: rnorm,
        })
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum()
}

fn l2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Dirichlet-anchored 1-D Laplacian: SPD tridiagonal.
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn csr_assembly_merges_duplicates() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(0, 1, -1.5);
        t.add(1, 1, 4.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), -1.5);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut t = TripletMatrix::new(4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 1.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 2), 0.0);
        let mut y = vec![0.0; 4];
        a.mul_vec(&[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn add_conductance_is_symmetric_and_zero_rowsum() {
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 1, 2.0);
        t.add_conductance(1, 2, 3.0);
        let a = t.to_csr();
        assert!(a.is_symmetric(1e-12));
        // Row sums are zero for a pure conductance network (no ground).
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| a.get(i, j)).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 5];
        a.mul_vec(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn cg_solves_identity() {
        let mut t = TripletMatrix::new(3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let a = t.to_csr();
        let (x, _) = solve_cg(&a, &[1.0, 2.0, 3.0], &[0.0; 3], CgOptions::default()).unwrap();
        for (xi, bi) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 200;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let (x, iters) = solve_cg(&a, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        // Verify residual directly.
        let mut ax = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-6, "residual {res}, iters {iters}");
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let (x, it) = solve_cg(&a, &[0.0; 10], &[0.0; 10], CgOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(it, 0);
    }

    #[test]
    fn cg_warm_start_converges_faster() {
        let n = 500;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let (x, cold_iters) = solve_cg(&a, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        let (_, warm_iters) = solve_cg(&a, &b, &x, CgOptions::default()).unwrap();
        assert!(warm_iters <= 2, "warm start should finish immediately");
        assert!(cold_iters > warm_iters);
    }

    #[test]
    fn cg_rejects_indefinite() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        let a = t.to_csr();
        let r = solve_cg(&a, &[0.0, 1.0], &[0.0, 0.0], CgOptions::default());
        assert!(r.is_err());
    }
}
