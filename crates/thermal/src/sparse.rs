//! Minimal sparse linear algebra: CSR matrices and a Jacobi-preconditioned
//! conjugate-gradient solver.
//!
//! The steady-state heat equation discretised by finite volumes yields a
//! symmetric positive-definite conductance matrix `G` (diagonal = sum of
//! incident conductances + convective conductance; off-diagonals =
//! −conductance between neighbouring cells). CG with a Jacobi
//! preconditioner is the textbook solver for such M-matrices and needs
//! only matrix-vector products, which we parallelise with rayon per the
//! hpc-parallel guides.

use crate::mg::{MgHierarchy, MgScratch};
use crate::stencil::StencilMatrix;
use crate::{Result, ThermalError};
use rayon::prelude::*;
use std::sync::Arc;

/// A triplet-form builder for assembling a sparse matrix.
#[derive(Debug, Default, Clone)]
pub struct TripletMatrix {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletMatrix {
    /// An empty `n × n` builder.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "matrix too large for u32 indices");
        TripletMatrix {
            n,
            entries: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Accumulate a value (a conductance contribution, W/K) into
    /// entry `(i, j)`. Duplicates are summed on conversion to CSR.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, value_w_per_k: f64) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        if value_w_per_k.abs() > 0.0 {
            self.entries.push((i as u32, j as u32, value_w_per_k));
        }
    }

    /// Add a symmetric conductance `g` between nodes `i` and `j`:
    /// `+g` on both diagonals, `−g` on both off-diagonals.
    #[inline]
    pub fn add_conductance(&mut self, i: usize, j: usize, g_w_per_k: f64) {
        debug_assert!(i != j, "self-conductance is meaningless");
        self.add(i, i, g_w_per_k);
        self.add(j, j, g_w_per_k);
        self.add(i, j, -g_w_per_k);
        self.add(j, i, -g_w_per_k);
    }

    /// Add a grounded conductance at node `i` (e.g. a convective tie to
    /// the ambient node, which is eliminated onto the right-hand side).
    #[inline]
    pub fn add_grounded(&mut self, i: usize, g_w_per_k: f64) {
        self.add(i, i, g_w_per_k);
    }

    /// Finish assembly: sort, merge duplicates, and build CSR.
    pub fn to_csr(mut self) -> CsrMatrix {
        self.entries
            .sort_unstable_by_key(|&(i, j, _)| ((i as u64) << 32) | j as u64);
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.entries.len());
        for &(i, j, v) in &self.entries {
            match merged.last_mut() {
                Some(last) if last.0 == i && last.1 == j => last.2 += v,
                _ => merged.push((i, j, v)),
            }
        }
        let mut row_ptr = vec![0usize; self.n + 1];
        for &(i, _, _) in &merged {
            row_ptr[i as usize + 1] += 1;
        }
        for r in 0..self.n {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx: merged.iter().map(|e| e.1).collect(),
            values: merged.iter().map(|e| e.2).collect(),
        }
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Read entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i + 1 < self.row_ptr.len());
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterate over the stored `(column, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i + 1 < self.row_ptr.len());
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&j, &v)| (j as usize, v))
    }

    /// The diagonal of the matrix.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// `y = A·x`, partitioned by rows across the current thread pool
    /// (each output row is owned by exactly one chunk, so no writes
    /// conflict; the gather from `x` is read-only).
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        });
    }

    /// Sequential reference for [`CsrMatrix::mul_vec`]; the equivalence
    /// tests pin the parallel path against it.
    pub fn mul_vec_seq(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
    }

    /// Check structural symmetry with value agreement to `tol`
    /// (diagnostic; O(nnz·log) — use in tests, not hot paths).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Options for the CG solve.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance ‖r‖/‖b‖.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Reusable per-matrix solver state: the Jacobi inverse diagonal, the
/// four CG scratch vectors, and the last converged solution.
///
/// A context is keyed to one matrix (checked cheaply by `(dim, nnz)`):
/// [`ThermalModel`](crate::grid::ThermalModel) caches one per model so
/// repeated solves reuse the scratch allocations and warm-start from
/// the previous operating point instead of the ambient guess. The only
/// per-solve allocations left are the solution vector itself (owned by
/// the caller) and the guess copy; nothing is allocated per iteration.
#[derive(Debug, Default, Clone)]
pub struct SolverContext {
    /// `(dim, nnz)` of the matrix this state was built for.
    key: (usize, usize),
    inv_diag: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    last_solution: Option<Vec<f64>>,
    solves: usize,
    total_iterations: usize,
    /// Multigrid preconditioner armed for this matrix (shared with the
    /// owning model); used only when its key matches the solve matrix,
    /// so a stale or default context degrades gracefully to Jacobi.
    mg: Option<Arc<MgHierarchy>>,
    /// 7-point stencil fast path for grid-born matvecs (bitwise equal
    /// to the CSR product, so selection does not perturb results).
    stencil: Option<Arc<StencilMatrix>>,
    mg_scratch: MgScratch,
    /// Fixed-chunk partial sums for [`dot_stable`].
    partials: Vec<f64>,
}

impl SolverContext {
    /// A context ready to solve against `a` (inverse diagonal computed,
    /// scratch sized).
    pub fn new(a: &CsrMatrix) -> SolverContext {
        let mut ctx = SolverContext::default();
        ctx.prepare(a);
        ctx
    }

    /// (Re)build the per-matrix state when the context does not match
    /// `a`; a matching context keeps its scratch and warm state.
    fn prepare(&mut self, a: &CsrMatrix) {
        let key = (a.dim(), a.nnz());
        if self.key == key && !self.inv_diag.is_empty() {
            return;
        }
        let n = a.dim();
        self.key = key;
        self.inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
            .collect();
        self.r = vec![0.0; n];
        self.z = vec![0.0; n];
        self.p = vec![0.0; n];
        self.ap = vec![0.0; n];
        self.last_solution = None;
        // Fast paths armed for a different matrix are useless now, but
        // keep any that already match `a` — a freshly taken default
        // context is armed *before* its first prepare, and dropping the
        // hierarchy here would silently fall back to Jacobi.
        if self.mg.as_ref().is_some_and(|m| m.key() != key) {
            self.mg = None;
        }
        if self.stencil.as_ref().is_some_and(|s| s.key() != key) {
            self.stencil = None;
        }
    }

    /// Arm the context with the matrix-specific fast paths: a multigrid
    /// hierarchy to precondition with and/or a stencil matvec. Both are
    /// cheap `Arc` clones shared with the owning model, and both are
    /// ignored (falling back to Jacobi + CSR) whenever their key does
    /// not match the matrix being solved — e.g. on the default context
    /// a concurrent [`take`](crate::grid::ThermalModel) handed out.
    pub fn attach_fast_paths(
        &mut self,
        mg: Option<Arc<MgHierarchy>>,
        stencil: Option<Arc<StencilMatrix>>,
    ) {
        self.mg = mg;
        self.stencil = stencil;
    }

    /// The armed multigrid hierarchy, if any.
    pub fn multigrid(&self) -> Option<&MgHierarchy> {
        self.mg.as_deref()
    }

    /// The last converged solution, if any — the warm-start guess for
    /// the next solve against the same matrix.
    pub fn warm_guess(&self) -> Option<&[f64]> {
        self.last_solution.as_deref()
    }

    /// Record a converged solution and its iteration count.
    fn remember(&mut self, x: &[f64], iterations: usize) {
        self.solves += 1;
        self.total_iterations += iterations;
        match &mut self.last_solution {
            Some(buf) if buf.len() == x.len() => buf.copy_from_slice(x),
            slot => *slot = Some(x.to_vec()),
        }
    }

    /// Drop the warm-start state (the scratch vectors stay); cold
    /// benchmarks call this between solves.
    pub fn forget_solution(&mut self) {
        self.last_solution = None;
    }

    /// Number of successful solves recorded by this context.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Total CG iterations across all recorded solves.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }
}

/// Solve `A·x = b` for SPD `A` by Jacobi-preconditioned conjugate
/// gradients, starting from `x0` (pass the ambient field when no better
/// guess exists; sweeps pass the previous operating point).
///
/// Convenience wrapper building a throwaway [`SolverContext`]; hot
/// paths use [`solve_cg_with`] to amortise it.
pub fn solve_cg(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: CgOptions,
) -> Result<(Vec<f64>, usize)> {
    let mut ctx = SolverContext::new(a);
    solve_cg_with(a, b, x0, opts, &mut ctx)
}

/// [`solve_cg`] against caller-owned solver state: scratch vectors and
/// the inverse diagonal come from `ctx` (rebuilt only when the matrix
/// changed), and a converged solution is recorded there for the next
/// warm start. Only the solution vector is allocated per solve; each
/// iteration is two fused passes plus one SpMV and one dot product.
pub fn solve_cg_with(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: CgOptions,
    ctx: &mut SolverContext,
) -> Result<(Vec<f64>, usize)> {
    let n = a.dim();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    ctx.prepare(a);

    // An armed multigrid hierarchy (key-matched to this matrix) routes
    // to the MG-preconditioned loop; anything else stays on Jacobi.
    let key = (a.dim(), a.nnz());
    if let Some(mg) = ctx.mg.clone().filter(|m| m.key() == key) {
        let stencil = ctx.stencil.clone().filter(|s| s.key() == key);
        return solve_cg_mg(a, &mg, stencil.as_deref(), b, x0, opts, ctx);
    }

    let bnorm = l2(b);
    if bnorm <= 0.0 {
        let x = vec![0.0; n];
        ctx.remember(&x, 0);
        return Ok((x, 0));
    }

    let mut x = x0.to_vec();
    let SolverContext {
        inv_diag,
        r,
        z,
        p,
        ap,
        ..
    } = &mut *ctx;

    a.mul_vec(&x, r);
    // r ← b − A·x fused with z ← D⁻¹r and both residual dot products.
    let (mut rz, mut rr) = fused_residual(r, z, b, inv_diag);
    p.copy_from_slice(z);

    for it in 0..opts.max_iterations {
        if rr.sqrt() <= opts.tolerance * bnorm {
            ctx.remember(&x, it);
            return Ok((x, it));
        }
        a.mul_vec(p, ap);
        let pap = dot(p, ap);
        if pap <= 0.0 {
            // Not SPD (or breakdown): fail loudly rather than return junk.
            return Err(ThermalError::SolverDiverged {
                iterations: it,
                residual: rr.sqrt() / bnorm,
            });
        }
        let alpha = rz / pap;
        let (rz_new, rr_new) = fused_step(&mut x, r, z, p, ap, inv_diag, alpha);
        let beta = rz_new / rz;
        rz = rz_new;
        rr = rr_new;
        // p ← z + β·p.
        p.par_iter_mut()
            .zip(z.par_iter())
            .for_each(|(pi, &zi)| *pi = zi + beta * *pi);
    }

    let rel = rr.sqrt() / bnorm;
    if rel <= opts.tolerance * 10.0 {
        // Close enough for reporting purposes; accept with the cap hit.
        ctx.remember(&x, opts.max_iterations);
        Ok((x, opts.max_iterations))
    } else {
        Err(ThermalError::SolverDiverged {
            iterations: opts.max_iterations,
            residual: rel,
        })
    }
}

/// The MG-preconditioned CG loop. Same convergence semantics as the
/// Jacobi path (relative tolerance against ‖b‖, `pap ≤ 0` fails as
/// diverged, the iteration cap accepts within 10× tolerance), but every
/// reduction goes through [`dot_stable`] and every vector update is
/// elementwise, so — together with the width-invariant V-cycle — a cold
/// MG solve is **bitwise identical across rayon pool widths**, which
/// the Jacobi path's width-chunked reductions are not.
fn solve_cg_mg(
    a: &CsrMatrix,
    mg: &MgHierarchy,
    stencil: Option<&StencilMatrix>,
    b: &[f64],
    x0: &[f64],
    opts: CgOptions,
    ctx: &mut SolverContext,
) -> Result<(Vec<f64>, usize)> {
    let matvec = |v: &[f64], out: &mut [f64]| match stencil {
        Some(st) => st.mul_vec(v, out),
        None => a.mul_vec(v, out),
    };
    let SolverContext {
        r,
        z,
        p,
        ap,
        mg_scratch,
        partials,
        ..
    } = &mut *ctx;

    let bnorm = dot_stable(b, b, partials).sqrt();
    if bnorm <= 0.0 {
        let x = vec![0.0; a.dim()];
        ctx.remember(&x, 0);
        return Ok((x, 0));
    }

    let mut x = x0.to_vec();
    matvec(&x, r);
    r.par_iter_mut()
        .zip(b.par_iter())
        .for_each(|(ri, &bi)| *ri = bi - *ri);
    let mut rr = dot_stable(r, r, partials);
    if rr.sqrt() <= opts.tolerance * bnorm {
        ctx.remember(&x, 0);
        return Ok((x, 0));
    }

    mg.apply(r, z, mg_scratch);
    let mut rz = dot_stable(r, z, partials);
    p.copy_from_slice(z);

    for it in 1..=opts.max_iterations {
        matvec(p, ap);
        let pap = dot_stable(p, ap, partials);
        if pap <= 0.0 {
            return Err(ThermalError::SolverDiverged {
                iterations: it - 1,
                residual: rr.sqrt() / bnorm,
            });
        }
        let alpha = rz / pap;
        x.par_iter_mut()
            .zip(r.par_iter_mut())
            .zip(p.par_iter())
            .zip(ap.par_iter())
            .for_each(|(((xi, ri), &pi), &api)| {
                *xi += alpha * pi;
                *ri -= alpha * api;
            });
        rr = dot_stable(r, r, partials);
        if rr.sqrt() <= opts.tolerance * bnorm {
            ctx.remember(&x, it);
            return Ok((x, it));
        }
        if it == opts.max_iterations {
            break;
        }
        mg.apply(r, z, mg_scratch);
        let rz_new = dot_stable(r, z, partials);
        let beta = rz_new / rz;
        rz = rz_new;
        p.par_iter_mut()
            .zip(z.par_iter())
            .for_each(|(pi, &zi)| *pi = zi + beta * *pi);
    }

    let rel = rr.sqrt() / bnorm;
    if rel <= opts.tolerance * 10.0 {
        ctx.remember(&x, opts.max_iterations);
        Ok((x, opts.max_iterations))
    } else {
        Err(ThermalError::SolverDiverged {
            iterations: opts.max_iterations,
            residual: rel,
        })
    }
}

/// Fused CG setup pass: `r ← b − r` (with `r` holding `A·x` on entry)
/// and `z ← D⁻¹∘r` in one sweep, returning `(r·z, r·r)`.
///
/// All slices must share one length. One memory pass instead of four
/// (subtract, precondition, two dots).
pub fn fused_residual(r: &mut [f64], z: &mut [f64], b: &[f64], inv_diag: &[f64]) -> (f64, f64) {
    assert_eq!(r.len(), b.len());
    assert_eq!(z.len(), b.len());
    assert_eq!(inv_diag.len(), b.len());
    r.par_iter_mut()
        .zip(z.par_iter_mut())
        .zip(b.par_iter())
        .zip(inv_diag.par_iter())
        .map(|(((ri, zi), &bi), &di)| {
            *ri = bi - *ri;
            *zi = *ri * di;
            (*ri * *zi, *ri * *ri)
        })
        .reduce(|| (0.0, 0.0), |s, t| (s.0 + t.0, s.1 + t.1))
}

/// Sequential reference for [`fused_residual`].
pub fn fused_residual_seq(r: &mut [f64], z: &mut [f64], b: &[f64], inv_diag: &[f64]) -> (f64, f64) {
    assert_eq!(r.len(), b.len());
    assert_eq!(z.len(), b.len());
    assert_eq!(inv_diag.len(), b.len());
    let (mut rz, mut rr) = (0.0, 0.0);
    for i in 0..b.len() {
        r[i] = b[i] - r[i];
        z[i] = r[i] * inv_diag[i];
        rz += r[i] * z[i];
        rr += r[i] * r[i];
    }
    (rz, rr)
}

/// Fused CG update pass: `x += α·p`, `r −= α·ap`, `z ← D⁻¹∘r` in one
/// sweep, returning the updated `(r·z, r·r)`.
///
/// All slices must share one length. Replaces three axpy-style passes
/// plus two dot products with a single traversal, which matters because
/// steady-state CG is memory-bound.
pub fn fused_step(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
) -> (f64, f64) {
    assert_eq!(r.len(), x.len());
    assert_eq!(z.len(), x.len());
    assert_eq!(p.len(), x.len());
    assert_eq!(ap.len(), x.len());
    assert_eq!(inv_diag.len(), x.len());
    x.par_iter_mut()
        .zip(r.par_iter_mut())
        .zip(z.par_iter_mut())
        .zip(p.par_iter())
        .zip(ap.par_iter())
        .zip(inv_diag.par_iter())
        .map(|(((((xi, ri), zi), &pi), &api), &di)| {
            *xi += alpha * pi;
            *ri -= alpha * api;
            *zi = *ri * di;
            (*ri * *zi, *ri * *ri)
        })
        .reduce(|| (0.0, 0.0), |s, t| (s.0 + t.0, s.1 + t.1))
}

/// Sequential reference for [`fused_step`].
#[allow(clippy::too_many_arguments)]
pub fn fused_step_seq(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
) -> (f64, f64) {
    assert_eq!(r.len(), x.len());
    assert_eq!(z.len(), x.len());
    assert_eq!(p.len(), x.len());
    assert_eq!(ap.len(), x.len());
    assert_eq!(inv_diag.len(), x.len());
    let (mut rz, mut rr) = (0.0, 0.0);
    for i in 0..x.len() {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
        z[i] = r[i] * inv_diag[i];
        rz += r[i] * z[i];
        rr += r[i] * r[i];
    }
    (rz, rr)
}

/// Dot product with deterministic chunked accumulation (partials are
/// combined in chunk order for a fixed thread count).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x * y).sum()
}

/// Sequential reference for [`dot`].
pub fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn l2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Chunk width for [`dot_stable`]: fixed, so the partial-sum pattern —
/// and hence the floating-point result — does not depend on how many
/// rayon workers execute the chunks.
const STABLE_CHUNK: usize = 1024;

/// Dot product that is **bitwise deterministic across thread pool
/// widths**: the vectors are cut into fixed [`STABLE_CHUNK`]-element
/// chunks, each chunk is summed sequentially into its own slot of
/// `partials` (any worker may compute any chunk — the result is the
/// same), and the per-chunk sums are combined sequentially in chunk
/// order. [`dot`] is cheaper but splits at width-dependent boundaries;
/// the MG solve path pays the small fixed cost for reproducibility.
pub fn dot_stable(a: &[f64], b: &[f64], partials: &mut Vec<f64>) -> f64 {
    assert_eq!(a.len(), b.len());
    let n_chunks = a.len().div_ceil(STABLE_CHUNK).max(1);
    partials.clear();
    partials.resize(n_chunks, 0.0);
    partials.par_iter_mut().enumerate().for_each(|(c, out)| {
        let lo = c * STABLE_CHUNK;
        let hi = ((c + 1) * STABLE_CHUNK).min(a.len());
        let mut acc = 0.0;
        for i in lo..hi {
            acc += a[i] * b[i];
        }
        *out = acc;
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Dirichlet-anchored 1-D Laplacian: SPD tridiagonal.
        let mut t = TripletMatrix::new(n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                t.add(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn csr_assembly_merges_duplicates() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.0);
        t.add(0, 1, -1.5);
        t.add(1, 1, 4.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(0, 1), -1.5);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(1, 1), 4.0);
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut t = TripletMatrix::new(4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 1.0);
        let a = t.to_csr();
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 2), 0.0);
        let mut y = vec![0.0; 4];
        a.mul_vec(&[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn add_conductance_is_symmetric_and_zero_rowsum() {
        let mut t = TripletMatrix::new(3);
        t.add_conductance(0, 1, 2.0);
        t.add_conductance(1, 2, 3.0);
        let a = t.to_csr();
        assert!(a.is_symmetric(1e-12));
        // Row sums are zero for a pure conductance network (no ground).
        for i in 0..3 {
            let s: f64 = (0..3).map(|j| a.get(i, j)).sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_1d(5);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 5];
        a.mul_vec(&x, &mut y);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 0.0, 6.0]);
    }

    #[test]
    fn cg_solves_identity() {
        let mut t = TripletMatrix::new(3);
        for i in 0..3 {
            t.add(i, i, 1.0);
        }
        let a = t.to_csr();
        let (x, _) = solve_cg(&a, &[1.0, 2.0, 3.0], &[0.0; 3], CgOptions::default()).unwrap();
        for (xi, bi) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 200;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let (x, iters) = solve_cg(&a, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        // Verify residual directly.
        let mut ax = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-6, "residual {res}, iters {iters}");
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let (x, it) = solve_cg(&a, &[0.0; 10], &[0.0; 10], CgOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(it, 0);
    }

    #[test]
    fn cg_warm_start_converges_faster() {
        let n = 500;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let (x, cold_iters) = solve_cg(&a, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        let (_, warm_iters) = solve_cg(&a, &b, &x, CgOptions::default()).unwrap();
        assert!(warm_iters <= 2, "warm start should finish immediately");
        assert!(cold_iters > warm_iters);
    }

    #[test]
    fn cg_rejects_indefinite() {
        let mut t = TripletMatrix::new(2);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        let a = t.to_csr();
        let r = solve_cg(&a, &[0.0, 1.0], &[0.0, 0.0], CgOptions::default());
        assert!(r.is_err());
    }

    #[test]
    fn solver_context_warm_guess_cuts_iterations() {
        let n = 500;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let mut ctx = SolverContext::new(&a);
        assert!(ctx.warm_guess().is_none());
        let (_, cold) =
            solve_cg_with(&a, &b, &vec![0.0; n], CgOptions::default(), &mut ctx).unwrap();
        let guess = ctx.warm_guess().unwrap().to_vec();
        let (_, warm) = solve_cg_with(&a, &b, &guess, CgOptions::default(), &mut ctx).unwrap();
        assert!(warm <= 2, "re-solving from the cached field is free");
        assert!(cold > warm);
        assert_eq!(ctx.solves(), 2);
        assert_eq!(ctx.total_iterations(), cold + warm);
    }

    #[test]
    fn solver_context_rebuilds_when_matrix_changes() {
        let a = laplacian_1d(40);
        let b40 = vec![1.0; 40];
        let mut ctx = SolverContext::new(&a);
        solve_cg_with(&a, &b40, &vec![0.0; 40], CgOptions::default(), &mut ctx).unwrap();
        assert!(ctx.warm_guess().is_some());
        // A different matrix invalidates the cached state but must still
        // solve correctly through the same context.
        let a2 = laplacian_1d(60);
        let b60 = vec![1.0; 60];
        let (x, _) =
            solve_cg_with(&a2, &b60, &vec![0.0; 60], CgOptions::default(), &mut ctx).unwrap();
        let mut ax = vec![0.0; 60];
        a2.mul_vec(&x, &mut ax);
        for (axi, bi) in ax.iter().zip(&b60) {
            assert!((axi - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn forget_solution_clears_only_the_warm_state() {
        let a = laplacian_1d(50);
        let b = vec![1.0; 50];
        let mut ctx = SolverContext::new(&a);
        solve_cg_with(&a, &b, &vec![0.0; 50], CgOptions::default(), &mut ctx).unwrap();
        let solves = ctx.solves();
        ctx.forget_solution();
        assert!(ctx.warm_guess().is_none());
        assert_eq!(ctx.solves(), solves, "stats survive a forget");
    }

    #[test]
    fn fused_kernels_match_sequential_references() {
        let n = 257;
        let a = laplacian_1d(n);
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ax: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();

        let (mut r1, mut z1) = (ax.clone(), vec![0.0; n]);
        let (mut r2, mut z2) = (ax.clone(), vec![0.0; n]);
        let s1 = fused_residual(&mut r1, &mut z1, &b, &inv_diag);
        let s2 = fused_residual_seq(&mut r2, &mut z2, &b, &inv_diag);
        assert!((s1.0 - s2.0).abs() <= 1e-12 * s2.0.abs().max(1.0));
        assert!((s1.1 - s2.1).abs() <= 1e-12 * s2.1.abs().max(1.0));
        assert_eq!(r1, r2);
        assert_eq!(z1, z2);

        let p: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut ap = vec![0.0; n];
        a.mul_vec(&p, &mut ap);
        let (mut x1, mut x2) = (b.clone(), b.clone());
        let t1 = fused_step(&mut x1, &mut r1, &mut z1, &p, &ap, &inv_diag, 0.375);
        let t2 = fused_step_seq(&mut x2, &mut r2, &mut z2, &p, &ap, &inv_diag, 0.375);
        assert!((t1.0 - t2.0).abs() <= 1e-12 * t2.0.abs().max(1.0));
        assert!((t1.1 - t2.1).abs() <= 1e-12 * t2.1.abs().max(1.0));
        assert_eq!(x1, x2);
        assert_eq!(r1, r2);
        assert_eq!(z1, z2);
    }
}
