//! Steady-state solution: temperature field queries and thermal maps.

use crate::grid::ThermalModel;
use serde::Serialize;

/// A steady-state (or one transient snapshot) temperature field, °C.
pub struct Solution<'m> {
    model: &'m ThermalModel,
    temps: Vec<f64>,
    iterations: usize,
}

impl<'m> Solution<'m> {
    pub(crate) fn new(model: &'m ThermalModel, temps: Vec<f64>, iterations: usize) -> Self {
        Solution {
            model,
            temps,
            iterations,
        }
    }

    /// The raw per-node temperatures.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Take ownership of the per-node temperatures (e.g. as the initial
    /// state of a transient run or the warm start of the next solve).
    pub fn into_temps(self) -> Vec<f64> {
        self.temps
    }

    /// CG iterations the solve took.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Hottest node anywhere in the model.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest node anywhere in the model.
    pub fn min_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Hottest node within physical layer `li`.
    pub fn layer_max(&self, li: usize) -> f64 {
        assert!(li < self.model.layers().len());
        let off = self.model.layer_offset(li);
        let n = self.model.layers()[li].nx * self.model.layers()[li].ny;
        self.temps[off..off + n]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Hottest node across all *die* (power) layers — the quantity the
    /// paper compares against the temperature threshold.
    pub fn die_max(&self) -> f64 {
        (0..self.model.n_power_layers())
            .filter_map(|pl| self.model.power_layer_physical(pl))
            .map(|li| self.layer_max(li))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The temperature field of physical layer `li`, row-major
    /// (`ny` rows × `nx` columns).
    pub fn layer_map(&self, li: usize) -> Vec<f64> {
        assert!(li < self.model.layers().len());
        let l = &self.model.layers()[li];
        let off = self.model.layer_offset(li);
        self.temps[off..off + l.nx * l.ny].to_vec()
    }

    /// The thermal map of power layer (die) `pl`, as a [`ThermalMap`].
    pub fn die_map(&self, pl: usize) -> Option<ThermalMap> {
        let li = self.model.power_layer_physical(pl)?;
        let l = &self.model.layers()[li];
        Some(ThermalMap {
            name: l.name.clone(),
            nx: l.nx,
            ny: l.ny,
            temps: self.layer_map(li),
        })
    }

    /// Area-weighted maximum temperature of one floorplan block on die
    /// `pl` (`None` if the block is unknown).
    pub fn block_max(&self, pl: usize, block: &str) -> Option<f64> {
        let cells = self.model.block_cells(pl, block)?;
        cells
            .iter()
            .map(|&(n, _)| self.temps[n])
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }

    /// Area-weighted mean temperature of one floorplan block on die `pl`.
    pub fn block_mean(&self, pl: usize, block: &str) -> Option<f64> {
        let cells = self.model.block_cells(pl, block)?;
        let (mut num, mut den) = (0.0, 0.0);
        for &(n, w) in cells {
            num += self.temps[n] * w;
            den += w;
        }
        (den > 0.0).then(|| num / den)
    }
}

/// A rectangular per-die temperature map, ready to print or serialise —
/// the reproduction of the paper's Figures 9, 16 and 18.
#[derive(Debug, Clone, Serialize)]
pub struct ThermalMap {
    /// Layer name.
    pub name: String,
    /// Columns.
    pub nx: usize,
    /// Rows.
    pub ny: usize,
    /// Row-major temperatures, °C.
    pub temps: Vec<f64>,
}

impl ThermalMap {
    /// Hottest cell.
    pub fn max(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell.
    pub fn min(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Temperature at `(ix, iy)`.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.nx && iy < self.ny);
        self.temps[iy * self.nx + ix]
    }

    /// Render as coarse ASCII art (one char per cell, ten shades from
    /// the map's own min to max), matching the paper's "colour scales
    /// are not the same" convention.
    pub fn ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let (lo, hi) = (self.min(), self.max());
        let span = (hi - lo).max(1e-9);
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        // Print top row (largest y) first so the map reads like the figure.
        for iy in (0..self.ny).rev() {
            for ix in 0..self.nx {
                let t = (self.at(ix, iy) - lo) / span;
                let idx = ((t * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Floorplan, Rect};
    use crate::grid::{Convection, LayerSpec, ModelBuilder, Surface};
    use crate::materials::SILICON;
    use immersion_units::{Celsius, HeatTransferCoeff};

    fn model() -> ThermalModel {
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("HOT", Rect::new(0.0, 0.0, 0.005, 0.01))
            .unwrap();
        fp.add_block("COLD", Rect::new(0.005, 0.0, 0.005, 0.01))
            .unwrap();
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new(
            "die",
            SILICON,
            0.15e-3,
            Rect::new(0.0, 0.0, 0.01, 0.01),
            8,
            8,
        ));
        mb.add_convection(Convection::simple(
            l,
            Surface::Top,
            HeatTransferCoeff::new(200.0),
            Celsius::new(25.0),
        ));
        mb.add_power_floorplan(l, fp);
        mb.build().unwrap()
    }

    #[test]
    fn block_queries() {
        let m = model();
        let mut p = m.zero_power();
        p.set(0, "HOT", 20.0).unwrap();
        p.set(0, "COLD", 1.0).unwrap();
        let s = m.solve_steady(&p).unwrap();
        assert!(s.block_mean(0, "HOT").unwrap() > s.block_mean(0, "COLD").unwrap());
        assert!(s.block_max(0, "HOT").unwrap() >= s.block_mean(0, "HOT").unwrap());
        assert!(s.block_max(0, "MISSING").is_none());
        assert!(s.die_max() <= s.max_temp() + 1e-12);
    }

    #[test]
    fn thermal_map_geometry() {
        let m = model();
        let mut p = m.zero_power();
        p.set(0, "HOT", 20.0).unwrap();
        let s = m.solve_steady(&p).unwrap();
        let map = s.die_map(0).unwrap();
        assert_eq!(map.nx, 8);
        assert_eq!(map.ny, 8);
        assert_eq!(map.temps.len(), 64);
        // Hot block is the left half: left column hotter than right column.
        assert!(map.at(0, 4) > map.at(7, 4));
        let art = map.ascii();
        assert_eq!(art.lines().count(), 8);
        assert!(art.lines().all(|l| l.chars().count() == 8));
    }

    #[test]
    fn map_min_max_bound_cells() {
        let m = model();
        let mut p = m.zero_power();
        p.set(0, "HOT", 5.0).unwrap();
        let s = m.solve_steady(&p).unwrap();
        let map = s.die_map(0).unwrap();
        for &t in &map.temps {
            assert!(t >= map.min() && t <= map.max());
        }
    }
}
