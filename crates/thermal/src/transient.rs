//! Transient thermal integration (backward Euler).
//!
//! The paper's analysis is deliberately worst-case steady state (§3.2),
//! but §5 points at dynamic thermal management (DTM) as the natural
//! companion, and DTM evaluation needs transient temperature
//! distributions. This module provides them: implicit (unconditionally
//! stable) time stepping of `C·dT/dt = q − G·T`.
//!
//! Each backward-Euler step solves `(C/Δt + G)·T' = C/Δt·T + q`, an SPD
//! system handled by the same CG solver as the steady state.

use crate::grid::{PowerAssignment, ThermalModel};
use crate::sparse::{solve_cg, CgOptions, CsrMatrix, TripletMatrix};
use crate::Result;

/// A transient integrator bound to one model and one step size.
pub struct TransientSolver<'m> {
    model: &'m ThermalModel,
    /// `C/Δt + G`.
    system: CsrMatrix,
    /// `C/Δt` per node.
    c_over_dt: Vec<f64>,
    dt: f64,
    temps: Vec<f64>,
    time: f64,
    cg: CgOptions,
}

impl<'m> TransientSolver<'m> {
    /// Create an integrator with step `dt_secs` seconds, starting from
    /// a uniform ambient-temperature field.
    pub fn new(model: &'m ThermalModel, dt_secs: f64) -> Self {
        Self::with_initial(model, dt_secs, vec![model.mean_ambient(); model.n_nodes()])
    }

    /// Create an integrator starting from an explicit temperature field
    /// (e.g. a previous steady state).
    pub fn with_initial(model: &'m ThermalModel, dt_secs: f64, initial: Vec<f64>) -> Self {
        let dt = dt_secs;
        assert!(dt > 0.0, "time step must be positive");
        assert_eq!(initial.len(), model.n_nodes());
        let n = model.n_nodes();
        let c_over_dt: Vec<f64> = model.capacities().iter().map(|&c| c / dt).collect();
        // system = G + diag(C/dt). Rebuild via triplets on top of G's entries.
        let g = model.matrix();
        let mut trip = TripletMatrix::new(n);
        for (i, &c) in c_over_dt.iter().enumerate() {
            trip.add(i, i, c);
        }
        // Copy G by probing rows (CSR exposes get; cheaper: use mul on unit
        // vectors would be O(n^2) — instead re-add via raw iteration).
        for i in 0..n {
            for (j, v) in g.row(i) {
                trip.add(i, j, v);
            }
        }
        TransientSolver {
            model,
            system: trip.to_csr(),
            c_over_dt,
            dt,
            temps: initial,
            time: 0.0,
            cg: CgOptions::default(),
        }
    }

    /// The simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The step size, seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Current temperature field.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Hottest node right now.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Advance one step under the given power assignment.
    pub fn step(&mut self, power: &PowerAssignment) -> Result<()> {
        let mut rhs = self.model.rhs(power)?;
        for ((r, &c), &t) in rhs.iter_mut().zip(&self.c_over_dt).zip(&self.temps) {
            *r += c * t;
        }
        let (t, _) = solve_cg(&self.system, &rhs, &self.temps, self.cg)?;
        self.temps = t;
        self.time += self.dt;
        Ok(())
    }

    /// Advance `n` steps under constant power; returns the max-temp
    /// trajectory (one sample per step).
    pub fn run(&mut self, power: &PowerAssignment, n: usize) -> Result<Vec<f64>> {
        let mut traj = Vec::with_capacity(n);
        for _ in 0..n {
            self.step(power)?;
            traj.push(self.max_temp());
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::{Floorplan, Rect};
    use crate::grid::{Convection, LayerSpec, ModelBuilder, Surface};
    use crate::materials::SILICON;
    use immersion_units::{Celsius, HeatTransferCoeff};

    fn slab() -> ThermalModel {
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("ALL", Rect::new(0.0, 0.0, 0.01, 0.01))
            .unwrap();
        let mut mb = ModelBuilder::new();
        let l = mb.add_layer(LayerSpec::new(
            "die",
            SILICON,
            0.5e-3,
            Rect::new(0.0, 0.0, 0.01, 0.01),
            6,
            6,
        ));
        mb.add_convection(Convection::simple(
            l,
            Surface::Top,
            HeatTransferCoeff::new(300.0),
            Celsius::new(25.0),
        ));
        mb.add_power_floorplan(l, fp);
        mb.build().unwrap()
    }

    #[test]
    fn warms_monotonically_towards_steady_state() {
        let m = slab();
        let mut p = m.zero_power();
        p.set(0, "ALL", 10.0).unwrap();
        let steady = m.solve_steady(&p).unwrap().max_temp();

        // Slab time constant ~3 s; run ~30 constants to settle.
        let mut ts = TransientSolver::new(&m, 0.5);
        let traj = ts.run(&p, 200).unwrap();
        for w in traj.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "heating must be monotone");
        }
        // Never overshoots and converges to the steady state.
        assert!(traj.iter().all(|&t| t <= steady + 1e-6));
        let last = *traj.last().unwrap();
        assert!(
            (steady - last).abs() < 0.05,
            "final {last} vs steady {steady}"
        );
    }

    #[test]
    fn cools_back_to_ambient_when_power_removed() {
        let m = slab();
        let mut p = m.zero_power();
        p.set(0, "ALL", 10.0).unwrap();
        let hot = m.solve_steady(&p).unwrap().into_temps();
        let zero = m.zero_power();
        let mut ts = TransientSolver::with_initial(&m, 0.5, hot);
        let traj = ts.run(&zero, 200).unwrap();
        assert!(*traj.last().unwrap() < 25.5, "should cool to ~25: {traj:?}");
    }

    #[test]
    fn time_advances() {
        let m = slab();
        let p = m.zero_power();
        let mut ts = TransientSolver::new(&m, 0.01);
        ts.step(&p).unwrap();
        ts.step(&p).unwrap();
        assert!((ts.time() - 0.02).abs() < 1e-12);
        assert_eq!(ts.dt(), 0.01);
    }

    #[test]
    fn large_step_equals_steady_state() {
        // With an enormous dt, one backward-Euler step lands on steady state.
        let m = slab();
        let mut p = m.zero_power();
        p.set(0, "ALL", 10.0).unwrap();
        let steady = m.solve_steady(&p).unwrap().max_temp();
        let mut ts = TransientSolver::new(&m, 1e9);
        ts.step(&p).unwrap();
        assert!((ts.max_temp() - steady).abs() < 1e-3);
    }
}
