//! Structured-grid stencil kernels for grid-born conductance matrices.
//!
//! The finite-volume assembly in [`crate::grid`] produces a matrix with
//! a rigid structure: inside each layer every cell couples only to its
//! four lateral neighbours (a 5-point stencil with the layer's own
//! stride), and across layers only to overlap partners in earlier
//! ("down") or later ("up") layers. [`StencilMatrix`] re-lays the CSR
//! data out along those roles — five dense per-row coefficient arrays
//! for the lateral stencil plus two small CSR remainders for the
//! vertical couplings — so the matvec walks contiguous arrays with
//! branch-predictable bounds checks instead of chasing generic column
//! indices.
//!
//! The accumulation order per row (down, south, west, diagonal, east,
//! north, up) is exactly the ascending-column order of the CSR row, so
//! [`StencilMatrix::mul_vec`] is **bitwise identical** to
//! [`CsrMatrix::mul_vec`] — the solver can switch paths without
//! perturbing a single bit of any solve. Classification is purely
//! geometric; any stored entry that does not fit the stencil roles
//! makes [`StencilMatrix::from_csr`] return `None` and the caller falls
//! back to the generic CSR path.

use crate::sparse::CsrMatrix;
use rayon::prelude::*;

/// The lateral shape of a layered grid discretization: per-layer
/// `nx × ny` resolutions and the node offset of each layer, in stack
/// order. This is the side-channel [`StencilMatrix::from_csr`] needs to
/// map a flat node index back onto `(layer, ix, iy)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridStructure {
    dims: Vec<(usize, usize)>,
    offsets: Vec<usize>,
    n: usize,
}

impl GridStructure {
    /// A structure from per-layer `(nx, ny)` resolutions.
    pub fn new(dims: &[(usize, usize)]) -> GridStructure {
        let mut offsets = Vec::with_capacity(dims.len());
        let mut n = 0usize;
        for &(nx, ny) in dims {
            offsets.push(n);
            n += nx * ny;
        }
        GridStructure {
            dims: dims.to_vec(),
            offsets,
            n,
        }
    }

    /// Total node count across all layers.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.dims.len()
    }

    /// `(nx, ny)` of layer `li`.
    pub fn layer_dims(&self, li: usize) -> (usize, usize) {
        assert!(li < self.dims.len());
        self.dims[li]
    }

    /// Node offset of layer `li`.
    pub fn layer_offset(&self, li: usize) -> usize {
        assert!(li < self.offsets.len());
        self.offsets[li]
    }
}

/// A grid-born matrix split by stencil role.
///
/// Lateral couplings live in five per-row coefficient arrays
/// (`south`/`west`/`diag`/`east`/`north`); a stored coefficient of
/// exactly `0.0` marks a geometrically absent neighbour (layer border)
/// and is skipped, matching CSR's absent entry. Vertical couplings to
/// earlier/later layers keep a compact CSR form (`down`/`up`). The
/// per-row lateral stride is the owning layer's `nx`.
#[derive(Debug, Clone)]
pub struct StencilMatrix {
    key: (usize, usize),
    n: usize,
    diag: Vec<f64>,
    west: Vec<f64>,
    east: Vec<f64>,
    south: Vec<f64>,
    north: Vec<f64>,
    /// Lateral stride (the layer's `nx`) per row.
    stride: Vec<u32>,
    down_ptr: Vec<usize>,
    down_col: Vec<u32>,
    down_val: Vec<f64>,
    up_ptr: Vec<usize>,
    up_col: Vec<u32>,
    up_val: Vec<f64>,
}

impl StencilMatrix {
    /// Classify `a` against `grid`. Returns `None` when any stored
    /// entry falls outside the stencil roles (then the generic CSR path
    /// must be used), when the dimensions disagree, or when a diagonal
    /// entry is absent (the fused kernels assume a stored diagonal,
    /// which every grid-born conductance matrix has).
    pub fn from_csr(a: &CsrMatrix, grid: &GridStructure) -> Option<StencilMatrix> {
        let n = a.dim();
        if n != grid.n_nodes() || n == 0 {
            return None;
        }
        let mut st = StencilMatrix {
            key: (a.dim(), a.nnz()),
            n,
            diag: vec![0.0; n],
            west: vec![0.0; n],
            east: vec![0.0; n],
            south: vec![0.0; n],
            north: vec![0.0; n],
            stride: vec![0; n],
            down_ptr: Vec::with_capacity(n + 1),
            down_col: Vec::new(),
            down_val: Vec::new(),
            up_ptr: Vec::with_capacity(n + 1),
            up_col: Vec::new(),
            up_val: Vec::new(),
        };
        st.down_ptr.push(0);
        st.up_ptr.push(0);
        for li in 0..grid.n_layers() {
            let (nx, ny) = grid.layer_dims(li);
            let off = grid.layer_offset(li);
            let end = off + nx * ny;
            for iy in 0..ny {
                for ix in 0..nx {
                    let row = off + iy * nx + ix;
                    st.stride[row] = nx as u32;
                    for (col, val) in a.row(row) {
                        if col == row {
                            st.diag[row] = val;
                        } else if col < off {
                            st.down_col.push(col as u32);
                            st.down_val.push(val);
                        } else if col >= end {
                            st.up_col.push(col as u32);
                            st.up_val.push(val);
                        } else if iy > 0 && col == row - nx {
                            // With nx == 1 the south neighbour is also
                            // row − 1; the south role is checked first
                            // so the single entry lands there.
                            if val.abs() <= 0.0 {
                                return None;
                            }
                            st.south[row] = val;
                        } else if ix > 0 && col == row - 1 {
                            if val.abs() <= 0.0 {
                                return None;
                            }
                            st.west[row] = val;
                        } else if ix + 1 < nx && col == row + 1 {
                            if val.abs() <= 0.0 {
                                return None;
                            }
                            st.east[row] = val;
                        } else if iy + 1 < ny && col == row + nx {
                            if val.abs() <= 0.0 {
                                return None;
                            }
                            st.north[row] = val;
                        } else {
                            // An in-layer coupling that is not a
                            // 5-point neighbour: not grid-born.
                            return None;
                        }
                    }
                    if st.diag[row].abs() <= 0.0 {
                        return None;
                    }
                    st.down_ptr.push(st.down_col.len());
                    st.up_ptr.push(st.up_col.len());
                }
            }
        }
        Some(st)
    }

    /// `(dim, nnz)` of the CSR matrix this stencil was classified from;
    /// the cheap identity check callers use before trusting the fast
    /// path against a possibly different matrix.
    pub fn key(&self) -> (usize, usize) {
        self.key
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// One row of `A·x`, accumulated in ascending-column order:
    /// down, south, west, diagonal, east, north, up.
    #[inline]
    fn row_apply(&self, i: usize, x: &[f64]) -> f64 {
        debug_assert!(i < self.n);
        let nx = self.stride[i] as usize;
        let mut acc = 0.0;
        for k in self.down_ptr[i]..self.down_ptr[i + 1] {
            acc += self.down_val[k] * x[self.down_col[k] as usize];
        }
        let s = self.south[i];
        if s.abs() > 0.0 {
            acc += s * x[i - nx];
        }
        let w = self.west[i];
        if w.abs() > 0.0 {
            acc += w * x[i - 1];
        }
        acc += self.diag[i] * x[i];
        let e = self.east[i];
        if e.abs() > 0.0 {
            acc += e * x[i + 1];
        }
        let nn = self.north[i];
        if nn.abs() > 0.0 {
            acc += nn * x[i + nx];
        }
        for k in self.up_ptr[i]..self.up_ptr[i + 1] {
            acc += self.up_val[k] * x[self.up_col[k] as usize];
        }
        acc
    }

    /// `y = A·x`, row-partitioned like [`CsrMatrix::mul_vec`] and
    /// bitwise identical to it (each row is one independent
    /// ascending-column accumulation, so the parallel split cannot
    /// change any result bit).
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        y.par_iter_mut()
            .enumerate()
            .for_each(|(i, yi)| *yi = self.row_apply(i, x));
    }

    /// Sequential reference for [`StencilMatrix::mul_vec`].
    pub fn mul_vec_seq(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = self.row_apply(i, x);
        }
    }

    /// Fused damped-Jacobi sweep:
    /// `x_new = x + damping_factor·D⁻¹∘(b − A·x)` in one traversal of
    /// the stencil (out of place — Jacobi reads the whole old iterate).
    pub fn smooth_damped(
        &self,
        x_old: &[f64],
        b: &[f64],
        inv_diag: &[f64],
        damping_factor: f64,
        x_new: &mut [f64],
    ) {
        assert_eq!(x_old.len(), self.n);
        assert_eq!(b.len(), self.n);
        assert_eq!(inv_diag.len(), self.n);
        assert_eq!(x_new.len(), self.n);
        x_new.par_iter_mut().enumerate().for_each(|(i, xi)| {
            *xi = x_old[i] + damping_factor * inv_diag[i] * (b[i] - self.row_apply(i, x_old));
        });
    }

    /// Fused residual `out = b − A·x` in one traversal of the stencil.
    pub fn residual(&self, b: &[f64], x: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.n);
        out.par_iter_mut()
            .enumerate()
            .for_each(|(i, oi)| *oi = b[i] - self.row_apply(i, x));
    }

    /// One in-place symmetric Gauss-Seidel sweep (forward then
    /// backward): `x[i] += D⁻¹[i]·(b[i] − (A·x)[i])` with the freshest
    /// `x` values. Sequential by nature, which also makes it bitwise
    /// deterministic regardless of the rayon pool.
    pub fn sgs_sweep(&self, b: &[f64], inv_diag: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        assert_eq!(inv_diag.len(), self.n);
        assert_eq!(x.len(), self.n);
        for i in 0..self.n {
            x[i] += inv_diag[i] * (b[i] - self.row_apply(i, x));
        }
        for i in (0..self.n).rev() {
            x[i] += inv_diag[i] * (b[i] - self.row_apply(i, x));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    /// A tiny two-layer grid-born-style matrix assembled by hand:
    /// layer 0 is 3×2, layer 1 is 2×2, with a few cross couplings.
    fn two_layer() -> (CsrMatrix, GridStructure) {
        let grid = GridStructure::new(&[(3, 2), (2, 2)]);
        let n = grid.n_nodes();
        let mut t = TripletMatrix::new(n);
        // Lateral in layer 0 (stride 3).
        for iy in 0..2 {
            for ix in 0..3 {
                let node = iy * 3 + ix;
                if ix + 1 < 3 {
                    t.add_conductance(node, node + 1, 1.5 + node as f64);
                }
                if iy + 1 < 2 {
                    t.add_conductance(node, node + 3, 2.5 + node as f64);
                }
            }
        }
        // Lateral in layer 1 (stride 2, offset 6).
        for iy in 0..2 {
            for ix in 0..2 {
                let node = 6 + iy * 2 + ix;
                if ix + 1 < 2 {
                    t.add_conductance(node, node + 1, 0.5 + node as f64);
                }
                if iy + 1 < 2 {
                    t.add_conductance(node, node + 2, 0.25 + node as f64);
                }
            }
        }
        // Vertical overlap couplings (not 1:1 — mixed resolutions).
        t.add_conductance(0, 6, 3.0);
        t.add_conductance(1, 6, 1.0);
        t.add_conductance(1, 7, 2.0);
        t.add_conductance(4, 8, 4.0);
        t.add_conductance(5, 9, 5.0);
        // Grounded ties so every diagonal is stored.
        for i in 0..n {
            t.add_grounded(i, 0.125 * (i + 1) as f64);
        }
        (t.to_csr(), grid)
    }

    #[test]
    fn classifies_and_matches_csr_bitwise() {
        let (a, grid) = two_layer();
        let st = StencilMatrix::from_csr(&a, &grid).expect("grid-born matrix must classify");
        assert_eq!(st.key(), (a.dim(), a.nnz()));
        let x: Vec<f64> = (0..a.dim())
            .map(|i| (i as f64 * 0.7).sin() + 0.01)
            .collect();
        let mut y_csr = vec![0.0; a.dim()];
        let mut y_st = vec![0.0; a.dim()];
        let mut y_seq = vec![0.0; a.dim()];
        a.mul_vec(&x, &mut y_csr);
        st.mul_vec(&x, &mut y_st);
        st.mul_vec_seq(&x, &mut y_seq);
        assert_eq!(y_csr, y_st, "stencil matvec must be bitwise CSR");
        assert_eq!(y_st, y_seq);
    }

    #[test]
    fn rejects_non_stencil_coupling() {
        let grid = GridStructure::new(&[(3, 3)]);
        let mut t = TripletMatrix::new(9);
        for i in 0..9 {
            t.add_grounded(i, 1.0 + i as f64);
        }
        // A diagonal (corner) coupling is not 5-point.
        t.add_conductance(0, 4, 1.0);
        assert!(StencilMatrix::from_csr(&t.to_csr(), &grid).is_none());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let grid = GridStructure::new(&[(2, 2)]);
        let mut t = TripletMatrix::new(5);
        for i in 0..5 {
            t.add_grounded(i, 1.0);
        }
        assert!(StencilMatrix::from_csr(&t.to_csr(), &grid).is_none());
    }

    #[test]
    fn degenerate_single_column_layer_uses_south_role() {
        // nx == 1: the in-layer neighbour row−1 is the *south*
        // neighbour even though it is also row−1.
        let grid = GridStructure::new(&[(1, 4)]);
        let mut t = TripletMatrix::new(4);
        for i in 0..3 {
            t.add_conductance(i, i + 1, 2.0 + i as f64);
        }
        for i in 0..4 {
            t.add_grounded(i, 1.0);
        }
        let a = t.to_csr();
        let st = StencilMatrix::from_csr(&a, &grid).expect("chain must classify");
        let x = [1.0, -2.0, 3.0, -4.0];
        let mut y_csr = vec![0.0; 4];
        let mut y_st = vec![0.0; 4];
        a.mul_vec(&x, &mut y_csr);
        st.mul_vec(&x, &mut y_st);
        assert_eq!(y_csr, y_st);
    }

    #[test]
    fn fused_kernels_match_composed_ops() {
        let (a, grid) = two_layer();
        let st = StencilMatrix::from_csr(&a, &grid).unwrap();
        let n = a.dim();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.1).collect();
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();

        let mut res = vec![0.0; n];
        st.residual(&b, &x, &mut res);
        let mut ax = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        for i in 0..n {
            assert_eq!(res[i], b[i] - ax[i]);
        }

        let mut x_new = vec![0.0; n];
        st.smooth_damped(&x, &b, &inv_diag, 0.8, &mut x_new);
        for i in 0..n {
            assert_eq!(x_new[i], x[i] + 0.8 * inv_diag[i] * (b[i] - ax[i]));
        }
    }
}
