//! Material property library.
//!
//! Thermal conductivities and volumetric heat capacities for every
//! material the paper's HotSpot configuration (Table 2) references, plus
//! the board-level materials needed to model full immersion of the
//! motherboard.
//!
//! Values are bulk properties at ~300 K. Quantities are typed
//! ([`WattsPerMeterKelvin`], [`JoulesPerCubicMeterKelvin`]) so a
//! conductivity can never be passed where a heat capacity is expected.

use immersion_units::{JoulesPerCubicMeterKelvin, WattsPerMeterKelvin};
use serde::{Deserialize, Serialize};

/// A (possibly transversely isotropic) material.
///
/// Laminated structures — PCBs with copper planes, organic package
/// substrates — conduct heat far better in-plane than through-plane.
/// `conductivity` is the through-plane (vertical) value used for
/// inter-layer coupling and convective half-paths; `lateral_conductivity`
/// is the in-plane value used for conduction within a layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Human-readable name (used in reports).
    pub name: &'static str,
    /// Through-plane thermal conductivity.
    pub conductivity: WattsPerMeterKelvin,
    /// In-plane thermal conductivity.
    pub lateral_conductivity: WattsPerMeterKelvin,
    /// Volumetric heat capacity. Only used by the transient solver;
    /// steady-state solves ignore it.
    pub volumetric_heat_capacity: JoulesPerCubicMeterKelvin,
}

impl Material {
    /// An isotropic material.
    ///
    /// The typed parameters make a unit mix-up a compile error:
    ///
    /// ```compile_fail
    /// use immersion_thermal::materials::Material;
    /// use immersion_units::{JoulesPerCubicMeterKelvin, Kelvin};
    /// // A temperature is not a conductivity — this does not compile.
    /// let m = Material::new(
    ///     "oops",
    ///     Kelvin::new(400.0),
    ///     JoulesPerCubicMeterKelvin::new(3.55e6),
    /// );
    /// ```
    pub const fn new(
        name: &'static str,
        conductivity: WattsPerMeterKelvin,
        vhc: JoulesPerCubicMeterKelvin,
    ) -> Self {
        Material {
            name,
            conductivity,
            lateral_conductivity: conductivity,
            volumetric_heat_capacity: vhc,
        }
    }

    /// A transversely isotropic material (laminate).
    pub const fn anisotropic(
        name: &'static str,
        through_plane: WattsPerMeterKelvin,
        in_plane: WattsPerMeterKelvin,
        vhc: JoulesPerCubicMeterKelvin,
    ) -> Self {
        Material {
            name,
            conductivity: through_plane,
            lateral_conductivity: in_plane,
            volumetric_heat_capacity: vhc,
        }
    }
}

/// Bulk silicon (HotSpot's default die conductivity).
pub const SILICON: Material = Material::new(
    "silicon",
    WattsPerMeterKelvin::new(100.0),
    JoulesPerCubicMeterKelvin::new(1.75e6),
);

/// Copper: heat spreader and heatsink base (Table 2 gives 400 W/mK).
pub const COPPER: Material = Material::new(
    "copper",
    WattsPerMeterKelvin::new(400.0),
    JoulesPerCubicMeterKelvin::new(3.55e6),
);

/// Thermal interface material between die and spreader / spreader and
/// sink.
///
/// HotSpot v6.0's default interface conductivity (4 W/mK). The paper's
/// Table 2 prints 0.25 W/mK for "TIM / Glue", but at 0.25 the
/// die–spreader interface alone would contribute ≈0.47 K/W on the
/// 169 mm² die — over 100 K at the paper's 4-chip high-frequency power,
/// contradicting every figure in the evaluation. We therefore read
/// Table 2's 0.25 as the inter-die *glue* ([`GLUE`]) and keep HotSpot's
/// default for the TIM proper. See DESIGN.md §2.
pub const TIM: Material = Material::new(
    "TIM",
    WattsPerMeterKelvin::new(4.0),
    JoulesPerCubicMeterKelvin::new(4.0e6),
);

/// Inter-die bond glue (Table 2: 0.25 W/mK).
pub const GLUE: Material = Material::new(
    "glue",
    WattsPerMeterKelvin::new(0.25),
    JoulesPerCubicMeterKelvin::new(4.0e6),
);

/// Parylene (diX C Plus) conformal film (Table 2: 0.14 W/mK).
pub const PARYLENE: Material = Material::new(
    "parylene",
    WattsPerMeterKelvin::new(0.14),
    JoulesPerCubicMeterKelvin::new(1.1e6),
);

/// Organic package substrate (build-up laminate with copper planes):
/// ~10 W/mK through-plane (via fields), ~30 W/mK in-plane (planes).
pub const PACKAGE_SUBSTRATE: Material = Material::anisotropic(
    "package-substrate",
    WattsPerMeterKelvin::new(10.0),
    WattsPerMeterKelvin::new(30.0),
    JoulesPerCubicMeterKelvin::new(2.0e6),
);

/// FR-4 printed circuit board: ~2 W/mK through-plane (thermal vias under
/// the package), ~30 W/mK in-plane (power/ground copper planes).
pub const PCB: Material = Material::anisotropic(
    "PCB",
    WattsPerMeterKelvin::new(2.0),
    WattsPerMeterKelvin::new(30.0),
    JoulesPerCubicMeterKelvin::new(2.2e6),
);

/// Still air (used only when an air gap is explicitly modelled).
pub const AIR: Material = Material::new(
    "air",
    WattsPerMeterKelvin::new(0.026),
    JoulesPerCubicMeterKelvin::new(1.2e3),
);

/// The inter-die bond of a 3-D stack: die-attach glue with a vertical
/// metal (TSV / ThruChip-interface keep-out fill) fraction.
///
/// The paper's Table 2 lists a bare 20 µm, 0.25 W/mK glue, but its own
/// frequency-vs-chip-count results (15-chip stacks under water) are only
/// reachable when the bond includes vertical metal: a pure 0.25 W/mK
/// series stack would accumulate a bottom-die gradient an order of
/// magnitude over the 55 K budget. `bond_material` mixes glue and copper
/// by area fraction (parallel thermal paths), which is how HotSpot users
/// model TSV fields in practice. See DESIGN.md §2 for the calibration.
pub fn bond_material(metal_fraction: f64) -> Material {
    let f = metal_fraction.clamp(0.0, 1.0);
    // Parallel combination of glue and copper paths.
    let k = GLUE.conductivity * (1.0 - f) + COPPER.conductivity * f;
    let c = GLUE.volumetric_heat_capacity * (1.0 - f) + COPPER.volumetric_heat_capacity * f;
    Material {
        name: "bond(glue+TSV)",
        conductivity: k,
        lateral_conductivity: k,
        volumetric_heat_capacity: c,
    }
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        assert_eq!(COPPER.conductivity.raw(), 400.0);
        assert_eq!(GLUE.conductivity.raw(), 0.25);
        assert_eq!(PARYLENE.conductivity.raw(), 0.14);
    }

    #[test]
    fn bond_material_mixes_linearly() {
        let pure_glue = bond_material(0.0);
        assert!((pure_glue.conductivity - GLUE.conductivity).raw().abs() < 1e-12);
        let pure_metal = bond_material(1.0);
        assert!((pure_metal.conductivity - COPPER.conductivity).raw().abs() < 1e-12);
        let half = bond_material(0.5);
        assert!(half.conductivity > pure_glue.conductivity);
        assert!(half.conductivity < pure_metal.conductivity);
    }

    #[test]
    fn bond_material_clamps_fraction() {
        assert_eq!(
            bond_material(-1.0).conductivity,
            bond_material(0.0).conductivity
        );
        assert_eq!(
            bond_material(2.0).conductivity,
            bond_material(1.0).conductivity
        );
    }

    #[test]
    fn conductivity_ordering_is_physical() {
        assert!(COPPER.conductivity > SILICON.conductivity);
        assert!(SILICON.conductivity > PACKAGE_SUBSTRATE.conductivity);
        assert!(PACKAGE_SUBSTRATE.conductivity > TIM.conductivity);
        assert!(TIM.conductivity > PCB.conductivity);
        assert!(PCB.conductivity > GLUE.conductivity);
        assert!(GLUE.conductivity > PARYLENE.conductivity);
        assert!(PARYLENE.conductivity > AIR.conductivity);
    }
}
