//! Multigrid V-cycle preconditioner for the grid-born conductance
//! system.
//!
//! The stack discretization is strongly anisotropic: layers are tens of
//! microns thick but millimetres wide, so vertical conductances exceed
//! lateral ones by about two orders of magnitude. Purely lateral
//! geometric coarsening with a point smoother would leave the
//! laterally-oscillatory, vertically-constant error modes undamped, so
//! the hierarchy is built algebraically instead: greedy **pairwise
//! aggregation** (two rounds per level) merges each node with its
//! strongest unaggregated neighbour, which collapses the stiff vertical
//! direction first — exactly the semicoarsening the anisotropy calls
//! for — and then coarsens laterally. Interpolation is **smoothed
//! aggregation** (one damped-Jacobi sweep over the piecewise-constant
//! tentative prolongator), restriction is its transpose, and coarse
//! operators are Galerkin products `Aᶜ = Pᵀ·A·P`, so each level stays
//! symmetric. Levels are smoothed by **symmetric Gauss-Seidel**
//! (forward then backward sweep — self-adjoint in the `A` inner
//! product, so a V(ν,ν) cycle with equal pre/post sweeps is a
//! symmetric positive-definite preconditioner, exactly what CG
//! requires, and a far stronger smoother than damped Jacobi on this
//! anisotropic operator); the coarsest system is solved exactly by a
//! dense Cholesky factorization.
//!
//! Every kernel in the cycle is sequential (the Gauss-Seidel sweeps,
//! the coarse direct solve), elementwise, or row-partitioned, so an
//! MG-preconditioned solve is **bitwise deterministic across thread
//! pool widths** (unlike the chunk-reduced dot products of the Jacobi
//! path, which are deterministic only per fixed width); see
//! `dot_stable` in [`crate::sparse`] for the reduction half of that
//! story.
//!
//! Optional **mixed precision**: with [`MgOptions::mixed_precision`]
//! set, all levels below the finest smooth in `f32` (halving the
//! bandwidth the cycle is bound by) while the finest level — residual
//! computation and smoothing — stays in `f64`. The preconditioner is
//! then only approximately symmetric, but CG tolerates it: the outer
//! iteration carries full-precision residuals, so the converged answer
//! is identical to tolerance.

use crate::sparse::CsrMatrix;
use crate::stencil::StencilMatrix;
use immersion_sanitizer as sanitizer;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sanitizer cell covering the hierarchy's level buffers: written once
/// at build, read by every `apply`. Concurrent applies are read-read;
/// an apply unordered with the build would be a real publication bug.
const MG_CELL: &str = "thermal::MgHierarchy.levels";

/// Tuning knobs for the multigrid hierarchy and cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgOptions {
    /// Symmetric Gauss-Seidel sweeps before coarse-grid correction.
    pub pre_sweeps: usize,
    /// Symmetric Gauss-Seidel sweeps after coarse-grid correction.
    /// Keep equal to `pre_sweeps`: the V-cycle is a symmetric
    /// preconditioner only when the pre- and post-smoothers are
    /// adjoint, which equal counts of the (self-adjoint) symmetric
    /// sweep guarantee.
    pub post_sweeps: usize,
    /// Damping of the one Jacobi sweep applied to the tentative
    /// prolongator (smoothed aggregation's ω, conventionally 2/3).
    pub interpolation_damping_factor: f64,
    /// Smooth the tentative prolongator (`false` = plain aggregation,
    /// cheaper setup but slower convergence).
    pub smoothed_interpolation: bool,
    /// Stop coarsening at or below this many nodes and solve directly.
    pub coarse_direct_limit: usize,
    /// Hard cap on hierarchy depth.
    pub max_levels: usize,
    /// Run levels below the finest in `f32` (f64 residual correction
    /// on the finest level keeps the outer CG at full precision).
    pub mixed_precision: bool,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions {
            pre_sweeps: 2,
            post_sweeps: 2,
            interpolation_damping_factor: 2.0 / 3.0,
            smoothed_interpolation: true,
            coarse_direct_limit: 120,
            max_levels: 12,
            mixed_precision: false,
        }
    }
}

/// Preconditioner selection for a thermal model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PrecondChoice {
    /// Multigrid with default options when the hierarchy builds,
    /// Jacobi otherwise (non-SPD coarse operator, degenerate grid, …).
    #[default]
    Auto,
    /// Point-Jacobi (the pre-multigrid behaviour).
    Jacobi,
    /// Multigrid with explicit options; still falls back to Jacobi if
    /// the hierarchy cannot be built.
    Multigrid(MgOptions),
}

/// A rectangular CSR matrix for the inter-level transfer operators.
#[derive(Debug, Clone)]
struct RectCsr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl RectCsr {
    /// Build from per-row sorted, merged `(col, value)` lists.
    fn from_rows(cols: usize, rows: Vec<Vec<(u32, f64)>>) -> RectCsr {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in &rows {
            for &(c, v) in row {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        RectCsr {
            rows: rows.len(),
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&j, &v)| (j as usize, v))
    }

    /// Transpose by a deterministic counting sort over columns.
    fn transpose(&self) -> RectCsr {
        let mut row_ptr = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.cols {
            row_ptr[c + 1] += row_ptr[c];
        }
        let mut col_idx = vec![0u32; self.col_idx.len()];
        let mut values = vec![0.0; self.values.len()];
        let mut cursor = row_ptr.clone();
        for i in 0..self.rows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[k] as usize;
                let dst = cursor[c];
                cursor[c] += 1;
                col_idx[dst] = i as u32;
                values[dst] = self.values[k];
            }
        }
        RectCsr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// `y = M·x`, row-partitioned (width-invariant).
    fn mul_assign(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        });
    }

    /// `y += M·x`, row-partitioned (width-invariant).
    fn mul_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi += acc;
        });
    }
}

/// `f32` mirror of a square CSR operator (values only narrowed; the
/// structure is shared semantics-wise with the `f64` original).
#[derive(Debug, Clone)]
struct Csr32 {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Csr32 {
    fn of(a: &CsrMatrix) -> Csr32 {
        let n = a.dim();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..n {
            for (j, v) in a.row(i) {
                col_idx.push(j as u32);
                values.push(v as f32);
            }
            row_ptr.push(col_idx.len());
        }
        Csr32 {
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// `f32` mirror of a transfer operator.
#[derive(Debug, Clone)]
struct Rect32 {
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl Rect32 {
    fn of(m: &RectCsr) -> Rect32 {
        Rect32 {
            row_ptr: m.row_ptr.clone(),
            col_idx: m.col_idx.clone(),
            values: m.values.iter().map(|&v| v as f32).collect(),
        }
    }

    fn mul_assign(&self, x: &[f32], y: &mut [f32]) {
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut acc = 0.0f32;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        });
    }

    fn mul_add(&self, x: &[f32], y: &mut [f32]) {
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let mut acc = 0.0f32;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi += acc;
        });
    }
}

/// One level of the hierarchy: its operator, Jacobi inverse diagonal,
/// and (except on the coarsest level) the transfers to the next level.
#[derive(Debug)]
struct MgLevel {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// Interpolation from the next-coarser level (rows = this level).
    p: Option<RectCsr>,
    /// Restriction `Pᵀ` to the next-coarser level.
    r: Option<RectCsr>,
    // f32 mirrors, present on levels below the finest when
    // `mixed_precision` is set.
    a32: Option<Csr32>,
    inv_diag32: Vec<f32>,
    p32: Option<Rect32>,
    r32: Option<Rect32>,
}

/// Per-context scratch for the V-cycle: one `(x, b, t)` triple per
/// level (plus `f32` mirrors when mixed precision is armed), reused
/// across applies so a solve allocates nothing per iteration.
#[derive(Debug, Default, Clone)]
pub struct MgScratch {
    x: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
    t: Vec<Vec<f64>>,
    x32: Vec<Vec<f32>>,
    b32: Vec<Vec<f32>>,
    t32: Vec<Vec<f32>>,
    key: (usize, usize),
    n_levels: usize,
}

impl MgScratch {
    fn ensure(&mut self, h: &MgHierarchy) {
        if self.key == h.key && self.n_levels == h.levels.len() {
            return;
        }
        self.key = h.key;
        self.n_levels = h.levels.len();
        let dims: Vec<usize> = h.levels.iter().map(|l| l.a.dim()).collect();
        self.x = dims.iter().map(|&n| vec![0.0; n]).collect();
        self.b = dims.iter().map(|&n| vec![0.0; n]).collect();
        self.t = dims.iter().map(|&n| vec![0.0; n]).collect();
        if h.opts.mixed_precision {
            self.x32 = dims.iter().map(|&n| vec![0.0f32; n]).collect();
            self.b32 = dims.iter().map(|&n| vec![0.0f32; n]).collect();
            self.t32 = dims.iter().map(|&n| vec![0.0f32; n]).collect();
        } else {
            self.x32.clear();
            self.b32.clear();
            self.t32.clear();
        }
    }
}

/// The assembled multigrid hierarchy for one conductance matrix,
/// shared immutably (via `Arc`) between every solver context armed for
/// that matrix.
#[derive(Debug)]
pub struct MgHierarchy {
    key: (usize, usize),
    levels: Vec<MgLevel>,
    /// Dense lower-triangular Cholesky factor of the coarsest operator
    /// (row-major `coarse_n × coarse_n`).
    coarse_chol: Vec<f64>,
    coarse_n: usize,
    opts: MgOptions,
    /// Stencil fast path for finest-level matvecs, when the matrix
    /// classified.
    stencil: Option<Arc<StencilMatrix>>,
}

impl Drop for MgHierarchy {
    fn drop(&mut self) {
        sanitizer::retire(MG_CELL, sanitizer::obj_id(self));
    }
}

impl MgHierarchy {
    /// Build the hierarchy for `a`. Returns `None` when no useful
    /// hierarchy exists (coarsening stalls far above the direct-solve
    /// limit, or the coarsest operator is not positive definite) — the
    /// caller then stays on the Jacobi path.
    pub fn build(
        a: &CsrMatrix,
        opts: MgOptions,
        stencil: Option<Arc<StencilMatrix>>,
    ) -> Option<Arc<MgHierarchy>> {
        let n = a.dim();
        if n == 0 || opts.max_levels == 0 {
            return None;
        }
        let stencil = stencil.filter(|s| s.key() == (n, a.nnz()));
        let mut levels: Vec<MgLevel> = Vec::new();
        let mut cur = a.clone();
        while cur.dim() > opts.coarse_direct_limit && levels.len() + 1 < opts.max_levels {
            let inv_diag = inv_diag_of(&cur);
            let (agg, n_c) = aggregate(&cur);
            if n_c >= cur.dim() {
                break;
            }
            let p = interpolation(&cur, &inv_diag, &agg, n_c, &opts);
            let r = p.transpose();
            let a_next = galerkin(&cur, &p, &r);
            levels.push(MgLevel {
                a: cur,
                inv_diag,
                p: Some(p),
                r: Some(r),
                a32: None,
                inv_diag32: Vec::new(),
                p32: None,
                r32: None,
            });
            cur = a_next;
        }
        if cur.dim() > 4 * opts.coarse_direct_limit.max(1) {
            // Coarsening stalled while the operator is still too big
            // for a dense direct solve; no useful hierarchy.
            return None;
        }
        let coarse_n = cur.dim();
        let coarse_chol = dense_cholesky(&cur)?;
        levels.push(MgLevel {
            a: cur,
            inv_diag: Vec::new(),
            p: None,
            r: None,
            a32: None,
            inv_diag32: Vec::new(),
            p32: None,
            r32: None,
        });
        if opts.mixed_precision {
            for lev in levels.iter_mut().skip(1) {
                lev.a32 = Some(Csr32::of(&lev.a));
                lev.inv_diag32 = lev.inv_diag.iter().map(|&d| d as f32).collect();
                lev.p32 = lev.p.as_ref().map(Rect32::of);
                lev.r32 = lev.r.as_ref().map(Rect32::of);
            }
        }
        let h = Arc::new(MgHierarchy {
            key: (n, a.nnz()),
            levels,
            coarse_chol,
            coarse_n,
            opts,
            stencil,
        });
        // Publish the hierarchy buffers to the sanitizer: the build is
        // the single write, every apply a read.
        sanitizer::shared_write(MG_CELL, sanitizer::obj_id(&*h));
        Some(h)
    }

    /// `(dim, nnz)` of the finest-level matrix.
    pub fn key(&self) -> (usize, usize) {
        self.key
    }

    /// Number of levels including the coarsest.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Node count of level `l` (0 = finest).
    pub fn level_dim(&self, l: usize) -> usize {
        assert!(l < self.levels.len());
        self.levels[l].a.dim()
    }

    /// The options the hierarchy was built with.
    pub fn options(&self) -> &MgOptions {
        &self.opts
    }

    /// Apply the preconditioner: `z ≈ A⁻¹·rhs` by one V-cycle from a
    /// zero initial guess. Pure function of `(self, rhs)` — `scratch`
    /// only carries buffers — and bitwise deterministic across thread
    /// pool widths.
    pub fn apply(&self, rhs: &[f64], z: &mut [f64], scratch: &mut MgScratch) {
        sanitizer::shared_read(MG_CELL, sanitizer::obj_id(self));
        scratch.ensure(self);
        scratch.b[0].copy_from_slice(rhs);
        if self.opts.mixed_precision && self.levels.len() > 1 {
            self.cycle_mixed(scratch);
        } else {
            self.cycle(0, scratch);
        }
        z.copy_from_slice(&scratch.x[0]);
    }

    /// One V-cycle recursion step on level `l` (all-`f64` path).
    fn cycle(&self, l: usize, s: &mut MgScratch) {
        debug_assert!(l < self.levels.len());
        let lev = &self.levels[l];
        if l + 1 == self.levels.len() {
            self.coarse_solve(&s.b[l], &mut s.x[l]);
            return;
        }
        let (Some(p), Some(r)) = (&lev.p, &lev.r) else {
            return;
        };
        // Pre-smooth from the zero guess.
        zero(&mut s.x[l]);
        for _ in 0..self.opts.pre_sweeps {
            self.smooth(l, lev, s);
        }
        // Coarse-grid correction: restrict the residual, recurse,
        // interpolate the coarse update back.
        self.level_residual(l, lev, &s.b[l], &s.x[l], &mut s.t[l]);
        r.mul_assign(&s.t[l], &mut s.b[l + 1]);
        self.cycle(l + 1, s);
        let (head, tail) = s.x.split_at_mut(l + 1);
        p.mul_add(&tail[0], &mut head[l]);
        for _ in 0..self.opts.post_sweeps {
            self.smooth(l, lev, s);
        }
    }

    /// One in-place symmetric Gauss-Seidel sweep on level `l`, through
    /// the stencil fast path on the finest level.
    fn smooth(&self, l: usize, lev: &MgLevel, s: &mut MgScratch) {
        debug_assert!(l < s.x.len());
        match (&self.stencil, l) {
            (Some(st), 0) => st.sgs_sweep(&s.b[l], &lev.inv_diag, &mut s.x[l]),
            _ => sgs_sweep_csr(&lev.a, &lev.inv_diag, &s.b[l], &mut s.x[l]),
        }
    }

    /// `out = b − A·x` on level `l`, through the stencil fast path on
    /// the finest level.
    fn level_residual(&self, l: usize, lev: &MgLevel, b: &[f64], x: &[f64], out: &mut [f64]) {
        debug_assert!(l < self.levels.len());
        match (&self.stencil, l) {
            (Some(st), 0) => st.residual(b, x, out),
            _ => residual_csr(&lev.a, b, x, out),
        }
    }

    /// Exact solve of the coarsest system by the cached Cholesky
    /// factor (sequential — the coarsest level is tiny).
    fn coarse_solve(&self, b: &[f64], x: &mut [f64]) {
        let n = self.coarse_n;
        let l = &self.coarse_chol;
        // Forward: L·y = b (y stored in x).
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= l[i * n + j] * x[j];
            }
            x[i] = acc / l[i * n + i];
        }
        // Backward: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= l[j * n + i] * x[j];
            }
            x[i] = acc / l[i * n + i];
        }
    }

    /// Mixed-precision cycle: finest level in `f64`, everything below
    /// in `f32`, coarsest direct solve in `f64`.
    fn cycle_mixed(&self, s: &mut MgScratch) {
        let lev = &self.levels[0];
        let (Some(p), Some(r)) = (&lev.p, &lev.r) else {
            return;
        };
        zero(&mut s.x[0]);
        for _ in 0..self.opts.pre_sweeps {
            self.smooth(0, lev, s);
        }
        self.level_residual(0, lev, &s.b[0], &s.x[0], &mut s.t[0]);
        // Restrict in f64, then narrow the coarse right-hand side.
        r.mul_assign(&s.t[0], &mut s.b[1]);
        narrow(&s.b[1], &mut s.b32[1]);
        self.cycle32(1, s);
        // Widen the coarse update and interpolate it back in f64;
        // b[1] is free again at this point.
        widen(&s.x32[1], &mut s.b[1]);
        p.mul_add(&s.b[1], &mut s.x[0]);
        for _ in 0..self.opts.post_sweeps {
            self.smooth(0, lev, s);
        }
    }

    /// V-cycle recursion in `f32` (levels ≥ 1 under mixed precision).
    fn cycle32(&self, l: usize, s: &mut MgScratch) {
        debug_assert!(l < self.levels.len());
        let lev = &self.levels[l];
        if l + 1 == self.levels.len() {
            // Coarsest: widen, solve exactly in f64, narrow back.
            widen(&s.b32[l], &mut s.b[l]);
            // Split-borrow x/b at the same level (different fields).
            self.coarse_solve(&s.b[l], &mut s.x[l]);
            narrow(&s.x[l], &mut s.x32[l]);
            return;
        }
        let (Some(a32), Some(p32), Some(r32)) = (&lev.a32, &lev.p32, &lev.r32) else {
            return;
        };
        s.x32[l].iter_mut().for_each(|v| *v = 0.0);
        for _ in 0..self.opts.pre_sweeps {
            sgs_sweep_csr32(a32, &lev.inv_diag32, &s.b32[l], &mut s.x32[l]);
        }
        residual_csr32(a32, &s.b32[l], &s.x32[l], &mut s.t32[l]);
        r32.mul_assign(&s.t32[l], &mut s.b32[l + 1]);
        self.cycle32(l + 1, s);
        let (head, tail) = s.x32.split_at_mut(l + 1);
        p32.mul_add(&tail[0], &mut head[l]);
        for _ in 0..self.opts.post_sweeps {
            sgs_sweep_csr32(a32, &lev.inv_diag32, &s.b32[l], &mut s.x32[l]);
        }
    }
}

/// The Jacobi inverse diagonal of `a` (guarded like the CG context's).
fn inv_diag_of(a: &CsrMatrix) -> Vec<f64> {
    a.diagonal()
        .iter()
        .map(|&d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
        .collect()
}

fn zero(v: &mut [f64]) {
    v.iter_mut().for_each(|x| *x = 0.0);
}

fn narrow(src: &[f64], dst: &mut [f32]) {
    dst.par_iter_mut()
        .zip(src.par_iter())
        .for_each(|(d, &s)| *d = s as f32);
}

fn widen(src: &[f32], dst: &mut [f64]) {
    dst.par_iter_mut()
        .zip(src.par_iter())
        .for_each(|(d, &s)| *d = f64::from(s));
}

/// One in-place symmetric Gauss-Seidel sweep over a generic CSR level
/// (sequential, hence width-invariant).
fn sgs_sweep_csr(a: &CsrMatrix, inv_diag: &[f64], b: &[f64], x: &mut [f64]) {
    let n = a.dim();
    for i in 0..n {
        let mut acc = 0.0;
        for (j, v) in a.row(i) {
            acc += v * x[j];
        }
        x[i] += inv_diag[i] * (b[i] - acc);
    }
    for i in (0..n).rev() {
        let mut acc = 0.0;
        for (j, v) in a.row(i) {
            acc += v * x[j];
        }
        x[i] += inv_diag[i] * (b[i] - acc);
    }
}

/// `out = b − A·x` over a generic CSR level.
fn residual_csr(a: &CsrMatrix, b: &[f64], x: &[f64], out: &mut [f64]) {
    out.par_iter_mut().enumerate().for_each(|(i, oi)| {
        let mut acc = 0.0;
        for (j, v) in a.row(i) {
            acc += v * x[j];
        }
        *oi = b[i] - acc;
    });
}

fn sgs_sweep_csr32(a: &Csr32, inv_diag: &[f32], b: &[f32], x: &mut [f32]) {
    debug_assert!(x.len() + 1 == a.row_ptr.len());
    let n = a.row_ptr.len() - 1;
    for i in 0..n {
        let mut acc = 0.0f32;
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            acc += a.values[k] * x[a.col_idx[k] as usize];
        }
        x[i] += inv_diag[i] * (b[i] - acc);
    }
    for i in (0..n).rev() {
        let mut acc = 0.0f32;
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            acc += a.values[k] * x[a.col_idx[k] as usize];
        }
        x[i] += inv_diag[i] * (b[i] - acc);
    }
}

fn residual_csr32(a: &Csr32, b: &[f32], x: &[f32], out: &mut [f32]) {
    debug_assert!(out.len() + 1 == a.row_ptr.len());
    out.par_iter_mut().enumerate().for_each(|(i, oi)| {
        let mut acc = 0.0f32;
        for k in a.row_ptr[i]..a.row_ptr[i + 1] {
            acc += a.values[k] * x[a.col_idx[k] as usize];
        }
        *oi = b[i] - acc;
    });
}

/// One greedy pairwise-matching round: each unmatched node (in index
/// order) pairs with its strongest-coupled unmatched neighbour, ties
/// resolved to the smallest column. Deterministic by construction.
fn pair_nodes(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.dim();
    let mut group = vec![u32::MAX; n];
    let mut ng = 0u32;
    for i in 0..n {
        if group[i] != u32::MAX {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (j, v) in a.row(i) {
            if j != i && group[j] == u32::MAX {
                let w = v.abs();
                // Strict `>` keeps the first (smallest-column) winner
                // on ties.
                if best.is_none_or(|(bw, _)| w > bw) {
                    best = Some((w, j));
                }
            }
        }
        group[i] = ng;
        if let Some((_, j)) = best {
            group[j] = ng;
        }
        ng += 1;
    }
    (group, ng as usize)
}

/// Double pairwise aggregation: two matching rounds composed (the
/// second runs on the piecewise-constant Galerkin operator of the
/// first), giving aggregates of up to four nodes. Because the first
/// round pairs along the strongest coupling, the stiff vertical
/// direction of the stack collapses first.
fn aggregate(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let (g1, n1) = pair_nodes(a);
    if n1 >= a.dim() {
        return (g1, n1);
    }
    let mut t = crate::sparse::TripletMatrix::new(n1);
    for i in 0..a.dim() {
        for (j, v) in a.row(i) {
            t.add(g1[i] as usize, g1[j] as usize, v);
        }
    }
    let a1 = t.to_csr();
    let (g2, n2) = pair_nodes(&a1);
    let g: Vec<u32> = g1.iter().map(|&x| g2[x as usize]).collect();
    (g, n2)
}

/// The prolongator for an aggregation: piecewise constant over the
/// aggregates, optionally smoothed by one damped-Jacobi sweep
/// (`P = (I − ω·D⁻¹·A)·P_tent`), which spreads each aggregate's basis
/// function over its neighbours and is what makes aggregation MG
/// converge at grid-independent rates.
fn interpolation(
    a: &CsrMatrix,
    inv_diag: &[f64],
    agg: &[u32],
    n_coarse: usize,
    opts: &MgOptions,
) -> RectCsr {
    let n = a.dim();
    let mut rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n);
    if !opts.smoothed_interpolation {
        for &g in agg.iter().take(n) {
            rows.push(vec![(g, 1.0)]);
        }
        return RectCsr::from_rows(n_coarse, rows);
    }
    let wd = opts.interpolation_damping_factor;
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for i in 0..n {
        acc.clear();
        for (k, v) in a.row(i) {
            *acc.entry(agg[k]).or_insert(0.0) -= wd * inv_diag[i] * v;
        }
        *acc.entry(agg[i]).or_insert(0.0) += 1.0;
        rows.push(acc.iter().map(|(&c, &v)| (c, v)).collect());
    }
    RectCsr::from_rows(n_coarse, rows)
}

/// Galerkin coarse operator `Aᶜ = R·A·P`, built per coarse row with a
/// sorted-map accumulator (fully sequential and deterministic; setup
/// runs once per model).
fn galerkin(a: &CsrMatrix, p: &RectCsr, r: &RectCsr) -> CsrMatrix {
    // ap = A·P as a rectangular CSR, merged per row.
    let mut ap_rows: Vec<Vec<(u32, f64)>> = Vec::with_capacity(a.dim());
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for i in 0..a.dim() {
        acc.clear();
        for (k, aik) in a.row(i) {
            for (j, pkj) in p.row(k) {
                *acc.entry(j as u32).or_insert(0.0) += aik * pkj;
            }
        }
        ap_rows.push(acc.iter().map(|(&c, &v)| (c, v)).collect());
    }
    let ap = RectCsr::from_rows(p.cols, ap_rows);
    // Aᶜ[I] = Σ_i R[I,i]·AP[i,:].
    let mut t = crate::sparse::TripletMatrix::new(p.cols);
    for bi in 0..r.rows {
        acc.clear();
        for (i, rv) in r.row(bi) {
            for (j, apv) in ap.row(i) {
                *acc.entry(j as u32).or_insert(0.0) += rv * apv;
            }
        }
        for (&j, &v) in &acc {
            t.add(bi, j as usize, v);
        }
    }
    t.to_csr()
}

/// Dense Cholesky `A = L·Lᵀ` of the coarsest operator; `None` when a
/// pivot is non-positive (operator not SPD — no hierarchy).
fn dense_cholesky(a: &CsrMatrix) -> Option<Vec<f64>> {
    let n = a.dim();
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for (j, v) in a.row(i) {
            m[i * n + j] = v;
        }
    }
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let mut d = m[j * n + j];
        for k in 0..j {
            d -= l[j * n + k] * l[j * n + k];
        }
        if !(d.is_finite() && d > 0.0) {
            return None;
        }
        let dj = d.sqrt();
        l[j * n + j] = dj;
        for i in j + 1..n {
            let mut v = m[i * n + j];
            for k in 0..j {
                v -= l[i * n + k] * l[j * n + k];
            }
            l[i * n + j] = v / dj;
        }
    }
    Some(l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    /// An anisotropic 3-D 7-point Laplacian with grounded boundary:
    /// vertical couplings `aniso`× stronger than lateral, like the
    /// stack.
    fn grid3d(nx: usize, ny: usize, nz: usize, aniso: f64) -> CsrMatrix {
        let n = nx * ny * nz;
        let idx = |x: usize, y: usize, z: usize| z * nx * ny + y * nx + x;
        let mut t = TripletMatrix::new(n);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = idx(x, y, z);
                    if x + 1 < nx {
                        t.add_conductance(i, idx(x + 1, y, z), 1.0);
                    }
                    if y + 1 < ny {
                        t.add_conductance(i, idx(x, y + 1, z), 1.0);
                    }
                    if z + 1 < nz {
                        t.add_conductance(i, idx(x, y, z + 1), aniso);
                    }
                    if z == 0 {
                        t.add_grounded(i, 0.5);
                    }
                }
            }
        }
        t.to_csr()
    }

    fn apply_precond(h: &MgHierarchy, v: &[f64]) -> Vec<f64> {
        let mut s = MgScratch::default();
        let mut z = vec![0.0; v.len()];
        h.apply(v, &mut z, &mut s);
        z
    }

    #[test]
    fn hierarchy_coarsens_geometrically() {
        let a = grid3d(12, 12, 8, 100.0);
        let h = MgHierarchy::build(&a, MgOptions::default(), None).expect("must build");
        assert!(h.n_levels() >= 2, "{} levels", h.n_levels());
        for l in 1..h.n_levels() {
            assert!(
                h.level_dim(l) * 2 < h.level_dim(l - 1),
                "level {l} barely coarsens: {} -> {}",
                h.level_dim(l - 1),
                h.level_dim(l)
            );
        }
        let coarsest = h.level_dim(h.n_levels() - 1);
        assert!(coarsest <= MgOptions::default().coarse_direct_limit);
    }

    #[test]
    fn vcycle_is_symmetric() {
        // xᵀ·M⁻¹·y == yᵀ·M⁻¹·x for the V(1,1) cycle with equal
        // pre/post Jacobi sweeps.
        let a = grid3d(10, 9, 6, 50.0);
        let h = MgHierarchy::build(&a, MgOptions::default(), None).expect("must build");
        let n = a.dim();
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| ((i * 40503 + 7) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mx = apply_precond(&h, &x);
        let my = apply_precond(&h, &y);
        let xmy: f64 = x.iter().zip(&my).map(|(a, b)| a * b).sum();
        let ymx: f64 = y.iter().zip(&mx).map(|(a, b)| a * b).sum();
        let scale = xmy.abs().max(ymx.abs()).max(1e-30);
        assert!(
            ((xmy - ymx) / scale).abs() < 1e-12,
            "asymmetry: xᵀMy={xmy} yᵀMx={ymx}"
        );
    }

    #[test]
    fn vcycle_reduces_error_fast() {
        // The preconditioned Richardson iteration x ← x + M(b − Ax)
        // must contract quickly; this is the property that buys CG its
        // iteration count.
        let a = grid3d(12, 12, 8, 100.0);
        let h = MgHierarchy::build(&a, MgOptions::default(), None).expect("must build");
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut x = vec![0.0; n];
        let mut s = MgScratch::default();
        let mut res = b.clone();
        let norm0: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut z = vec![0.0; n];
        for _ in 0..10 {
            h.apply(&res, &mut z, &mut s);
            for i in 0..n {
                x[i] += z[i];
            }
            let mut ax = vec![0.0; n];
            a.mul_vec(&x, &mut ax);
            for i in 0..n {
                res[i] = b[i] - ax[i];
            }
        }
        let norm: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            norm < 1e-6 * norm0,
            "V-cycle iteration barely converges: {norm:e} vs {norm0:e}"
        );
    }

    #[test]
    fn mixed_precision_cycle_still_contracts() {
        let a = grid3d(10, 10, 8, 100.0);
        let opts = MgOptions {
            mixed_precision: true,
            ..MgOptions::default()
        };
        let h = MgHierarchy::build(&a, opts, None).expect("must build");
        let n = a.dim();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 - 14.0).collect();
        let mut x = vec![0.0; n];
        let mut s = MgScratch::default();
        let mut res = b.clone();
        let norm0: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut z = vec![0.0; n];
        for _ in 0..20 {
            h.apply(&res, &mut z, &mut s);
            for i in 0..n {
                x[i] += z[i];
            }
            let mut ax = vec![0.0; n];
            a.mul_vec(&x, &mut ax);
            for i in 0..n {
                res[i] = b[i] - ax[i];
            }
        }
        let norm: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            norm < 1e-8 * norm0,
            "mixed-precision V-cycle stalls: {norm:e} vs {norm0:e}"
        );
    }

    #[test]
    fn indefinite_matrix_yields_no_hierarchy() {
        let mut t = TripletMatrix::new(3);
        t.add(0, 0, 1.0);
        t.add(1, 1, -1.0);
        t.add(2, 2, 1.0);
        let a = t.to_csr();
        assert!(MgHierarchy::build(&a, MgOptions::default(), None).is_none());
    }

    #[test]
    fn tiny_matrix_is_a_single_direct_level() {
        let a = grid3d(3, 3, 2, 10.0);
        let h = MgHierarchy::build(&a, MgOptions::default(), None).expect("must build");
        assert_eq!(h.n_levels(), 1);
        // One apply then solves exactly.
        let b: Vec<f64> = (0..a.dim()).map(|i| i as f64 + 1.0).collect();
        let z = apply_precond(&h, &b);
        let mut az = vec![0.0; a.dim()];
        a.mul_vec(&z, &mut az);
        for (azi, bi) in az.iter().zip(&b) {
            assert!((azi - bi).abs() < 1e-9 * bi.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let rows = vec![
            vec![(0u32, 1.0), (2, -2.0)],
            vec![(1u32, 3.0)],
            vec![(0u32, 4.0), (1, 5.0), (2, 6.0)],
            vec![],
        ];
        let m = RectCsr::from_rows(3, rows);
        let mt = m.transpose();
        assert_eq!(mt.rows, 3);
        assert_eq!(mt.cols, 4);
        let back = mt.transpose();
        assert_eq!(back.row_ptr, m.row_ptr);
        assert_eq!(back.col_idx, m.col_idx);
        assert_eq!(back.values, m.values);
    }
}

#[cfg(test)]
mod diag {
    //! Ignored-by-default diagnostics: measure the V-cycle contraction
    //! factor and the true MG-PCG iteration count on a real immersion
    //! stack. Run with
    //! `cargo test -p immersion-thermal mg::diag -- --ignored --nocapture`
    //! (knobs: CHIPS, GRID, SW env vars).
    use super::*;

    #[test]
    #[ignore]
    fn fixture_contraction() {
        use crate::floorplan::{Floorplan, Rect};
        use crate::stack3d::{CoolingParams, StackBuilder};
        let mut fp = Floorplan::new(0.01, 0.01);
        fp.add_block("DIE", Rect::new(0.0, 0.0, 0.01, 0.01))
            .unwrap();
        let chips: usize = std::env::var("CHIPS")
            .map(|v| v.parse().unwrap())
            .unwrap_or(8);
        let grid: usize = std::env::var("GRID")
            .map(|v| v.parse().unwrap())
            .unwrap_or(8);
        let model = StackBuilder::new(fp)
            .chips(chips)
            .grid(grid, grid)
            .cooling(CoolingParams::water_immersion())
            .build()
            .unwrap();
        let a = model.matrix();
        let sw: usize = std::env::var("SW").map(|v| v.parse().unwrap()).unwrap_or(2);
        let opts = MgOptions {
            pre_sweeps: sw,
            post_sweeps: sw,
            ..MgOptions::default()
        };
        let h = match MgHierarchy::build(a, opts, None) {
            Some(h) => h,
            None => {
                println!("NO HIERARCHY n={}", a.dim());
                return;
            }
        };
        let dims: Vec<usize> = (0..h.n_levels()).map(|l| h.level_dim(l)).collect();
        let n = a.dim();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let mut s = MgScratch::default();
        let mut z = vec![0.0; n];
        // Richardson contraction factor (asymptotic).
        let mut x = vec![0.0; n];
        let mut res = b.clone();
        let norm0: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut last = norm0;
        let mut rho = 0.0;
        for _ in 0..20 {
            h.apply(&res, &mut z, &mut s);
            for i in 0..n {
                x[i] += z[i];
            }
            let mut ax = vec![0.0; n];
            a.mul_vec(&x, &mut ax);
            for i in 0..n {
                res[i] = b[i] - ax[i];
            }
            let nr: f64 = res.iter().map(|v| v * v).sum::<f64>().sqrt();
            rho = nr / last;
            last = nr;
        }
        // True PCG iteration count to 1e-9 relative.
        let dot = |u: &[f64], v: &[f64]| -> f64 { u.iter().zip(v).map(|(a, b)| a * b).sum() };
        let mut x = vec![0.0; n];
        let mut r = b.clone();
        let bnorm = dot(&b, &b).sqrt();
        h.apply(&r, &mut z, &mut s);
        let mut pvec = z.clone();
        let mut rz = dot(&r, &z);
        let mut ap = vec![0.0; n];
        let mut iters = 0;
        for it in 1..=200 {
            a.mul_vec(&pvec, &mut ap);
            let alpha = rz / dot(&pvec, &ap);
            for i in 0..n {
                x[i] += alpha * pvec[i];
                r[i] -= alpha * ap[i];
            }
            iters = it;
            if dot(&r, &r).sqrt() <= 1e-9 * bnorm {
                break;
            }
            h.apply(&r, &mut z, &mut s);
            let rz2 = dot(&r, &z);
            let beta = rz2 / rz;
            rz = rz2;
            for i in 0..n {
                pvec[i] = z[i] + beta * pvec[i];
            }
        }
        println!(
            "chips={chips} grid={grid} sweeps={sw} dims={dims:?} rho={rho:.3} pcg_iters={iters}"
        );
    }
}
