//! The paper's experiment suite as a campaign: every table/figure
//! function from [`crate::experiments`] registered as a [`Job`] whose
//! config (experiment name + [`Quality`] knobs) is its cache identity,
//! plus a `summary` roll-up job that depends on all of them.
//!
//! Running the suite through the engine instead of the flat loop in
//! `src/bin/experiments.rs` buys parallelism across independent
//! experiments, resume after a mid-run kill, and a machine-readable
//! manifest mapping each job to its cache entry and CSV artifacts.

use immersion_campaign::fsutil::atomic_write;
use immersion_campaign::{Campaign, CampaignReport, Job};
use immersion_core::report::Table;
use serde::Serialize;
use serde_json::Value;
use std::path::{Path, PathBuf};

use crate::experiments::{run_experiment, Quality, EXPERIMENTS};

/// Name of the roll-up job that depends on every experiment.
pub const SUMMARY_JOB: &str = "summary";

/// The cache identity of one experiment job.
#[derive(Serialize)]
struct ExperimentConfig {
    experiment: String,
    quality: Quality,
}

/// Build the full campaign: one job per experiment in
/// [`EXPERIMENTS`], then a [`SUMMARY_JOB`] ordered after all of them
/// that tabulates what each produced (exercising dependency edges and
/// downstream cache invalidation).
pub fn build_campaign(q: Quality) -> Campaign {
    let mut c = Campaign::new();
    for &name in EXPERIMENTS {
        let config = ExperimentConfig {
            experiment: name.to_string(),
            quality: q,
        };
        c.add(Job::new(name, &config, move |_ctx| {
            let tables =
                run_experiment(name, q).ok_or_else(|| format!("unknown experiment '{name}'"))?;
            serde_json::to_value(&tables).map_err(|e| e.to_string())
        }));
    }

    let config = ExperimentConfig {
        experiment: SUMMARY_JOB.to_string(),
        quality: q,
    };
    let mut summary = Job::new(SUMMARY_JOB, &config, |ctx| {
        let mut t = Table::new("Campaign summary", &["experiment", "tables", "rows"]);
        for (name, output) in ctx.deps() {
            let tables = tables_from_output(output)?;
            let rows: usize = tables.iter().map(Table::len).sum();
            t.row(vec![
                name.clone(),
                tables.len().to_string(),
                rows.to_string(),
            ]);
        }
        serde_json::to_value(&vec![t]).map_err(|e| e.to_string())
    });
    for &name in EXPERIMENTS {
        summary = summary.after(name);
    }
    c.add(summary);
    c
}

/// Decode a job output (as stored in the cache) back into tables.
pub fn tables_from_output(v: &Value) -> Result<Vec<Table>, String> {
    serde_json::from_value(v).map_err(|e| e.to_string())
}

/// Write each completed job's tables to `<out>/<job>_<i>.csv`, in
/// registration order so reruns are byte-identical, atomically so a
/// kill never leaves a torn file. Returns `(job, path)` pairs for the
/// manifest's artifact list.
pub fn emit_csvs(
    campaign: &Campaign,
    report: &CampaignReport,
    out_dir: &Path,
) -> Result<Vec<(String, PathBuf)>, String> {
    let mut artifacts = Vec::new();
    for name in campaign.job_names() {
        let Some(output) = report.output(name) else {
            continue;
        };
        let tables = tables_from_output(output)?;
        for (i, t) in tables.iter().enumerate() {
            let path = out_dir.join(format!("{name}_{i}.csv"));
            atomic_write(&path, t.to_csv().as_bytes())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            artifacts.push((name.to_string(), path));
        }
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_registers_every_experiment_plus_summary() {
        let c = build_campaign(Quality::quick());
        assert_eq!(c.len(), EXPERIMENTS.len() + 1);
        let names: Vec<&str> = c.job_names().collect();
        for &e in EXPERIMENTS {
            assert!(names.contains(&e), "missing experiment job {e}");
        }
        assert_eq!(*names.last().unwrap(), SUMMARY_JOB);
    }

    #[test]
    fn experiment_outputs_round_trip_as_tables() {
        let tables = run_experiment("table1", Quality::quick()).unwrap();
        let v = serde_json::to_value(&tables).unwrap();
        let back = tables_from_output(&v).unwrap();
        assert_eq!(back.len(), tables.len());
        assert_eq!(back[0].title(), tables[0].title());
        assert_eq!(back[0].to_csv(), tables[0].to_csv());
    }
}
