//! The `watercool` CLI — see `immersion_bench::cli` for the commands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match immersion_bench::cli::parse(&args).and_then(immersion_bench::cli::run) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
