//! The experiment driver: regenerates every table and figure of the
//! paper.
//!
//! ```text
//! experiments <name>... [--quick] [--csv DIR] [--json DIR]
//! experiments all [--quick] [--csv DIR] [--json DIR]
//! experiments list
//! ```
//!
//! `--quick` trades fidelity for speed (coarser thermal grids, shorter
//! traces) — useful to smoke-test the harness. `--csv DIR` additionally
//! writes each table as a CSV file into `DIR`.

use immersion_bench::{run_experiment, Quality, EXPERIMENTS};
use immersion_campaign::fsutil::atomic_write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut names: Vec<String> = Vec::new();
    let mut quick = false;
    let mut csv_dir: Option<PathBuf> = None;
    let mut json_dir: Option<PathBuf> = None;

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory argument");
                    std::process::exit(2);
                });
                csv_dir = Some(PathBuf::from(dir));
            }
            "--json" => {
                let dir = it.next().unwrap_or_else(|| {
                    eprintln!("--json needs a directory argument");
                    std::process::exit(2);
                });
                json_dir = Some(PathBuf::from(dir));
            }
            "list" => {
                for n in EXPERIMENTS {
                    println!("{n}");
                }
                return;
            }
            "all" => names.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            other => names.push(other.to_string()),
        }
    }

    if names.is_empty() {
        eprintln!("usage: experiments <name>...|all [--quick] [--csv DIR] [--json DIR]");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        std::process::exit(2);
    }

    let q = if quick {
        Quality::quick()
    } else {
        Quality::full()
    };
    for dir in [&csv_dir, &json_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: could not create output dir {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    for name in names {
        let t0 = std::time::Instant::now();
        let Some(tables) = run_experiment(&name, q) else {
            eprintln!("unknown experiment '{name}' (try 'list')");
            std::process::exit(2);
        };
        for (i, table) in tables.iter().enumerate() {
            println!("{table}");
            if let Some(dir) = &csv_dir {
                let file = dir.join(format!("{name}_{i}.csv"));
                if let Err(e) = atomic_write(&file, table.to_csv().as_bytes()) {
                    eprintln!("error: could not write {}: {e}", file.display());
                    std::process::exit(1);
                }
            }
            if let Some(dir) = &json_dir {
                let file = dir.join(format!("{name}_{i}.json"));
                match serde_json::to_string_pretty(table) {
                    Ok(json) => {
                        if let Err(e) = atomic_write(&file, json.as_bytes()) {
                            eprintln!("error: could not write {}: {e}", file.display());
                            std::process::exit(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("error: could not serialise {}: {e}", file.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        eprintln!("[{name}: {:.1?}]", t0.elapsed());
    }
}
