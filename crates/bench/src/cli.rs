//! The `watercool` command-line interface: the library's capabilities
//! as a tool a downstream user can drive without writing Rust.
//!
//! ```text
//! watercool max-freq  --chip hf --chips 4 --cooling water [--flip]
//! watercool sweep     --chip lp --max-chips 12
//! watercool thermal-map --chip hf --chips 4 --cooling water --freq 3.6
//! watercool simulate  --benchmark CG --chips 2 --freq 2.0 --ops 50000 [--gem5-stats]
//! watercool export-flp --chip e5
//! watercool campaign  [--jobs N] [--filter GLOB] [--no-cache] [--quick] [--out DIR]
//! watercool faultsim  [--seed N] [--matrix | --site SITE --kind KIND] [--out DIR]
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency) and unit-tested
//! here; the binary in `src/bin/watercool.rs` is a thin wrapper.

use crate::campaign::{build_campaign, emit_csvs, SUMMARY_JOB};
use crate::experiments::{Quality, EXPERIMENTS};
use immersion_campaign::glob::glob_match;
use immersion_campaign::{Cache, Manifest, ProgressPrinter, RunOptions};
use immersion_core::design::CmpDesign;
use immersion_core::explorer::{frequency_vs_chips, max_frequency, solve_at};
use immersion_power::chips::{
    high_frequency_cmp, low_power_cmp, xeon_e5_2667v4, xeon_phi_7290, ChipModel,
};
use immersion_thermal::stack3d::CoolingParams;

/// A parsed command, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Maximum sustainable frequency of one design.
    MaxFreq {
        /// Chip key.
        chip: String,
        /// Stack height.
        chips: usize,
        /// Cooling key.
        cooling: String,
        /// §4.2 flip layout.
        flip: bool,
    },
    /// Frequency-vs-chips sweep over all cooling options.
    Sweep {
        /// Chip key.
        chip: String,
        /// Maximum stack height.
        max_chips: usize,
    },
    /// ASCII thermal map of the hottest die.
    ThermalMap {
        /// Chip key.
        chip: String,
        /// Stack height.
        chips: usize,
        /// Cooling key.
        cooling: String,
        /// Operating frequency, GHz.
        freq: f64,
    },
    /// Run one NPB benchmark on the CMP simulator.
    Simulate {
        /// Benchmark name (BT..UA).
        benchmark: String,
        /// Stack height.
        chips: usize,
        /// Clock, GHz.
        freq: f64,
        /// Instructions per thread.
        ops: u64,
        /// Emit gem5-style stats.txt instead of a summary.
        gem5_stats: bool,
    },
    /// Print a chip's floorplan in HotSpot .flp format.
    ExportFlp {
        /// Chip key.
        chip: String,
    },
    /// Run the experiment suite through the campaign engine.
    Campaign {
        /// Worker threads (0 = one per available core).
        jobs: usize,
        /// Glob over job names; selected jobs pull in their deps.
        filter: Option<String>,
        /// Ignore existing cache entries (fresh results still stored).
        no_cache: bool,
        /// Smoke-test quality instead of figure quality.
        quick: bool,
        /// Directory for CSVs, the manifest, and the result cache.
        out: String,
        /// Extra attempts after a first failure.
        retries: u32,
    },
    /// Deterministic fault-injection conformance matrix (or one cell).
    Faultsim {
        /// Matrix seed; each cell derives its injection occurrence
        /// from it, so a seed plus a (site, kind) pair replays a cell
        /// exactly.
        seed: u64,
        /// Run the full site × kind matrix (default when no cell is
        /// named).
        matrix: bool,
        /// Replay one cell: the hook site to inject at.
        site: Option<String>,
        /// Replay one cell: the fault kind to inject.
        kind: Option<String>,
        /// Working directory for cell caches and the JSON report.
        out: String,
    },
    /// Fixed thermal-solver benchmark writing `BENCH_thermal.json`.
    BenchThermal {
        /// CI-sized workload (small grids, single repetition).
        smoke: bool,
        /// Widest thread pool to measure (1..=N).
        threads: usize,
        /// Output path for the JSON report.
        out: String,
        /// Baseline JSON; >20% regression of mean cold CG iterations fails.
        check: Option<String>,
    },
    /// Serve the models over HTTP (or load-test the service).
    Serve {
        /// Bind address.
        addr: String,
        /// HTTP worker threads.
        threads: usize,
        /// Run the deterministic load test instead of serving forever.
        loadtest: bool,
        /// Load-test seed (the whole workload derives from it).
        seed: u64,
        /// Load-test request count.
        requests: usize,
        /// Load-test concurrent client connections.
        clients: usize,
        /// Load-test report path.
        out: String,
        /// Baseline report; >20% regression of the latency proxies
        /// (solves/request, reuse rate) fails.
        check: Option<String>,
    },
    /// Run the repo's static-analysis rules (R1–R12) over the workspace.
    Lint {
        /// Rewrite lint.allow to the current violation counts.
        fix_allowlist: bool,
        /// Report rendering: `text` (default), `json`, or `sarif`.
        format: String,
        /// Write the workspace call graph as Graphviz DOT to this path.
        emit_callgraph: Option<String>,
        /// Write the R11 lock-order graph as Graphviz DOT to this path.
        emit_lockgraph: Option<String>,
        /// Skip the `target/lint-cache` incremental cache.
        no_cache: bool,
    },
    /// Run the concurrency-sanitizer scenario and cross-validate the
    /// dynamic lock graph against the static R11 graph.
    Sanitize {
        /// Extra contended rounds after the base scenario.
        stress: usize,
        /// Seed for the faultsim plan and stress-key rotation.
        seed: u64,
        /// Artifact directory.
        out: String,
        /// Rewrite `sanitize.ratchet` to the achieved coverage.
        fix_ratchet: bool,
    },
    /// Print usage.
    Help,
}

/// Parse a command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(String::as_str);
    let sub = it.next().ok_or_else(usage)?;
    let rest: Vec<&str> = it.collect();
    let get = |flag: &str| -> Option<&str> {
        rest.iter()
            .position(|&a| a == flag)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let has = |flag: &str| rest.contains(&flag);
    let get_or = |flag: &str, default: &str| get(flag).unwrap_or(default).to_string();
    let num = |flag: &str, default: &str| -> Result<f64, String> {
        get_or(flag, default)
            .parse::<f64>()
            .map_err(|_| format!("{flag}: expected a number"))
    };
    match sub {
        "max-freq" => Ok(Command::MaxFreq {
            chip: get_or("--chip", "hf"),
            chips: num("--chips", "4")? as usize,
            cooling: get_or("--cooling", "water"),
            flip: has("--flip"),
        }),
        "sweep" => Ok(Command::Sweep {
            chip: get_or("--chip", "hf"),
            max_chips: num("--max-chips", "12")? as usize,
        }),
        "thermal-map" => Ok(Command::ThermalMap {
            chip: get_or("--chip", "hf"),
            chips: num("--chips", "4")? as usize,
            cooling: get_or("--cooling", "water"),
            freq: num("--freq", "3.6")?,
        }),
        "simulate" => Ok(Command::Simulate {
            benchmark: get_or("--benchmark", "CG"),
            chips: num("--chips", "2")? as usize,
            freq: num("--freq", "2.0")?,
            ops: num("--ops", "50000")? as u64,
            gem5_stats: has("--gem5-stats"),
        }),
        "export-flp" => Ok(Command::ExportFlp {
            chip: get_or("--chip", "hf"),
        }),
        "campaign" => Ok(Command::Campaign {
            jobs: num("--jobs", "0")? as usize,
            filter: get("--filter").map(str::to_string),
            no_cache: has("--no-cache"),
            quick: has("--quick"),
            out: get_or("--out", "results"),
            retries: num("--retries", "2")? as u32,
        }),
        "faultsim" => {
            let site = get("--site").map(str::to_string);
            let kind = get("--kind").map(str::to_string);
            if site.is_some() != kind.is_some() {
                return Err("faultsim: --site and --kind must be given together".to_string());
            }
            Ok(Command::Faultsim {
                seed: num("--seed", "42")? as u64,
                matrix: has("--matrix") || site.is_none(),
                site,
                kind,
                out: get_or("--out", "target/faultsim"),
            })
        }
        "bench" => match rest.first().copied() {
            Some("thermal") => Ok(Command::BenchThermal {
                smoke: has("--smoke"),
                threads: num("--threads", "4")? as usize,
                out: get_or("--out", "BENCH_thermal.json"),
                check: get("--check").map(str::to_string),
            }),
            other => Err(format!(
                "bench: expected a suite name ('thermal'), got {}\n{}",
                other.map_or("nothing".to_string(), |o| format!("'{o}'")),
                usage()
            )),
        },
        "serve" => Ok(Command::Serve {
            addr: get_or("--addr", "127.0.0.1:8080"),
            threads: num("--threads", "4")? as usize,
            loadtest: has("--loadtest"),
            seed: num("--seed", "42")? as u64,
            requests: num("--requests", "120")? as usize,
            clients: num("--clients", "4")? as usize,
            out: get_or("--out", "BENCH_serve.json"),
            check: get("--check").map(str::to_string),
        }),
        "lint" => {
            let format = get_or("--format", "text");
            if !matches!(format.as_str(), "text" | "json" | "sarif") {
                return Err(format!(
                    "--format: expected text|json|sarif, got '{format}'"
                ));
            }
            Ok(Command::Lint {
                fix_allowlist: has("--fix-allowlist"),
                format,
                emit_callgraph: get("--emit-callgraph").map(str::to_string),
                emit_lockgraph: get("--emit-lockgraph").map(str::to_string),
                no_cache: has("--no-cache"),
            })
        }
        "sanitize" => Ok(Command::Sanitize {
            stress: num("--stress", "0")? as usize,
            seed: num("--seed", "42")? as u64,
            out: get_or("--out", "target/sanitize"),
            fix_ratchet: has("--fix-ratchet"),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Usage text.
pub fn usage() -> String {
    "usage: watercool <command> [flags]\n\
     commands:\n\
       max-freq    --chip lp|hf|e5|phi --chips N --cooling air|pipe|oil|fc|water [--flip]\n\
       sweep       --chip lp|hf|e5|phi --max-chips N\n\
       thermal-map --chip ... --chips N --cooling ... --freq GHz\n\
       simulate    --benchmark BT..UA --chips N --freq GHz --ops N [--gem5-stats]\n\
       export-flp  --chip lp|hf|e5|phi\n\
       campaign    [--jobs N] [--filter GLOB] [--no-cache] [--quick] [--out DIR] [--retries N]\n\
       faultsim    [--seed N] [--matrix | --site SITE --kind KIND] [--out DIR]\n\
       bench       thermal [--smoke] [--threads N] [--out PATH] [--check BASELINE]\n\
       serve       [--addr HOST:PORT] [--threads N] [--loadtest] [--seed N] [--requests N]\n\
                   [--clients N] [--out PATH] [--check BASELINE]\n\
       lint        [--fix-allowlist] [--format text|json|sarif] [--emit-callgraph PATH]\n\
                   [--emit-lockgraph PATH] [--no-cache]\n\
       sanitize    [--stress N] [--seed N] [--out DIR] [--fix-ratchet]"
        .to_string()
}

/// Resolve a chip key.
pub fn chip_by_key(key: &str) -> Result<ChipModel, String> {
    match key {
        "lp" | "low-power" => Ok(low_power_cmp()),
        "hf" | "high-frequency" => Ok(high_frequency_cmp()),
        "e5" => Ok(xeon_e5_2667v4()),
        "phi" => Ok(xeon_phi_7290()),
        other => Err(format!("unknown chip '{other}' (lp|hf|e5|phi)")),
    }
}

/// Resolve a cooling key.
pub fn cooling_by_key(key: &str) -> Result<CoolingParams, String> {
    match key {
        "air" => Ok(CoolingParams::air()),
        "pipe" | "water-pipe" => Ok(CoolingParams::water_pipe()),
        "oil" | "mineral-oil" => Ok(CoolingParams::mineral_oil()),
        "fc" | "fluorinert" => Ok(CoolingParams::fluorinert()),
        "water" => Ok(CoolingParams::water_immersion()),
        other => Err(format!("unknown cooling '{other}' (air|pipe|oil|fc|water)")),
    }
}

/// Execute a parsed command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::BenchThermal {
            smoke,
            threads,
            out,
            check,
        } => crate::thermal_bench::run_and_report(&crate::thermal_bench::BenchConfig {
            smoke,
            threads,
            out,
            check,
        }),
        Command::Serve {
            addr,
            threads,
            loadtest,
            seed,
            requests,
            clients,
            out,
            check,
        } => {
            use immersion_serve::loadgen;
            if !loadtest {
                return immersion_serve::run_forever(&immersion_serve::ServeConfig {
                    addr,
                    threads,
                    state_dir: None,
                    pool_capacity: 8,
                });
            }
            let report = loadgen::run_loadtest(&loadgen::LoadConfig {
                seed,
                requests,
                clients,
                threads,
            })?;
            let out_path = std::path::PathBuf::from(&out);
            loadgen::write_report(&report, &out_path)?;
            let det = |k: &str| -> String {
                report
                    .get("deterministic")
                    .and_then(|d| d.get(k))
                    .map(|v| serde_json::to_string(v).unwrap_or_default())
                    .unwrap_or_else(|| "?".to_string())
            };
            let timing = |k: &str| -> String {
                report
                    .get("timing")
                    .and_then(|t| t.get(k))
                    .map(|v| serde_json::to_string(v).unwrap_or_default())
                    .unwrap_or_else(|| "?".to_string())
            };
            let mut text = format!(
                "serve loadtest: seed {seed}, {} requests over {} client(s), {} server thread(s)\n\
                 distinct bodies {}, solves {}, deduped {} (reuse rate {})\n\
                 latency p50 {} us, p99 {} us, throughput {} req/s\n\
                 report: {}\n",
                det("requests"),
                det("clients"),
                det("threads"),
                det("distinct_bodies"),
                det("solves_total"),
                det("dedup_total"),
                det("reuse_rate"),
                timing("latency_p50_us"),
                timing("latency_p99_us"),
                timing("throughput_rps"),
                out_path.display(),
            );
            if let Some(baseline_path) = check {
                let baseline = loadgen::load_report(std::path::Path::new(&baseline_path))?;
                match loadgen::check_against_baseline(&report, &baseline) {
                    Ok(passes) => {
                        text.push_str(&format!("baseline check vs {baseline_path}:\n"));
                        for p in passes {
                            text.push_str(&format!("  ok: {p}\n"));
                        }
                    }
                    Err(failures) => {
                        let mut msg = format!("{text}baseline check vs {baseline_path} FAILED:\n");
                        for f in failures {
                            msg.push_str(&format!("  {f}\n"));
                        }
                        return Err(msg);
                    }
                }
            }
            Ok(text)
        }
        Command::Lint {
            fix_allowlist,
            format,
            emit_callgraph,
            emit_lockgraph,
            no_cache,
        } => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            let root = immersion_lint::find_workspace_root(&cwd)
                .ok_or("not inside a cargo workspace (no Cargo.toml with [workspace] above cwd)")?;
            if let Some(path) = emit_callgraph {
                let dot = immersion_lint::emit_callgraph_dot(&root)
                    .map_err(|e| e.to_string())?
                    .map_err(|errs| format!("call graph unavailable:\n{}", errs.join("\n")))?;
                std::fs::write(&path, dot).map_err(|e| format!("{path}: {e}"))?;
            }
            if let Some(path) = emit_lockgraph {
                let dot = immersion_lint::emit_lockgraph_dot(&root)
                    .map_err(|e| e.to_string())?
                    .map_err(|errs| format!("lock graph unavailable:\n{}", errs.join("\n")))?;
                std::fs::write(&path, dot).map_err(|e| format!("{path}: {e}"))?;
            }
            let report = immersion_lint::lint_workspace_with(&root, fix_allowlist, !no_cache)
                .map_err(|e| e.to_string())?;
            let text = match format.as_str() {
                "json" => immersion_lint::report::to_json(&report),
                "sarif" => immersion_lint::report::to_sarif(&report),
                _ => report.render(),
            };
            if report.is_clean() {
                Ok(text)
            } else {
                Err(text)
            }
        }
        Command::Sanitize {
            stress,
            seed,
            out,
            fix_ratchet,
        } => crate::sanitize::run_and_report(&crate::sanitize::SanitizeConfig {
            stress,
            seed,
            out: std::path::PathBuf::from(out),
            fix_ratchet,
        }),
        Command::Faultsim {
            seed,
            matrix,
            site,
            kind,
            out,
        } => {
            use crate::faultharness;
            use immersion_faultsim::FaultKind;
            let out_dir = std::path::PathBuf::from(&out);
            if let (Some(site), Some(kind_name)) = (site.as_deref(), kind.as_deref()) {
                let k = FaultKind::from_name(kind_name).ok_or_else(|| {
                    format!(
                        "unknown fault kind '{kind_name}' (one of: {})",
                        FaultKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })?;
                if site.starts_with("serve::") {
                    let cell = immersion_serve::faultcells::run_serve_single(
                        seed,
                        site,
                        k,
                        &out_dir.join("serve"),
                    )?;
                    let text = format!(
                        "serve cell {} / {} (seed {seed}): {} fault(s) fired, status {}, \
                         {} quarantined\n{}",
                        cell.site,
                        cell.kind,
                        cell.injected,
                        cell.fault_status,
                        cell.quarantined,
                        if cell.passed {
                            "all invariants held".to_string()
                        } else {
                            format!("FAILED: {}\nreplay: {}", cell.detail, cell.replay_line())
                        }
                    );
                    return if cell.passed { Ok(text) } else { Err(text) };
                }
                let cell = faultharness::run_single(seed, site, k, &out_dir)?;
                let text = format!(
                    "cell {} / {} (seed {seed}, occurrence {}): {} fault(s) fired, \
                     {} corrupt entr(ies) quarantined\n{}",
                    cell.site,
                    cell.kind,
                    cell.nth,
                    cell.injected,
                    cell.corrupt_entries,
                    if cell.passed {
                        "all invariants held".to_string()
                    } else {
                        format!("FAILED: {}\nreplay: {}", cell.detail, cell.replay_line())
                    }
                );
                if cell.passed {
                    Ok(text)
                } else {
                    Err(text)
                }
            } else {
                debug_assert!(matrix);
                let report = faultharness::run_matrix(seed, &out_dir)?;
                let report_path = out_dir.join("faultsim_report.json");
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                immersion_campaign::fsutil::atomic_write(&report_path, json.as_bytes())
                    .map_err(|e| e.to_string())?;
                let serve_report =
                    immersion_serve::faultcells::run_serve_matrix(seed, &out_dir.join("serve"))?;
                let serve_path = out_dir.join("faultsim_serve_report.json");
                let serve_json =
                    serde_json::to_string_pretty(&serve_report).map_err(|e| e.to_string())?;
                immersion_campaign::fsutil::atomic_write(&serve_path, serve_json.as_bytes())
                    .map_err(|e| e.to_string())?;
                let text = format!(
                    "{}report: {}\n\n{}report: {}",
                    report.render(),
                    report_path.display(),
                    serve_report.render(),
                    serve_path.display()
                );
                if report.passed() && serve_report.passed() {
                    Ok(text)
                } else {
                    Err(text)
                }
            }
        }
        Command::MaxFreq {
            chip,
            chips,
            cooling,
            flip,
        } => {
            let d = CmpDesign::new(chip_by_key(&chip)?, chips, cooling_by_key(&cooling)?)
                .with_flip(flip);
            match max_frequency(&d) {
                Some(step) => {
                    let model = d.thermal_model().map_err(|e| e.to_string())?;
                    let sol = solve_at(&d, &model, step, None).map_err(|e| e.to_string())?;
                    Ok(format!(
                        "{chip} x{chips} under {cooling}{}: {:.1} GHz (peak {:.1} C, threshold {:.0} C)",
                        if flip { " (flip)" } else { "" },
                        step.freq_ghz,
                        sol.die_max(),
                        d.threshold()
                    ))
                }
                None => Ok(format!(
                    "{chip} x{chips} under {cooling}: infeasible at every VFS step"
                )),
            }
        }
        Command::Sweep { chip, max_chips } => {
            let model = chip_by_key(&chip)?;
            let mut out = format!("max frequency (GHz) vs chips, {chip}:\n");
            for cooling in CoolingParams::paper_options() {
                let base = CmpDesign::new(model.clone(), 1, cooling).with_grid(8, 8);
                out.push_str(&format!("{:>12}", cooling.name));
                for (_, step) in frequency_vs_chips(&base, max_chips) {
                    match step {
                        Some(s) => out.push_str(&format!("{:>6.1}", s.freq_ghz)),
                        None => out.push_str(&format!("{:>6}", "-")),
                    }
                }
                out.push('\n');
            }
            Ok(out)
        }
        Command::ThermalMap {
            chip,
            chips,
            cooling,
            freq,
        } => {
            let model_chip = chip_by_key(&chip)?;
            let step = model_chip
                .vfs
                .step_at_or_below(freq)
                .ok_or(format!("{freq} GHz below this chip's VFS range"))?;
            let d = CmpDesign::new(model_chip, chips, cooling_by_key(&cooling)?);
            let model = d.thermal_model().map_err(|e| e.to_string())?;
            let sol = solve_at(&d, &model, step, None).map_err(|e| e.to_string())?;
            let map = sol.die_map(0).ok_or("no die map")?;
            Ok(format!(
                "bottom die at {:.1} GHz under {cooling} ({:.1}..{:.1} C):\n{}",
                step.freq_ghz,
                map.min(),
                map.max(),
                map.ascii()
            ))
        }
        Command::Simulate {
            benchmark,
            chips,
            freq,
            ops,
            gem5_stats,
        } => {
            use immersion_archsim::{System, SystemConfig};
            use immersion_npb::{Benchmark, TraceGenerator};
            let bench = Benchmark::all()
                .into_iter()
                .find(|b| b.name().eq_ignore_ascii_case(&benchmark))
                .ok_or(format!("unknown benchmark '{benchmark}' (BT..UA)"))?;
            let cfg = SystemConfig::baseline(chips, freq);
            let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 42);
            let stats = System::new(cfg).run(&gen);
            if gem5_stats {
                Ok(stats.to_stats_txt())
            } else {
                Ok(format!(
                    "{} on {chips} chip(s) @ {freq} GHz: {:.3} ms, IPC {:.3}, \
                     L1 miss {:.1}%, DRAM {} fetches, p50/p99 miss {}/{} ns",
                    bench.name(),
                    stats.exec_time_secs * 1e3,
                    stats.ipc,
                    stats.l1_miss_rate * 100.0,
                    stats.dram_accesses,
                    stats.p50_miss_latency_ns,
                    stats.p99_miss_latency_ns
                ))
            }
        }
        Command::ExportFlp { chip } => {
            let model = chip_by_key(&chip)?;
            Ok(immersion_thermal::hotspot_compat::to_flp(&model.floorplan))
        }
        Command::Campaign {
            jobs,
            filter,
            no_cache,
            quick,
            out,
            retries,
        } => {
            let q = if quick {
                Quality::quick()
            } else {
                Quality::full()
            };
            let c = build_campaign(q);
            let out_dir = std::path::PathBuf::from(&out);
            let cache_dir = out_dir.join("cache");
            let opts = RunOptions {
                workers: jobs,
                cache_dir: Some(cache_dir.clone()),
                use_cache: !no_cache,
                retries,
                filter: filter.clone(),
                ..RunOptions::default()
            };
            // The summary job depends on everything, so a filter that
            // matches it selects the whole suite.
            let total = match filter.as_deref() {
                None => c.len(),
                Some(g) if glob_match(g, SUMMARY_JOB) => c.len(),
                Some(g) => EXPERIMENTS.iter().filter(|n| glob_match(g, n)).count(),
            };
            let progress = ProgressPrinter::new(total);
            let report = c
                .run(&opts, &|ev| progress.handle(ev))
                .map_err(|e| e.to_string())?;
            let artifacts = emit_csvs(&c, &report, &out_dir)?;
            let cache = Cache::open(&cache_dir).map_err(|e| e.to_string())?;
            let mut manifest = Manifest::from_report(&report, jobs, Some(&cache));
            for (job, path) in &artifacts {
                manifest.add_artifact(job, path.display().to_string());
            }
            let manifest_path = out_dir.join("campaign_manifest.json");
            manifest.write(&manifest_path).map_err(|e| e.to_string())?;
            let completed = report.jobs.len() - report.failed - report.skipped;
            let summary = format!(
                "{} job(s): {completed} ok ({} from cache), {} failed, {} skipped \
                 in {:.1}s; cache hit rate {:.0}%\n\
                 {} CSV file(s) under {}; manifest at {}",
                report.jobs.len(),
                report.cache_hits,
                report.failed,
                report.skipped,
                report.wall_ms as f64 / 1000.0,
                report.cache_hit_rate() * 100.0,
                artifacts.len(),
                out_dir.display(),
                manifest_path.display()
            );
            if report.all_ok() {
                Ok(summary)
            } else {
                Err(summary)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_max_freq() {
        let cmd = parse(&args("max-freq --chip lp --chips 6 --cooling oil --flip")).unwrap();
        assert_eq!(
            cmd,
            Command::MaxFreq {
                chip: "lp".into(),
                chips: 6,
                cooling: "oil".into(),
                flip: true
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let cmd = parse(&args("max-freq")).unwrap();
        assert_eq!(
            cmd,
            Command::MaxFreq {
                chip: "hf".into(),
                chips: 4,
                cooling: "water".into(),
                flip: false
            }
        );
    }

    #[test]
    fn parses_sanitize() {
        let cmd = parse(&args(
            "sanitize --stress 500 --seed 7 --out scratch --fix-ratchet",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sanitize {
                stress: 500,
                seed: 7,
                out: "scratch".into(),
                fix_ratchet: true
            }
        );
        let cmd = parse(&args("sanitize")).unwrap();
        assert_eq!(
            cmd,
            Command::Sanitize {
                stress: 0,
                seed: 42,
                out: "target/sanitize".into(),
                fix_ratchet: false
            }
        );
    }

    #[test]
    fn rejects_unknown_command_and_bad_numbers() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("sweep --max-chips banana")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn chip_and_cooling_keys_resolve() {
        for k in ["lp", "hf", "e5", "phi"] {
            assert!(chip_by_key(k).is_ok());
        }
        assert!(chip_by_key("486").is_err());
        for k in ["air", "pipe", "oil", "fc", "water"] {
            assert!(cooling_by_key(k).is_ok());
        }
        assert!(cooling_by_key("lava").is_err());
    }

    #[test]
    fn max_freq_runs_end_to_end() {
        let out =
            run(parse(&args("max-freq --chip hf --chips 2 --cooling water")).unwrap()).unwrap();
        assert!(out.contains("GHz"), "{out}");
    }

    #[test]
    fn simulate_runs_and_emits_gem5_stats() {
        let out = run(parse(&args(
            "simulate --benchmark EP --chips 1 --freq 2.0 --ops 2000 --gem5-stats",
        ))
        .unwrap())
        .unwrap();
        assert!(out.contains("sim_insts"));
    }

    #[test]
    fn export_flp_is_parsable() {
        let out = run(parse(&args("export-flp --chip phi")).unwrap()).unwrap();
        let fp = immersion_thermal::hotspot_compat::from_flp(&out).unwrap();
        assert_eq!(fp.len(), 36);
    }

    #[test]
    fn parses_campaign_with_defaults_and_flags() {
        assert_eq!(
            parse(&args("campaign")).unwrap(),
            Command::Campaign {
                jobs: 0,
                filter: None,
                no_cache: false,
                quick: false,
                out: "results".into(),
                retries: 2,
            }
        );
        assert_eq!(
            parse(&args(
                "campaign --jobs 4 --filter fig1* --no-cache --quick --out /tmp/x --retries 0"
            ))
            .unwrap(),
            Command::Campaign {
                jobs: 4,
                filter: Some("fig1*".into()),
                no_cache: true,
                quick: true,
                out: "/tmp/x".into(),
                retries: 0,
            }
        );
    }

    #[test]
    fn parses_faultsim() {
        assert_eq!(
            parse(&args("faultsim")).unwrap(),
            Command::Faultsim {
                seed: 42,
                matrix: true,
                site: None,
                kind: None,
                out: "target/faultsim".into(),
            }
        );
        assert_eq!(
            parse(&args(
                "faultsim --seed 7 --site thermal::cg --kind diverge --out /tmp/fs"
            ))
            .unwrap(),
            Command::Faultsim {
                seed: 7,
                matrix: false,
                site: Some("thermal::cg".into()),
                kind: Some("diverge".into()),
                out: "/tmp/fs".into(),
            }
        );
        assert!(parse(&args("faultsim --site thermal::cg")).is_err());
        assert!(parse(&args("faultsim --kind diverge")).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                threads: 4,
                loadtest: false,
                seed: 42,
                requests: 120,
                clients: 4,
                out: "BENCH_serve.json".into(),
                check: None,
            }
        );
        assert_eq!(
            parse(&args(
                "serve --addr 0.0.0.0:9000 --threads 1 --loadtest --seed 7 --requests 30 \
                 --clients 2 --out /tmp/s.json --check BENCH_serve.json"
            ))
            .unwrap(),
            Command::Serve {
                addr: "0.0.0.0:9000".into(),
                threads: 1,
                loadtest: true,
                seed: 7,
                requests: 30,
                clients: 2,
                out: "/tmp/s.json".into(),
                check: Some("BENCH_serve.json".into()),
            }
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run(Command::Help).unwrap();
        assert!(out.contains("watercool"));
    }

    #[test]
    fn parses_bench_thermal() {
        assert_eq!(
            parse(&args("bench thermal")).unwrap(),
            Command::BenchThermal {
                smoke: false,
                threads: 4,
                out: "BENCH_thermal.json".into(),
                check: None,
            }
        );
        assert_eq!(
            parse(&args(
                "bench thermal --smoke --threads 2 --out /tmp/b.json --check BENCH_baseline.json"
            ))
            .unwrap(),
            Command::BenchThermal {
                smoke: true,
                threads: 2,
                out: "/tmp/b.json".into(),
                check: Some("BENCH_baseline.json".into()),
            }
        );
        assert!(parse(&args("bench")).is_err());
        assert!(parse(&args("bench quantum")).is_err());
    }
}
