//! The fault-matrix conformance harness: every hook site crossed with
//! every fault kind, each cell asserting the invariants that make the
//! campaign/thermal stack safe to trust after a failure.
//!
//! ## The cell protocol
//!
//! One **reference run** executes a small demo campaign (an arithmetic
//! diamond plus a real thermal solve and a real explorer search)
//! fault-free and records its canonical manifest and outputs. Each
//! cell then:
//!
//! 1. arms a seeded [`FaultPlan`] injecting its `(site, kind)` on a
//!    seed-derived occurrence and re-runs the campaign from an empty
//!    cache (single worker, so the probe order — and therefore the
//!    injection point — is a pure function of the seed);
//! 2. asserts the faulted run still converges to the **bitwise
//!    canonical manifest** of the reference run (retries and fallbacks
//!    must recover, not approximately but exactly);
//! 3. disarms and **resumes** over the surviving cache, asserting that
//!    resumed outputs are bitwise-identical, that cache hits equal
//!    exactly the valid entries the faulted run left behind (no
//!    corrupt entry ever becomes a hit, no valid entry is wasted), and
//!    that every corrupt entry was quarantined to `.poison`.
//!
//! A failing cell prints its replay line:
//! `watercool faultsim --seed N --site S --kind K`.

use immersion_campaign::hash::fnv1a64;
use immersion_campaign::{CacheEntry, Campaign, CampaignReport, Event, Job, Manifest, RunOptions};
use immersion_core::design::CmpDesign;
use immersion_core::explorer::{max_frequency, peak_temperature};
use immersion_desim::SplitMix64;
use immersion_faultsim::{
    self as faultsim, with_quiet_injected_panics, FaultKind, FaultPlan, FaultRule, Trigger,
};
use immersion_power::chips::low_power_cmp;
use immersion_thermal::stack3d::CoolingParams;
use serde::Serialize;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The matrix axes: every hook site crossed with every fault kind.
/// Kinds inapplicable at a site (e.g. a torn write at a CG solve)
/// still fire, and must be survived as no-ops.
pub const MATRIX_SITES: [&str; 7] = faultsim::site::ALL;

/// The fault kinds of the matrix.
pub const MATRIX_KINDS: [FaultKind; 6] = FaultKind::ALL;

/// The demo campaign the matrix drives: a dependency diamond of cheap
/// arithmetic jobs, one real steady-state thermal solve, one real
/// explorer binary search, and a rollup depending on all of them —
/// small enough to run dozens of times, real enough to cross every
/// instrumented layer (cache, fsutil, scheduler, thermal CG, explorer
/// warm starts).
pub fn demo_campaign() -> Campaign {
    let mut c = Campaign::new();
    c.add(Job::new("alpha", &6u64, |_| Ok(Value::U64(6))));
    c.add(Job::new("beta", &7u64, |_| Ok(Value::U64(7))));
    c.add(
        Job::new("gamma", &"product", |ctx| {
            let a = ctx
                .dep("alpha")
                .and_then(Value::as_u64)
                .ok_or("alpha output missing")?;
            let b = ctx
                .dep("beta")
                .and_then(Value::as_u64)
                .ok_or("beta output missing")?;
            Ok(Value::U64(a * b))
        })
        .after("alpha")
        .after("beta"),
    );
    c.add(Job::new("hotspot", &"lp x2 water 8x8 peak", |_| {
        let d = demo_design();
        let model = d.thermal_model().map_err(|e| e.to_string())?;
        let step = d.chip.vfs.max_step();
        let t = peak_temperature(&d, &model, step).map_err(|e| e.to_string())?;
        Ok(Value::Str(format!("{t:.3}")))
    }));
    c.add(Job::new("maxfreq", &"lp x2 water 8x8 search", |_| {
        let d = demo_design();
        let f = max_frequency(&d)
            .map(|s| format!("{:.3}", s.freq_ghz))
            .unwrap_or_else(|| "infeasible".to_string());
        Ok(Value::Str(f))
    }));
    c.add(
        Job::new("rollup", &"rollup", |ctx| {
            Ok(Value::Map(ctx.deps().clone()))
        })
        .after("gamma")
        .after("hotspot")
        .after("maxfreq"),
    );
    c
}

fn demo_design() -> CmpDesign {
    CmpDesign::new(low_power_cmp(), 2, CoolingParams::water_immersion()).with_grid(8, 8)
}

/// Run the demo campaign over `cache_dir` with `workers` threads.
/// Retries are generous (the matrix injects at most two failures per
/// site) and backoffs are trimmed to keep the matrix fast.
pub fn run_demo(
    cache_dir: &Path,
    workers: usize,
    on_event: &(dyn Fn(&Event) + Sync),
) -> Result<(CampaignReport, Manifest), String> {
    let campaign = demo_campaign();
    let opts = RunOptions {
        workers,
        cache_dir: Some(cache_dir.to_path_buf()),
        use_cache: true,
        retries: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 4,
        filter: None,
    };
    let report = campaign.run(&opts, on_event).map_err(|e| e.to_string())?;
    let manifest = Manifest::from_report(&report, workers, None);
    Ok((report, manifest))
}

/// What the fault-free world computed: the yardstick every cell is
/// measured against, bitwise.
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    /// Canonical manifest JSON of the fault-free run.
    pub canonical: String,
    /// Canonical JSON of the fault-free job outputs.
    pub outputs_json: String,
    /// Number of jobs in the demo campaign.
    pub jobs: usize,
}

/// Remove a cell/reference scratch directory ahead of a fresh run.
/// Absence is the normal case; any other failure is logged rather than
/// swallowed — the subsequent create fails loudly if the directory is
/// truly unusable.
fn clean_scratch(dir: &Path) {
    match std::fs::remove_dir_all(dir) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => eprintln!(
            "warning: could not clean scratch dir {}: {e}",
            dir.display()
        ),
    }
}

/// Execute the fault-free reference run in `dir` (recreated fresh).
pub fn reference_run(dir: &Path) -> Result<ReferenceRun, String> {
    clean_scratch(dir);
    let (report, manifest) = run_demo(&dir.join("cache"), 1, &|_| {})?;
    if !report.all_ok() {
        return Err("reference run did not complete cleanly".to_string());
    }
    Ok(ReferenceRun {
        canonical: manifest.canonical_json(),
        outputs_json: outputs_json(&report),
        jobs: report.jobs.len(),
    })
}

/// Canonical JSON of a report's job outputs.
pub fn outputs_json(report: &CampaignReport) -> String {
    serde_json::to_string_pretty(&Value::Map(report.outputs.clone())).unwrap_or_default()
}

/// The plan a cell arms: the cell's `(site, kind)` on a seed-derived
/// occurrence (1st or 2nd reach of the site), plus — for the retry
/// site, which is only reachable after a first failure — two benign
/// spawn-site failures to force retries into existence. Returns the
/// plan and the chosen occurrence.
pub fn cell_plan(seed: u64, site: &str, kind: FaultKind) -> (FaultPlan, u64) {
    let mix = seed ^ fnv1a64(site.as_bytes()) ^ fnv1a64(kind.name().as_bytes()).rotate_left(17);
    let nth = 1 + SplitMix64::new(mix).next_below(2);
    let mut plan = FaultPlan::new(seed);
    if site == faultsim::site::SCHED_RETRY {
        plan = plan
            .with_rule(FaultRule::new(
                faultsim::site::SCHED_SPAWN,
                FaultKind::IoError,
                Trigger::Nth(1),
            ))
            .with_rule(FaultRule::new(
                faultsim::site::SCHED_SPAWN,
                FaultKind::IoError,
                Trigger::Nth(2),
            ));
    }
    plan = plan.with_rule(FaultRule::new(site, kind, Trigger::Nth(nth)));
    (plan, nth)
}

/// One matrix cell's outcome.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct CellReport {
    /// Hook site injected.
    pub site: String,
    /// Fault kind injected (stable name).
    pub kind: String,
    /// Matrix seed.
    pub seed: u64,
    /// Seed-derived occurrence the fault fired on.
    pub nth: u64,
    /// Faults that actually fired during the faulted run.
    pub injected: usize,
    /// Corrupt cache entries the faulted run left behind (all of which
    /// must be quarantined, never hit, by the resume).
    pub corrupt_entries: usize,
    /// Did every invariant hold?
    pub passed: bool,
    /// Failed invariants, `;`-joined (empty when passed).
    pub detail: String,
}

impl CellReport {
    /// The command line that replays exactly this cell.
    pub fn replay_line(&self) -> String {
        format!(
            "watercool faultsim --seed {} --site {} --kind {}",
            self.seed, self.site, self.kind
        )
    }
}

/// Count the `.json` entries under `dir` that parse as valid cache
/// entries vs. those present but corrupt. Reads raw bytes — never
/// through [`immersion_campaign::Cache`] — so scanning does not
/// quarantine anything.
fn scan_entries(dir: &Path) -> (usize, usize) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return (0, 0);
    };
    let (mut valid, mut corrupt) = (0, 0);
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let parsed = std::fs::read(&path)
            .ok()
            .and_then(|b| serde_json::from_slice::<CacheEntry>(&b).ok());
        match parsed {
            Some(_) => valid += 1,
            None => corrupt += 1,
        }
    }
    (valid, corrupt)
}

/// Run one matrix cell in `cell_dir` (recreated fresh). Every
/// invariant violation lands in the returned report's `detail`; the
/// function itself only errs on harness-level failures.
pub fn run_cell(
    seed: u64,
    site: &str,
    kind: FaultKind,
    cell_dir: &Path,
    reference: &ReferenceRun,
) -> CellReport {
    clean_scratch(cell_dir);
    let cache_dir = cell_dir.join("cache");
    let (plan, nth) = cell_plan(seed, site, kind);
    let mut problems: Vec<String> = Vec::new();

    // --- Faulted run, from an empty cache.
    let armed = faultsim::install(plan);
    let faulted = run_demo(&cache_dir, 1, &|_| {});
    let injected = armed.hit_count();
    drop(armed);
    match &faulted {
        Ok((report, manifest)) => {
            if !report.all_ok() {
                problems.push(format!(
                    "faulted run did not recover: {} failed, {} skipped",
                    report.failed, report.skipped
                ));
            } else if manifest.canonical_json() != reference.canonical {
                problems.push("faulted-run manifest != fault-free manifest".to_string());
            }
        }
        Err(e) => problems.push(format!("faulted run errored: {e}")),
    }
    if injected == 0 {
        problems.push("plan never fired (site unreachable?)".to_string());
    }

    // --- Cache state the crash left behind.
    let (valid, corrupt) = scan_entries(&cache_dir);

    // --- Resume run, fault-free, over the surviving cache.
    let events: Mutex<Vec<Event>> = Mutex::new(Vec::new());
    let resumed = run_demo(&cache_dir, 1, &|ev| {
        if let Ok(mut v) = events.lock() {
            v.push(ev.clone());
        }
    });
    match &resumed {
        Ok((report, manifest)) => {
            if !report.all_ok() {
                problems.push("resume did not complete".to_string());
            }
            if manifest.canonical_json() != reference.canonical {
                problems.push("resumed manifest != fault-free manifest".to_string());
            }
            if outputs_json(report) != reference.outputs_json {
                problems.push("resumed outputs != fault-free outputs".to_string());
            }
            if report.cache_hits != valid {
                problems.push(format!(
                    "resume hit {} cached jobs but the faulted run left {} valid entries",
                    report.cache_hits, valid
                ));
            }
            if report.cache_misses != reference.jobs - valid {
                problems.push(format!(
                    "resume re-ran {} jobs, expected {}",
                    report.cache_misses,
                    reference.jobs - valid
                ));
            }
            let poisoned = events
                .lock()
                .map(|v| {
                    v.iter()
                        .filter(|e| matches!(e, Event::CachePoisoned { .. }))
                        .count()
                })
                .unwrap_or(0);
            if poisoned != corrupt {
                problems.push(format!(
                    "{corrupt} corrupt entries on disk but {poisoned} quarantine events"
                ));
            }
        }
        Err(e) => problems.push(format!("resume errored: {e}")),
    }
    let (_, corrupt_after) = scan_entries(&cache_dir);
    if corrupt_after != 0 {
        problems.push(format!(
            "{corrupt_after} corrupt entries survived the resume unquarantined"
        ));
    }

    CellReport {
        site: site.to_string(),
        kind: kind.name().to_string(),
        seed,
        nth,
        injected,
        corrupt_entries: corrupt,
        passed: problems.is_empty(),
        detail: problems.join("; "),
    }
}

/// The whole matrix's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct MatrixReport {
    /// Matrix seed (every cell derives its occurrence from it).
    pub seed: u64,
    /// Per-cell outcomes, site-major in matrix order.
    pub cells: Vec<CellReport>,
}

impl MatrixReport {
    /// Did every cell pass?
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.passed)
    }

    /// Human-readable table plus replay lines for failing cells.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fault matrix: seed {}, {} cells ({} sites x {} kinds)\n",
            self.seed,
            self.cells.len(),
            MATRIX_SITES.len(),
            MATRIX_KINDS.len()
        );
        out.push_str(&format!(
            "{:<30} {:<12} {:>3} {:>4} {:>8}  result\n",
            "site", "kind", "nth", "hits", "corrupt"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<30} {:<12} {:>3} {:>4} {:>8}  {}\n",
                c.site,
                c.kind,
                c.nth,
                c.injected,
                c.corrupt_entries,
                if c.passed { "ok" } else { "FAILED" }
            ));
        }
        let failed: Vec<&CellReport> = self.cells.iter().filter(|c| !c.passed).collect();
        if failed.is_empty() {
            out.push_str("all cells passed\n");
        } else {
            out.push_str(&format!("{} cell(s) FAILED:\n", failed.len()));
            for c in failed {
                out.push_str(&format!("  {}\n    {}\n", c.replay_line(), c.detail));
            }
        }
        out
    }
}

/// Run the full site × kind matrix under `root` (recreated fresh).
pub fn run_matrix(seed: u64, root: &Path) -> Result<MatrixReport, String> {
    with_quiet_injected_panics(|| {
        let reference = reference_run(&root.join("reference"))?;
        let mut cells = Vec::new();
        for site in MATRIX_SITES {
            for kind in MATRIX_KINDS {
                let cell_dir = root.join(cell_dir_name(site, kind));
                cells.push(run_cell(seed, site, kind, &cell_dir, &reference));
            }
        }
        Ok(MatrixReport { seed, cells })
    })
}

/// Replay a single cell (the CLI's `--site S --kind K` path).
pub fn run_single(
    seed: u64,
    site: &str,
    kind: FaultKind,
    root: &Path,
) -> Result<CellReport, String> {
    if !MATRIX_SITES.contains(&site) {
        return Err(format!(
            "unknown site '{site}' (one of: {})",
            MATRIX_SITES.join(", ")
        ));
    }
    with_quiet_injected_panics(|| {
        let reference = reference_run(&root.join("reference"))?;
        let cell_dir = root.join(cell_dir_name(site, kind));
        Ok(run_cell(seed, site, kind, &cell_dir, &reference))
    })
}

fn cell_dir_name(site: &str, kind: FaultKind) -> PathBuf {
    PathBuf::from(format!("{}-{}", site.replace("::", "_"), kind.name()))
}

//
/// Outputs of the demo campaign as a `name -> value` map, for direct
/// inspection in tests.
pub fn output_map(report: &CampaignReport) -> BTreeMap<String, Value> {
    report.outputs.clone()
}
