//! The `watercool bench thermal` workload: a fixed, repeatable solver
//! benchmark seeding the repo's perf trajectory.
//!
//! Three grid sizes of the 8-chip water-immersion fixture are solved
//! cold (ambient guess, solver state reset) and warm (second solve of
//! the same operating point) on thread pools of width 1..=N, recording
//! wall-clock, CG iterations, and speedup vs. the 1-thread pool. Each
//! grid is measured with the multigrid preconditioner (the default)
//! across all pool widths and with plain Jacobi at width 1 as the
//! comparison arm. On top of that, the explorer's binary search runs
//! warm- and cold-start on the same fixture to measure the
//! solver-state-reuse saving in CG iterations. CI gates on two
//! machine-independent numbers: mean cold multigrid iterations must
//! not regress >20% vs. the checked-in baseline, and no cold
//! multigrid solve of the 8-chip fixture may exceed
//! [`MG_COLD_ITER_CAP`] iterations.

use immersion_core::design::CmpDesign;
use immersion_core::explorer::max_frequency_searched;
use immersion_power::chips::low_power_cmp;
use immersion_thermal::stack3d::CoolingParams;
use immersion_thermal::PrecondChoice;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Hard ceiling on cold multigrid CG iterations for the 8-chip
/// fixture (any grid). The hierarchy converges in ~13; Jacobi needs
/// ~130 — tripping this means the multigrid path silently degraded
/// or fell back.
pub const MG_COLD_ITER_CAP: usize = 20;

/// How to run the benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Smoke mode: smallest grids, one repetition — CI-sized.
    pub smoke: bool,
    /// Widest thread pool to measure (1..=threads).
    pub threads: usize,
    /// Output path for the JSON report.
    pub out: String,
    /// Baseline JSON to compare against; >20% regression of mean cold
    /// CG iterations is an error.
    pub check: Option<String>,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        BenchConfig {
            smoke: false,
            threads: 4,
            out: "BENCH_thermal.json".to_string(),
            check: None,
        }
    }
}

/// One (grid, threads) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveCase {
    /// Lateral grid resolution (nx = ny).
    pub grid: usize,
    /// Thermal nodes in the model.
    pub nodes: usize,
    /// Which preconditioner this case ran: `"multigrid"` or `"jacobi"`.
    pub precond: String,
    /// Thread-pool width used.
    pub threads: usize,
    /// Cold solve wall-clock, milliseconds (best of `reps`).
    pub cold_wall_ms: f64,
    /// Cold solve CG iterations.
    pub cold_iters: usize,
    /// Warm re-solve wall-clock, milliseconds (best of `reps`).
    pub warm_wall_ms: f64,
    /// Warm re-solve CG iterations.
    pub warm_iters: usize,
    /// Cold wall-clock of the 1-thread pool divided by this case's —
    /// the fork-join speedup.
    pub speedup_vs_1t: f64,
}

/// Warm- vs cold-start explorer search on the fixture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchComparison {
    /// Binary-search probes (identical in both modes).
    pub probes: usize,
    /// Total CG iterations, every solve from the ambient guess.
    pub cold_cg_iterations: usize,
    /// Total CG iterations with full solver-state reuse.
    pub warm_cg_iterations: usize,
    /// `1 − warm/cold`, as a percentage.
    pub saving_pct: f64,
}

/// The full benchmark report written to `BENCH_thermal.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report format version.
    pub version: u32,
    /// Smoke mode?
    pub smoke: bool,
    /// Hardware threads the machine actually has — speedups are only
    /// meaningful when this is >= the pool width.
    pub threads_available: usize,
    /// Per-(grid, precond, threads) solver measurements.
    pub cases: Vec<SolveCase>,
    /// Mean cold CG iterations across the multigrid cases — the CI
    /// regression gate.
    pub mean_cold_iters: f64,
    /// Explorer warm-vs-cold comparison on the 8-chip fixture.
    pub search: SearchComparison,
}

/// The 8-chip water-immersion fixture at lateral resolution `grid`.
fn fixture(grid: usize) -> CmpDesign {
    CmpDesign::new(low_power_cmp(), 8, CoolingParams::water_immersion()).with_grid(grid, grid)
}

/// Grid sizes measured per mode.
fn grids(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![8, 12, 16]
    } else {
        vec![8, 16, 32]
    }
}

/// Best-of-`reps` wall-clock of `f`, milliseconds.
fn best_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let mut last = f();
    let mut best = t0.elapsed().as_secs_f64() * 1e3;
    for _ in 1..reps {
        let t0 = Instant::now();
        last = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, last)
}

/// Run the benchmark and return the report (without writing it).
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchReport, String> {
    let reps = if cfg.smoke { 1 } else { 3 };
    let threads_available =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut cases = Vec::new();

    for grid in grids(cfg.smoke) {
        // The multigrid arm sweeps every pool width; the Jacobi arm is
        // the comparison point — iteration counts are width-invariant,
        // so one width-1 measurement suffices.
        let arms: [(PrecondChoice, &str, usize); 2] = [
            (PrecondChoice::Auto, "multigrid", cfg.threads.max(1)),
            (PrecondChoice::Jacobi, "jacobi", 1),
        ];
        for (choice, name, widths) in arms {
            let design = fixture(grid).with_preconditioner(choice);
            let model = design.thermal_model().map_err(|e| e.to_string())?;
            if name == "multigrid" && model.multigrid().is_none() {
                return Err(format!(
                    "multigrid hierarchy failed to build for grid {grid}"
                ));
            }
            let mut p = model.zero_power();
            for die in 0..8 {
                for block in design.chip.floorplan.blocks() {
                    p.set(die, &block.name, 4.0).map_err(|e| e.to_string())?;
                }
            }
            let mut base_cold_ms = None;
            for threads in 1..=widths {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .map_err(|e| e.to_string())?;
                let (cold_wall_ms, cold_iters) = pool.install(|| {
                    best_ms(reps, || {
                        model.reset_solver_state();
                        model.solve_steady(&p).map(|s| s.iterations())
                    })
                });
                let cold_iters = cold_iters.map_err(|e| e.to_string())?;
                let (warm_wall_ms, warm_iters) = pool.install(|| {
                    model.reset_solver_state();
                    let _ = model.solve_steady(&p);
                    best_ms(reps, || model.solve_steady(&p).map(|s| s.iterations()))
                });
                let warm_iters = warm_iters.map_err(|e| e.to_string())?;
                let base = *base_cold_ms.get_or_insert(cold_wall_ms);
                cases.push(SolveCase {
                    grid,
                    nodes: model.n_nodes(),
                    precond: name.to_string(),
                    threads,
                    cold_wall_ms,
                    cold_iters,
                    warm_wall_ms,
                    warm_iters,
                    speedup_vs_1t: if cold_wall_ms > 0.0 {
                        base / cold_wall_ms
                    } else {
                        1.0
                    },
                });
            }
        }
    }

    // Explorer warm/cold comparison at the smoke-sized fixture with
    // leakage feedback on (the expensive, representative configuration).
    let design = fixture(8).with_leakage_feedback(true);
    let model = design.thermal_model().map_err(|e| e.to_string())?;
    let (_, cold) = max_frequency_searched(&design, &model, false);
    model.reset_solver_state();
    let (_, warm) = max_frequency_searched(&design, &model, true);
    let saving_pct = if cold.cg_iterations > 0 {
        (1.0 - warm.cg_iterations as f64 / cold.cg_iterations as f64) * 100.0
    } else {
        0.0
    };

    let mg_cases: Vec<&SolveCase> = cases.iter().filter(|c| c.precond == "multigrid").collect();
    let mean_cold_iters =
        mg_cases.iter().map(|c| c.cold_iters as f64).sum::<f64>() / mg_cases.len().max(1) as f64;
    Ok(BenchReport {
        version: 2,
        smoke: cfg.smoke,
        threads_available,
        cases,
        mean_cold_iters,
        search: SearchComparison {
            probes: cold.probes,
            cold_cg_iterations: cold.cg_iterations,
            warm_cg_iterations: warm.cg_iterations,
            saving_pct,
        },
    })
}

/// Compare a fresh report against a checked-in baseline: mean cold
/// multigrid CG iterations must not regress by more than 20%, and no
/// cold multigrid solve may exceed [`MG_COLD_ITER_CAP`] iterations.
pub fn check_against_baseline(report: &BenchReport, baseline_path: &str) -> Result<String, String> {
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let baseline: BenchReport =
        serde_json::from_str(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    for c in &report.cases {
        if c.precond == "multigrid" && c.cold_iters > MG_COLD_ITER_CAP {
            return Err(format!(
                "multigrid cold solve on grid {} took {} CG iterations, \
                 over the hard cap of {MG_COLD_ITER_CAP}",
                c.grid, c.cold_iters
            ));
        }
    }
    let limit = baseline.mean_cold_iters * 1.20;
    if report.mean_cold_iters > limit {
        return Err(format!(
            "CG iteration regression: mean cold iterations {:.1} exceed \
             baseline {:.1} by more than 20% (limit {:.1})",
            report.mean_cold_iters, baseline.mean_cold_iters, limit
        ));
    }
    Ok(format!(
        "baseline check ok: mean cold iterations {:.1} vs baseline {:.1} (limit {:.1}), \
         all multigrid cold solves within the {MG_COLD_ITER_CAP}-iteration cap",
        report.mean_cold_iters, baseline.mean_cold_iters, limit
    ))
}

/// Run, write the JSON report, optionally check the baseline; returns
/// the human-readable summary.
pub fn run_and_report(cfg: &BenchConfig) -> Result<String, String> {
    let report = run_bench(cfg)?;
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    std::fs::write(&cfg.out, json + "\n").map_err(|e| format!("{}: {e}", cfg.out))?;

    let mut out = format!(
        "thermal bench ({} mode, {} hardware thread(s)) -> {}\n",
        if cfg.smoke { "smoke" } else { "full" },
        report.threads_available,
        cfg.out
    );
    out.push_str("  grid  nodes   precond threads  cold ms  warm ms  cold it  warm it  speedup\n");
    for c in &report.cases {
        out.push_str(&format!(
            "  {:>4} {:>6} {:>9} {:>7} {:>8.2} {:>8.2} {:>8} {:>8} {:>7.2}x\n",
            c.grid,
            c.nodes,
            c.precond,
            c.threads,
            c.cold_wall_ms,
            c.warm_wall_ms,
            c.cold_iters,
            c.warm_iters,
            c.speedup_vs_1t
        ));
    }
    out.push_str(&format!(
        "  search on 8-chip fixture: {} probes, cold {} vs warm {} CG iterations ({:.1}% saved)\n",
        report.search.probes,
        report.search.cold_cg_iterations,
        report.search.warm_cg_iterations,
        report.search.saving_pct
    ));
    if let Some(baseline) = &cfg.check {
        out.push_str("  ");
        out.push_str(&check_against_baseline(&report, baseline)?);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_produces_consistent_report() {
        let dir = std::env::temp_dir().join("watercool_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_thermal.json");
        let cfg = BenchConfig {
            smoke: true,
            threads: 2,
            out: out.display().to_string(),
            check: None,
        };
        let report = run_bench(&cfg).unwrap();
        // 3 grids x (2 multigrid widths + 1 jacobi comparison).
        assert_eq!(report.cases.len(), 9);
        for c in &report.cases {
            assert!(c.cold_iters > 0);
            assert!(
                c.warm_iters <= 2,
                "warm re-solve of the same point is free, got {}",
                c.warm_iters
            );
            assert!(c.cold_wall_ms > 0.0);
            if c.precond == "multigrid" {
                assert!(
                    c.cold_iters <= MG_COLD_ITER_CAP,
                    "grid {}: multigrid cold solve took {} iterations",
                    c.grid,
                    c.cold_iters
                );
            }
        }
        // The multigrid arm must decisively beat Jacobi on every grid.
        for grid in [8usize, 12, 16] {
            let mg = report
                .cases
                .iter()
                .find(|c| c.grid == grid && c.precond == "multigrid")
                .unwrap();
            let jac = report
                .cases
                .iter()
                .find(|c| c.grid == grid && c.precond == "jacobi")
                .unwrap();
            assert!(
                3 * mg.cold_iters < jac.cold_iters,
                "grid {grid}: multigrid {} vs jacobi {} cold iterations",
                mg.cold_iters,
                jac.cold_iters
            );
        }
        assert!(report.search.probes > 0);
        assert!(
            report.search.warm_cg_iterations < report.search.cold_cg_iterations,
            "warm search must be cheaper"
        );
        assert!(report.search.saving_pct >= 30.0, "acceptance: >=30% saving");
    }

    #[test]
    fn baseline_check_flags_regressions_only() {
        let dir = std::env::temp_dir().join("watercool_bench_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let mk = |mean: f64| BenchReport {
            version: 2,
            smoke: true,
            threads_available: 1,
            cases: Vec::new(),
            mean_cold_iters: mean,
            search: SearchComparison {
                probes: 1,
                cold_cg_iterations: 10,
                warm_cg_iterations: 5,
                saving_pct: 50.0,
            },
        };
        std::fs::write(&path, serde_json::to_string(&mk(100.0)).unwrap()).unwrap();
        let p = path.display().to_string();
        assert!(check_against_baseline(&mk(110.0), &p).is_ok());
        assert!(check_against_baseline(&mk(121.0), &p).is_err());
        assert!(check_against_baseline(&mk(90.0), &p).is_ok());
    }

    #[test]
    fn baseline_check_enforces_mg_iteration_cap() {
        let dir = std::env::temp_dir().join("watercool_bench_cap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let case = |precond: &str, iters: usize| SolveCase {
            grid: 8,
            nodes: 1856,
            precond: precond.to_string(),
            threads: 1,
            cold_wall_ms: 1.0,
            cold_iters: iters,
            warm_wall_ms: 0.1,
            warm_iters: 0,
            speedup_vs_1t: 1.0,
        };
        let mk = |cases: Vec<SolveCase>| BenchReport {
            version: 2,
            smoke: true,
            threads_available: 1,
            cases,
            mean_cold_iters: 13.0,
            search: SearchComparison {
                probes: 1,
                cold_cg_iterations: 10,
                warm_cg_iterations: 5,
                saving_pct: 50.0,
            },
        };
        std::fs::write(&path, serde_json::to_string(&mk(Vec::new())).unwrap()).unwrap();
        let p = path.display().to_string();
        // Under the cap is fine; a Jacobi case over the cap is exempt;
        // a multigrid case over the cap fails hard.
        assert!(check_against_baseline(&mk(vec![case("multigrid", MG_COLD_ITER_CAP)]), &p).is_ok());
        assert!(check_against_baseline(&mk(vec![case("jacobi", 130)]), &p).is_ok());
        let err = check_against_baseline(&mk(vec![case("multigrid", MG_COLD_ITER_CAP + 1)]), &p)
            .unwrap_err();
        assert!(err.contains("hard cap"), "unexpected error: {err}");
    }
}
