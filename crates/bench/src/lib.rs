//! # immersion-bench
//!
//! The experiment harness: one function per table and figure of the
//! paper, each returning a [`Table`](immersion_core::report::Table)
//! with the same rows/series the paper reports. The `experiments`
//! binary dispatches to these; integration tests smoke-test their
//! shapes (who wins, where the feasibility walls fall).
//!
//! Criterion benches for the substrates themselves (thermal solver,
//! NPB kernels, CMP simulator, explorer) live under `benches/`.

pub mod campaign;
pub mod cli;
pub mod experiments;
pub mod faultharness;
pub mod sanitize;
pub mod thermal_bench;

pub use campaign::{build_campaign, SUMMARY_JOB};
pub use experiments::{run_experiment, Quality, EXPERIMENTS};
pub use faultharness::{run_cell, run_matrix, CellReport, MatrixReport};
pub use thermal_bench::{run_bench, BenchConfig, BenchReport};
