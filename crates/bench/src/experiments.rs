//! One function per table/figure of the paper.
//!
//! Every function returns one or more [`Table`]s whose rows mirror the
//! corresponding figure's series. EXPERIMENTS.md records the
//! paper-vs-measured comparison these produce.

use immersion_coolant::circuit::PrototypeServer;
use immersion_coolant::flow::FlowSystem;
use immersion_coolant::pue::{annual_cooling_energy_kwh, pue, CoolingArchitecture};
use immersion_coolant::reliability::{
    failure_probability, mean_lifetime, BoardConfig, ComponentType,
};
use immersion_core::design::CmpDesign;
use immersion_core::dtm::{DtmController, PowerPhases};
use immersion_core::explorer::{frequency_vs_chips, max_frequency, solve_at};
use immersion_core::layout::{evaluate_pattern, optimize_annealed, optimize_exhaustive};
use immersion_core::perf::{geomean_relative, relative_times, run_npb_suite, CoolingRun};
use immersion_core::report::{fmt_freq, fmt_ratio, Table};
use immersion_power::chips::{
    all_chips, high_frequency_cmp, low_power_cmp, rapl_anchors, xeon_e5_2667v4, xeon_phi_7290,
    ChipModel,
};
use immersion_power::mcpat::{area_report, relative_power_curve};
use immersion_power::scaling::{irds_trajectory, project};
use immersion_thermal::stack3d::{CoolingParams, PackageParams};
use immersion_units::{Celsius, HeatTransferCoeff};
use serde::{Deserialize, Serialize};

/// Fidelity knobs: `full()` reproduces figure-quality settings,
/// `quick()` is for smoke tests and CI.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Quality {
    /// Die thermal-grid resolution.
    pub grid: (usize, usize),
    /// Simulated instructions per thread for NPB runs.
    pub ops_per_thread: u64,
    /// Monte-Carlo trials for reliability studies.
    pub trials: usize,
}

impl Quality {
    /// Figure-quality settings.
    pub fn full() -> Quality {
        Quality {
            grid: (16, 16),
            ops_per_thread: 100_000,
            trials: 20_000,
        }
    }

    /// Fast settings for smoke tests.
    pub fn quick() -> Quality {
        Quality {
            grid: (8, 8),
            ops_per_thread: 4_000,
            trials: 2_000,
        }
    }
}

fn design(chip: ChipModel, chips: usize, cooling: CoolingParams, q: Quality) -> CmpDesign {
    CmpDesign::new(chip, chips, cooling).with_grid(q.grid.0, q.grid.1)
}

// ----------------------------------------------------------------------------
// Tables
// ----------------------------------------------------------------------------

/// Table 1: the baseline 2-D CMP specification.
pub fn table1(_q: Quality) -> Vec<Table> {
    let lp = low_power_cmp();
    let hf = high_frequency_cmp();
    let cfg = immersion_archsim::SystemConfig::baseline(1, 2.0);
    let mut t = Table::new("Table 1: baseline 2-D CMP", &["field", "value"]);
    let mut row = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    row("processor family", "x86-64".into());
    row("number of cores", format!("{}", lp.cores));
    row(
        "L1 I/D cache size",
        format!("32/{} KiB (line:{}B)", cfg.l1d_kib, cfg.line_bytes),
    );
    row("L1 cache latency", format!("{} cycle", cfg.l1_latency));
    row(
        "L2 cache size",
        format!("{} MiB (assoc:{})", cfg.l2_total_kib() / 1024, cfg.l2_assoc),
    );
    row("L2 cache latency", format!("{} cycles", cfg.l2_latency));
    row(
        "memory latency",
        format!(
            "{} cycles @ 2.0 GHz ({} ns)",
            cfg.dram_cycles(),
            cfg.dram_ns
        ),
    );
    let area: f64 = area_report(&lp).values().sum();
    row("area", format!("{:.0} mm2", area * 1e6));
    row(
        "max power (low-power)",
        format!(
            "{} W @ {} GHz",
            lp.max_power_watts,
            lp.vfs.max_step().freq_ghz
        ),
    );
    row(
        "max power (high-frequency)",
        format!(
            "{} W @ {} GHz",
            hf.max_power_watts,
            hf.vfs.max_step().freq_ghz
        ),
    );
    row("router pipeline", "[RC][VSA][ST/LT]".into());
    row(
        "buffer size",
        format!("{} flits per VC", cfg.vc_buffer_flits),
    );
    row("protocol", "MOESI directory".into());
    row("# of VCs", "3 (one per message class)".into());
    row(
        "on-chip topology",
        format!("{}x{} mesh", cfg.mesh_x, cfg.mesh_y),
    );
    row(
        "control / data packet size",
        format!("{} flit / {} flits", cfg.ctrl_flits, cfg.data_flits),
    );
    vec![t]
}

/// Table 2: the HotSpot-style simulation parameters.
pub fn table2(_q: Quality) -> Vec<Table> {
    let p = PackageParams::default();
    let mut t = Table::new(
        "Table 2: thermal simulation parameters",
        &["field", "value"],
    );
    let mut row = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    row(
        "heatsink",
        format!(
            "{:.0}x{:.0}x{:.0} cm, 400 W/mK, {} m2 fin area",
            p.sink_side_m * 100.0,
            p.sink_side_m * 100.0,
            p.sink_thickness_m * 100.0,
            p.sink_fin_area_m2
        ),
    );
    row(
        "heat spreader",
        format!(
            "{:.0}x{:.0}x{:.1} cm, 400 W/mK",
            p.spreader_side_m * 100.0,
            p.spreader_side_m * 100.0,
            p.spreader_thickness_m * 100.0
        ),
    );
    row("parylene film", "120 um, 0.14 W/mK".into());
    row(
        "inter-die bond",
        format!(
            "{:.0} um glue (0.25 W/mK) + {:.1}% TSV/TCI metal",
            p.bond_thickness_m * 1e6,
            p.bond_metal_fraction * 100.0
        ),
    );
    row(
        "TIM",
        format!(
            "{:.0} um, 4.0 W/mK (HotSpot default; see DESIGN.md)",
            p.tim_thickness_m * 1e6
        ),
    );
    row("outside temp", "25 C".into());
    row(
        "h (air/oil/fluorinert/water)",
        "14 / 160 / 180 / 800 W/(m2K)".into(),
    );
    vec![t]
}

// ----------------------------------------------------------------------------
// Frequency-vs-chips figures (1, 7, 8, 17)
// ----------------------------------------------------------------------------

fn freq_vs_chips_table(
    title: &str,
    chip: ChipModel,
    max_chips: usize,
    coolings: &[CoolingParams],
    q: Quality,
) -> Table {
    let mut headers: Vec<String> = vec!["cooling".into()];
    headers.extend((1..=max_chips).map(|n| format!("{n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &headers_ref);
    for &cooling in coolings {
        let d = design(chip.clone(), 1, cooling, q);
        let series = frequency_vs_chips(&d, max_chips);
        let mut cells = vec![cooling.name.to_string()];
        cells.extend(series.iter().map(|(_, s)| fmt_freq(s.map(|x| x.freq_ghz))));
        t.row(cells);
    }
    t
}

/// Figure 1: max frequency vs stacked Xeon E5 chips (air / oil / water).
pub fn fig1(q: Quality) -> Vec<Table> {
    vec![freq_vs_chips_table(
        "Figure 1: max frequency vs stacked Xeon E5-2667v4 chips (GHz, 78 C)",
        xeon_e5_2667v4(),
        4,
        &[
            CoolingParams::air(),
            CoolingParams::mineral_oil(),
            CoolingParams::water_immersion(),
        ],
        q,
    )]
}

/// Figure 7: low-power CMP, five cooling options, 1–15 chips.
pub fn fig7(q: Quality) -> Vec<Table> {
    vec![freq_vs_chips_table(
        "Figure 7: max frequency vs chips, low-power CMP (GHz, 80 C)",
        low_power_cmp(),
        15,
        &CoolingParams::paper_options(),
        q,
    )]
}

/// Figure 8: high-frequency CMP, five cooling options, 1–15 chips.
pub fn fig8(q: Quality) -> Vec<Table> {
    vec![freq_vs_chips_table(
        "Figure 8: max frequency vs chips, high-frequency CMP (GHz, 80 C)",
        high_frequency_cmp(),
        15,
        &CoolingParams::paper_options(),
        q,
    )]
}

/// Figure 17: Xeon Phi 7290, five cooling options, 1–4 chips.
pub fn fig17(q: Quality) -> Vec<Table> {
    vec![freq_vs_chips_table(
        "Figure 17: max frequency vs stacked Xeon Phi 7290 chips (GHz, 80 C)",
        xeon_phi_7290(),
        4,
        &CoolingParams::paper_options(),
        q,
    )]
}

// ----------------------------------------------------------------------------
// Prototype and power curves (Figures 4, 6)
// ----------------------------------------------------------------------------

/// Figure 4: prototype chip temperature per cooling option.
pub fn fig4(_q: Quality) -> Vec<Table> {
    let proto = PrototypeServer::default();
    let (air, sink, full) = proto.figure4();
    let mut t = Table::new(
        "Figure 4: PRIMERGY TX1320 M2 chip temperature (C)",
        &["cooling option", "model", "paper"],
    );
    t.row(vec!["air".into(), format!("{air:.1}"), "76".into()]);
    t.row(vec![
        "heatsink in water".into(),
        format!("{sink:.1}"),
        "71".into(),
    ]);
    t.row(vec![
        "full immersion".into(),
        format!("{full:.1}"),
        "56".into(),
    ]);
    vec![t]
}

/// Figure 6: relative power vs frequency for the four chip models,
/// with the (synthetic) RAPL anchor points for the real chips.
pub fn fig6(_q: Quality) -> Vec<Table> {
    let mut tables = Vec::new();
    for chip in all_chips() {
        let curve = relative_power_curve(&chip);
        let mut t = Table::new(
            &format!("Figure 6: relative power vs frequency — {}", chip.name),
            &["freq (GHz)", "P/Pmax (model)", "P/Pmax (RAPL anchor)"],
        );
        let anchors = rapl_anchors(chip.name).unwrap_or_default();
        for (f, p) in curve {
            let anchor = anchors
                .iter()
                .find(|(af, _)| (af - f).abs() < 1e-9)
                .map(|&(_, ap)| ap);
            t.row(vec![
                format!("{f:.1}"),
                format!("{p:.3}"),
                fmt_ratio(anchor),
            ]);
        }
        tables.push(t);
    }
    tables
}

// ----------------------------------------------------------------------------
// Thermal maps (Figures 9, 16, 18)
// ----------------------------------------------------------------------------

fn thermal_map_tables(
    title: &str,
    chip: ChipModel,
    chips: usize,
    freq_ghz: f64,
    cooling: CoolingParams,
    flip: bool,
    q: Quality,
) -> Vec<Table> {
    let d = design(chip.clone(), chips, cooling, q).with_flip(flip);
    let model = d.thermal_model().expect("model builds");
    let step = chip
        .vfs
        .step_at_or_below(freq_ghz)
        .expect("frequency within VFS range");
    let sol = solve_at(&d, &model, step, None).expect("steady solve");
    let mut out = Vec::new();
    let mut summary = Table::new(
        &format!("{title} — per-layer summary"),
        &["layer", "min (C)", "max (C)", "CORE1 max", "L2 max"],
    );
    for die in 0..chips {
        let map = sol.die_map(die).expect("die map");
        let core_max = sol.block_max(die, "CORE1").or(sol.block_max(die, "TILE1"));
        let l2_max = sol.block_max(die, "L2_6").or(sol.block_max(die, "TILE18"));
        summary.row(vec![
            format!(
                "die {} ({})",
                die + 1,
                if die == 0 {
                    "bottom"
                } else if die == chips - 1 {
                    "top"
                } else {
                    "mid"
                }
            ),
            format!("{:.1}", map.min()),
            format!("{:.1}", map.max()),
            core_max.map(|v| format!("{v:.1}")).unwrap_or("-".into()),
            l2_max.map(|v| format!("{v:.1}")).unwrap_or("-".into()),
        ]);
    }
    out.push(summary);
    // ASCII art of the bottom and top dies (the figures' layer 1 and 4).
    for (label, die) in [("bottom", 0usize), ("top", chips - 1)] {
        let map = sol.die_map(die).expect("die map");
        let mut t = Table::new(
            &format!(
                "{title} — {label} die map ({:.1}..{:.1} C)",
                map.min(),
                map.max()
            ),
            &["ascii"],
        );
        for line in map.ascii().lines() {
            t.row(vec![line.to_string()]);
        }
        out.push(t);
    }
    out
}

/// Figure 9: thermal map, 4-chip high-frequency CMP at 3.6 GHz, water.
pub fn fig9(q: Quality) -> Vec<Table> {
    thermal_map_tables(
        "Figure 9: 4-chip high-frequency CMP @ 3.6 GHz, water",
        high_frequency_cmp(),
        4,
        3.6,
        CoolingParams::water_immersion(),
        false,
        q,
    )
}

/// Figure 16: the same with the §4.2 flip layout.
pub fn fig16(q: Quality) -> Vec<Table> {
    thermal_map_tables(
        "Figure 16: 4-chip high-frequency CMP @ 3.6 GHz, water, flip",
        high_frequency_cmp(),
        4,
        3.6,
        CoolingParams::water_immersion(),
        true,
        q,
    )
}

/// Figure 18: 4-chip Xeon Phi 7290 at 1.2 GHz, water.
pub fn fig18(q: Quality) -> Vec<Table> {
    thermal_map_tables(
        "Figure 18: 4-chip Xeon Phi 7290 @ 1.2 GHz, water",
        xeon_phi_7290(),
        4,
        1.2,
        CoolingParams::water_immersion(),
        false,
        q,
    )
}

// ----------------------------------------------------------------------------
// NPB execution times (Figures 10–13)
// ----------------------------------------------------------------------------

fn npb_figure(
    title: &str,
    chip: ChipModel,
    chips: usize,
    reference_name: &str,
    q: Quality,
) -> Vec<Table> {
    let coolings = [
        CoolingParams::water_pipe(),
        CoolingParams::mineral_oil(),
        CoolingParams::fluorinert(),
        CoolingParams::water_immersion(),
    ];
    let runs: Vec<CoolingRun> = coolings
        .iter()
        .map(|&c| run_npb_suite(&design(chip.clone(), chips, c, q), q.ops_per_thread, 42))
        .collect();
    // Pick the requested reference; fall back to mineral oil when it is
    // infeasible (the paper does the same for Figure 11).
    let reference = runs
        .iter()
        .find(|r| r.cooling == reference_name && r.freq_ghz.is_some())
        .or_else(|| {
            runs.iter()
                .find(|r| r.cooling == "mineral-oil" && r.freq_ghz.is_some())
        })
        .expect("a reference cooling must be feasible")
        .clone();

    let mut t = Table::new(
        &format!(
            "{title} (relative to {}, lower is better)",
            reference.cooling
        ),
        &[
            "cooling", "freq", "BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA", "geomean",
        ],
    );
    for run in &runs {
        let mut cells = vec![run.cooling.clone(), fmt_freq(run.freq_ghz)];
        match relative_times(run, &reference) {
            Some(rel) => {
                for (_, r) in &rel {
                    cells.push(format!("{r:.3}"));
                }
                cells.push(format!("{:.3}", geomean_relative(&rel)));
            }
            None => cells.extend(std::iter::repeat_n("-".to_string(), 10)),
        }
        t.row(cells);
    }
    vec![t]
}

/// Figure 10: 6-chip low-power CMP, relative to water-pipe (24 threads).
pub fn fig10(q: Quality) -> Vec<Table> {
    npb_figure(
        "Figure 10: NPB times, 6-chip low-power CMP",
        low_power_cmp(),
        6,
        "water-pipe",
        q,
    )
}

/// Figure 11: 8-chip low-power CMP, relative to mineral oil (32
/// threads; the water pipe cannot sustain this stack).
pub fn fig11(q: Quality) -> Vec<Table> {
    npb_figure(
        "Figure 11: NPB times, 8-chip low-power CMP",
        low_power_cmp(),
        8,
        "mineral-oil",
        q,
    )
}

/// Figure 12: 6-chip high-frequency CMP, relative to water-pipe.
pub fn fig12(q: Quality) -> Vec<Table> {
    npb_figure(
        "Figure 12: NPB times, 6-chip high-frequency CMP",
        high_frequency_cmp(),
        6,
        "water-pipe",
        q,
    )
}

/// Figure 13: 8-chip high-frequency CMP, relative to water-pipe.
pub fn fig13(q: Quality) -> Vec<Table> {
    npb_figure(
        "Figure 13: NPB times, 8-chip high-frequency CMP",
        high_frequency_cmp(),
        8,
        "water-pipe",
        q,
    )
}

// ----------------------------------------------------------------------------
// Heat-transfer sweep and flip study (Figures 14, 15)
// ----------------------------------------------------------------------------

/// Figure 14: peak temperature vs heat-transfer coefficient for 4-chip
/// stacks of all four chip models at their maximum frequency.
pub fn fig14(q: Quality) -> Vec<Table> {
    let hs = [
        10.0, 14.0, 25.0, 50.0, 100.0, 160.0, 180.0, 400.0, 800.0, 1600.0, 3200.0, 5000.0,
    ];
    let mut headers: Vec<String> = vec!["h (W/m2K)".into()];
    headers.extend(all_chips().iter().map(|c| c.name.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Figure 14: peak temperature (C) vs heat transfer coefficient, 4 chips @ fmax",
        &headers_ref,
    );
    for &h in &hs {
        let mut cells = vec![format!("{h:.0}")];
        for chip in all_chips() {
            let step = chip.vfs.max_step();
            let d = design(
                chip.clone(),
                4,
                CoolingParams::custom_immersion("sweep", HeatTransferCoeff::new(h)),
                q,
            );
            let model = d.thermal_model().expect("model builds");
            let temp = solve_at(&d, &model, step, None).expect("solve").die_max();
            cells.push(format!("{temp:.1}"));
        }
        t.row(cells);
    }
    vec![t]
}

/// Figure 15: temperature vs frequency with and without the flip, for
/// air and water on the 4-chip high-frequency CMP.
pub fn fig15(q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    let mut t = Table::new(
        "Figure 15: peak temperature (C) vs frequency, 4-chip high-frequency CMP",
        &["freq (GHz)", "air", "air flip", "water", "water flip"],
    );
    let configs = [
        (CoolingParams::air(), false),
        (CoolingParams::air(), true),
        (CoolingParams::water_immersion(), false),
        (CoolingParams::water_immersion(), true),
    ];
    let models: Vec<_> = configs
        .iter()
        .map(|&(c, flip)| {
            let d = design(chip.clone(), 4, c, q).with_flip(flip);
            let m = d.thermal_model().expect("model builds");
            (d, m)
        })
        .collect();
    for &step in chip.vfs.steps() {
        let mut cells = vec![format!("{:.1}", step.freq_ghz)];
        for (d, m) in &models {
            let temp = solve_at(d, m, step, None).expect("solve").die_max();
            cells.push(format!("{temp:.1}"));
        }
        t.row(cells);
    }
    // Max sustainable frequencies under the 80 C threshold.
    let mut f = Table::new(
        "Figure 15 (derived): max frequency under 80 C",
        &["config", "max freq (GHz)"],
    );
    for ((c, flip), _) in configs.iter().zip(&models) {
        let d = design(chip.clone(), 4, *c, q).with_flip(*flip);
        f.row(vec![
            format!("{}{}", c.name, if *flip { " flip" } else { "" }),
            fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)),
        ]);
    }
    vec![t, f]
}

// ----------------------------------------------------------------------------
// Reliability and PUE (§2.2–2.3, §4.4)
// ----------------------------------------------------------------------------

/// §2.2 test-board lifetime study.
pub fn lifetime(q: Quality) -> Vec<Table> {
    let mut t = Table::new(
        "Test-board component failures within 2 years underwater (120 um film)",
        &["component", "P(fail)", "paper (of 5 boards)"],
    );
    let cfg = BoardConfig::test_board(120.0);
    let paper: &[(&str, ComponentType, &str)] = &[
        ("USB", ComponentType::Usb, "0/5"),
        ("RJ45", ComponentType::Rj45, "1/5"),
        ("mPCIe", ComponentType::MPcie, "1/5"),
        ("PCIex4", ComponentType::PciEx4, "5/5"),
        ("CR2032", ComponentType::Cr2032, "5/5 (discharged)"),
        ("PGA", ComponentType::Pga, "0/5"),
        ("mega-AVR", ComponentType::MegaAvr, "0/5"),
    ];
    for &(name, kind, obs) in paper {
        let p = failure_probability(&cfg, kind, 2.0, q.trials, 7);
        t.row(vec![name.into(), format!("{p:.2}"), obs.into()]);
    }

    let mut f = Table::new(
        "Board lifetime vs film thickness and configuration (years, 10-y horizon)",
        &["configuration", "mean lifetime"],
    );
    for (label, cfg) in [
        ("test board, 50 um film", BoardConfig::test_board(50.0)),
        ("test board, 120 um film", BoardConfig::test_board(120.0)),
        ("test board, 150 um film", BoardConfig::test_board(150.0)),
        ("server, all submerged", BoardConfig::server_naive(120.0)),
        (
            "server, recommended placement",
            BoardConfig::server_recommended(120.0),
        ),
    ] {
        let life = mean_lifetime(&cfg, 10.0, q.trials, 13);
        f.row(vec![label.into(), format!("{life:.2}")]);
    }
    vec![t, f]
}

/// §4.4 PUE analysis.
pub fn pue_study(_q: Quality) -> Vec<Table> {
    let mut t = Table::new(
        "PUE by cooling architecture (1 MW IT load)",
        &["architecture", "PUE", "annual cooling energy (MWh)"],
    );
    for arch in CoolingArchitecture::all() {
        t.row(vec![
            arch.name.into(),
            format!("{:.3}", pue(&arch)),
            format!("{:.0}", annual_cooling_energy_kwh(&arch, 1000.0) / 1000.0),
        ]);
    }
    vec![t]
}

// ----------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ----------------------------------------------------------------------------

/// Ablation: film thickness, TSV fraction, secondary path, leakage
/// feedback — all on the 6-chip high-frequency water design.
pub fn ablations(q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    let mut t = Table::new(
        "Ablations: max frequency (GHz) of the 6-chip high-frequency CMP under water",
        &["variant", "max freq"],
    );
    let base = design(chip.clone(), 6, CoolingParams::water_immersion(), q);
    t.row(vec![
        "baseline".into(),
        fmt_freq(max_frequency(&base).map(|s| s.freq_ghz)),
    ]);

    // Film thickness sweep (50/120/150 um, plus none).
    for (label, film) in [
        ("film 50 um", Some(50e-6)),
        ("film 150 um", Some(150e-6)),
        ("no film (hypothetical)", None),
    ] {
        let mut cooling = CoolingParams::water_immersion();
        cooling.film_thickness_m = film;
        let d = design(chip.clone(), 6, cooling, q);
        t.row(vec![
            label.into(),
            fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)),
        ]);
    }

    // TSV/TCI metal fraction.
    for (label, frac) in [("bond metal 0%", 0.0), ("bond metal 5%", 0.05)] {
        let p = PackageParams {
            bond_metal_fraction: frac,
            ..PackageParams::default()
        };
        let d = design(chip.clone(), 6, CoolingParams::water_immersion(), q).with_package(p);
        t.row(vec![
            label.into(),
            fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)),
        ]);
    }

    // Secondary path off: board in air while the sink is in water.
    {
        let mut cooling = CoolingParams::water_immersion();
        cooling.board_h = immersion_thermal::stack3d::htc::AIR;
        let d = design(chip.clone(), 6, cooling, q);
        t.row(vec![
            "secondary path off (board in air)".into(),
            fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)),
        ]);
    }

    // Leakage-temperature feedback.
    {
        let d = design(chip.clone(), 6, CoolingParams::water_immersion(), q)
            .with_leakage_feedback(true);
        t.row(vec![
            "leakage-temperature feedback".into(),
            fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)),
        ]);
    }
    vec![t]
}

/// Grid-resolution convergence of the thermal solver.
pub fn grid_convergence(_q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    let step = chip.vfs.max_step();
    let mut t = Table::new(
        "Thermal grid convergence: 4-chip high-frequency @ 3.6 GHz, water",
        &["die grid", "peak temp (C)"],
    );
    for n in [4usize, 8, 12, 16, 24, 32] {
        let d = CmpDesign::new(chip.clone(), 4, CoolingParams::water_immersion()).with_grid(n, n);
        let model = d.thermal_model().expect("model builds");
        let temp = solve_at(&d, &model, step, None).expect("solve").die_max();
        t.row(vec![format!("{n}x{n}"), format!("{temp:.2}")]);
    }
    vec![t]
}

// ----------------------------------------------------------------------------
// Extensions: DTM, layout optimization, flow engineering, IRDS scaling
// ----------------------------------------------------------------------------

/// Extension (§5.2): dynamic thermal management under each cooling
/// option — settled DVFS frequency and throttling residency.
pub fn dtm_study(q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    let ctrl = DtmController::new(chip.temp_threshold_c, 4.0);
    let mut t = Table::new(
        "DTM on the 4-chip high-frequency CMP (80 C trip, worst-case load)",
        &[
            "cooling",
            "settled freq (GHz)",
            "peak temp (C)",
            "throttled %",
        ],
    );
    for cooling in [
        CoolingParams::air(),
        CoolingParams::water_pipe(),
        CoolingParams::mineral_oil(),
        CoolingParams::water_immersion(),
    ] {
        let d = design(chip.clone(), 4, cooling, q);
        let out = immersion_core::dtm::simulate(&d, PowerPhases::worst_case(), ctrl, 700.0, 2.0)
            .expect("dtm run");
        let half = out.freq_trace.len() / 2;
        let settled: f64 =
            out.freq_trace[half..].iter().sum::<f64>() / (out.freq_trace.len() - half) as f64;
        t.row(vec![
            cooling.name.into(),
            format!("{settled:.2}"),
            format!("{:.1}", out.peak_temp),
            format!("{:.0}", out.throttled_fraction * 100.0),
        ]);
    }
    vec![t]
}

/// Extension (conclusion, future work 1): thermal-aware rotation-
/// pattern optimization vs the paper's hand-picked flip.
pub fn layout_study(q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    let step = chip.vfs.max_step();
    let mut t = Table::new(
        "Layout optimization: peak temp (C) of the 4-chip high-frequency CMP @ 3.6 GHz, water",
        &["layout", "pattern", "peak temp (C)"],
    );
    let d = design(chip.clone(), 4, CoolingParams::water_immersion(), q);
    let fmt_pat = |p: &[bool]| {
        p.iter()
            .map(|&r| if r { 'R' } else { '.' })
            .collect::<String>()
    };
    let plain = vec![false; 4];
    let flip = vec![false, true, false, true];
    t.row(vec![
        "no rotation".into(),
        fmt_pat(&plain),
        format!("{:.1}", evaluate_pattern(&d, step, &plain).expect("eval")),
    ]);
    t.row(vec![
        "paper flip".into(),
        fmt_pat(&flip),
        format!("{:.1}", evaluate_pattern(&d, step, &flip).expect("eval")),
    ]);
    let best = optimize_exhaustive(&d, step).expect("search");
    t.row(vec![
        format!("exhaustive optimum ({} evals)", best.evaluations),
        fmt_pat(&best.rotations),
        format!("{:.1}", best.peak_temp),
    ]);

    // A taller stack where exhaustive search is impractical.
    let d8 = design(chip.clone(), 8, CoolingParams::water_immersion(), q);
    let step8 = chip.vfs.step_at_or_below(2.0).expect("2.0 GHz step");
    let flip8: Vec<bool> = (0..8).map(|i| i % 2 == 1).collect();
    t.row(vec![
        "8-chip paper flip @ 2.0 GHz".into(),
        fmt_pat(&flip8),
        format!("{:.1}", evaluate_pattern(&d8, step8, &flip8).expect("eval")),
    ]);
    let annealed = optimize_annealed(&d8, step8, 60, 7).expect("anneal");
    t.row(vec![
        format!("8-chip annealed ({} evals)", annealed.evaluations),
        fmt_pat(&annealed.rotations),
        format!("{:.1}", annealed.peak_temp),
    ]);
    vec![t]
}

/// Extension (§4.1): the pump-power/heat-transfer trade-off for a
/// water tank cooling an 8-chip high-frequency stack (tall enough
/// that h genuinely limits the sustained power).
pub fn flow_study(q: Quality) -> Vec<Table> {
    let chip = high_frequency_cmp();
    // Benefit of h: the total chip power the stack sustains under the
    // threshold at that heat-transfer coefficient.
    let benefit = |h: f64| {
        let d = design(
            chip.clone(),
            8,
            CoolingParams::custom_immersion("flow", HeatTransferCoeff::new(h)),
            q,
        );
        match max_frequency(&d) {
            Some(step) => 8.0 * immersion_power::mcpat::analyze(&chip, step, None).total(),
            None => 0.0,
        }
    };
    let sys = FlowSystem::water_tank();
    let mut t = Table::new(
        "Flow engineering: net sustained power vs pump speed (8-chip HF stack)",
        &[
            "v (m/s)",
            "h (W/m2K)",
            "pump (W)",
            "sustained (W)",
            "net (W)",
        ],
    );
    for v in [0.05, 0.1, 0.2, 0.4, 0.8, 1.6] {
        let h = sys.h_at(v).raw();
        let pump = sys.pump_power_at(v);
        let sustained = benefit(h);
        t.row(vec![
            format!("{v:.2}"),
            format!("{h:.0}"),
            format!("{pump:.0}"),
            format!("{sustained:.1}"),
            format!("{:.1}", sustained - pump),
        ]);
    }
    let opt = sys.optimal_flow(0.05, 1.6, benefit);
    let mut o = Table::new(
        "Optimal operating point",
        &["v (m/s)", "h", "pump (W)", "net (W)"],
    );
    o.row(vec![
        format!("{:.2}", opt.v_m_per_s),
        format!("{:.0}", opt.h.raw()),
        format!("{:.0}", opt.pump_power_w),
        format!("{:.1}", opt.net_benefit_w),
    ]);
    vec![t, o]
}

/// Extension (§1): project the high-frequency CMP along the IRDS
/// trajectory (425 W by 2033) and ask which cooling options still hold
/// a 4-chip stack.
pub fn irds_study(q: Quality) -> Vec<Table> {
    let base = high_frequency_cmp();
    let mut t = Table::new(
        "IRDS power scaling: max frequency (GHz) of a 4-chip stack by year",
        &[
            "year",
            "chip W @ fmax",
            "air",
            "water-pipe",
            "mineral-oil",
            "water",
        ],
    );
    for node in irds_trajectory() {
        let chip = project(&base, &node);
        let mut cells = vec![
            node.name.to_string(),
            format!("{:.0}", chip.max_power_watts),
        ];
        for cooling in [
            CoolingParams::air(),
            CoolingParams::water_pipe(),
            CoolingParams::mineral_oil(),
            CoolingParams::water_immersion(),
        ] {
            let d = design(chip.clone(), 4, cooling, q);
            cells.push(fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)));
        }
        t.row(cells);
    }
    vec![t]
}

/// Extension (§5.1 comparison): interlayer microchannel cooling vs
/// plain immersion — frequency vs stack height.
pub fn microchannel_study(q: Quality) -> Vec<Table> {
    use immersion_thermal::stack3d::MicrochannelParams;
    let chip = high_frequency_cmp();
    let mut headers: Vec<String> = vec!["cooling".into()];
    headers.extend((1..=12).map(|n| format!("{n}")));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        "Microchannels vs immersion: max frequency (GHz) vs chips, high-frequency CMP",
        &headers_ref,
    );
    for (label, mc) in [
        ("water immersion", None),
        (
            "immersion + microchannels",
            Some(MicrochannelParams::default()),
        ),
    ] {
        let mut cells = vec![label.to_string()];
        for n in 1..=12 {
            let mut d = design(chip.clone(), n, CoolingParams::water_immersion(), q);
            if let Some(m) = mc {
                d = d.with_microchannels(m);
            }
            cells.push(fmt_freq(max_frequency(&d).map(|s| s.freq_ghz)));
        }
        t.row(cells);
    }
    vec![t]
}

/// Extension (future work #2): dense node packing — IT density per
/// square metre of floor for each cooling style.
pub fn density_study(_q: Quality) -> Vec<Table> {
    use immersion_coolant::datacenter::PackingModel;
    let mut t = Table::new(
        "Node packing density (0.5 m boards)",
        &[
            "style",
            "boards/m2",
            "IT kW/m2 @ 250 W",
            "IT kW/m2 @ 1 kW",
            "facility kW/m2 @ 1 kW",
        ],
    );
    for m in PackingModel::all() {
        t.row(vec![
            m.name.into(),
            format!("{:.1}", m.boards_per_m2(0.5)),
            format!("{:.1}", m.it_density_w_per_m2(250.0, 0.5) / 1000.0),
            format!("{:.1}", m.it_density_w_per_m2(1000.0, 0.5) / 1000.0),
            format!("{:.1}", m.facility_density_w_per_m2(1000.0, 0.5) / 1000.0),
        ]);
    }
    vec![t]
}

/// Extension (§5.1-cited literature): thermal-TSV placement — uniform
/// bond fill vs the same metal clustered under the hot cores.
pub fn tsv_study(q: Quality) -> Vec<Table> {
    use immersion_thermal::stack3d::{StackBuilder, TsvPlacement};
    let chip = high_frequency_cmp();
    let step = chip.vfs.max_step();
    let report = immersion_power::mcpat::analyze(&chip, step, None);
    let mut t = Table::new(
        "Thermal-TSV placement: 4-chip high-frequency CMP @ 3.6 GHz, water (2% avg metal)",
        &["placement", "peak temp (C)"],
    );
    for (label, placement) in [
        ("uniform 2%", TsvPlacement::Uniform),
        (
            "8% under cores, 0% elsewhere",
            TsvPlacement::UnderBlocks {
                blocks: (1..=4).map(|i| format!("CORE{i}")).collect(),
                fraction_under: 0.08,
                fraction_elsewhere: 0.0,
            },
        ),
        (
            "8% under L2 (anti-optimal)",
            TsvPlacement::UnderBlocks {
                blocks: (1..=12).map(|i| format!("L2_{i}")).collect(),
                fraction_under: 0.0267,
                fraction_elsewhere: 0.0,
            },
        ),
    ] {
        let model = StackBuilder::new(chip.floorplan.clone())
            .chips(4)
            .grid(q.grid.0, q.grid.1)
            .cooling(CoolingParams::water_immersion())
            .tsv_placement(placement)
            .build()
            .expect("model builds");
        let mut p = model.zero_power();
        for die in 0..4 {
            for (b, &w) in &report.per_block {
                p.set(die, b, w).expect("block");
            }
        }
        let peak = model.solve_steady(&p).expect("solve").die_max();
        t.row(vec![label.into(), format!("{peak:.1}")]);
    }
    vec![t]
}

/// Capstone: a river-deployed farm of film-coated 4-chip nodes — the
/// §4.4 vision end to end (thermal + reliability + facility models).
pub fn riverfarm_study(q: Quality) -> Vec<Table> {
    use immersion_coolant::datacenter::PackingModel;
    use immersion_coolant::reliability::{mean_lifetime, temperature_acceleration, BoardConfig};
    let chip = high_frequency_cmp();
    let mut t = Table::new(
        "River farm: 4-chip nodes in natural water vs a conventional hall",
        &["metric", "river farm", "air hall"],
    );
    // Thermal: sustained frequency of each node.
    let mut river_cooling = CoolingParams::water_immersion();
    river_cooling.ambient = Celsius::new(18.0); // river water arrives pre-cooled
    let river = design(chip.clone(), 4, river_cooling, q);
    let hall = design(chip.clone(), 4, CoolingParams::air(), q);
    let f_river = max_frequency(&river).map(|s| s.freq_ghz);
    let f_hall = max_frequency(&hall).map(|s| s.freq_ghz);
    t.row(vec![
        "sustained frequency (GHz)".into(),
        fmt_freq(f_river),
        fmt_freq(f_hall),
    ]);
    // Node power at the sustained step.
    let node_w = |f: Option<f64>| {
        f.and_then(|f| chip.vfs.step_at_or_below(f))
            .map(|s| 4.0 * immersion_power::mcpat::analyze(&chip, s, None).total())
            .unwrap_or(0.0)
    };
    let (w_river, w_hall) = (node_w(f_river), node_w(f_hall));
    t.row(vec![
        "node power (W)".into(),
        format!("{w_river:.0}"),
        format!("{w_hall:.0}"),
    ]);
    // Facility: density and PUE.
    let frame = PackingModel::natural_water_frame();
    let hall_pack = PackingModel::air_hall();
    t.row(vec![
        "IT density (kW/m2)".into(),
        format!(
            "{:.1}",
            frame.it_density_w_per_m2(w_river.max(1.0), 0.5) / 1000.0
        ),
        format!(
            "{:.1}",
            hall_pack.it_density_w_per_m2(w_hall.max(1.0), 0.5) / 1000.0
        ),
    ]);
    t.row(vec![
        "PUE".into(),
        format!("{:.3}", immersion_coolant::pue::pue(&frame.architecture)),
        format!(
            "{:.3}",
            immersion_coolant::pue::pue(&hall_pack.architecture)
        ),
    ]);
    // Reliability: node lifetime in 18 C river water vs dry hall.
    let board = BoardConfig::server_recommended(150.0);
    let temp_factor = temperature_acceleration(18.0);
    let life_river = mean_lifetime(&board, 10.0, q.trials, 21) / temp_factor.max(1e-9);
    t.row(vec![
        "mean node lifetime (years)".into(),
        format!("{:.1}", life_river.min(10.0)),
        "8.0 (DIMM-limited)".into(),
    ]);
    vec![t]
}

/// Extension: stride-prefetcher ablation on the CMP simulator — per
/// benchmark change in L1 miss rate and execution time.
pub fn prefetch_study(q: Quality) -> Vec<Table> {
    use immersion_archsim::{System, SystemConfig};
    use immersion_npb::{Benchmark, TraceGenerator};
    let mut t = Table::new(
        "Stride prefetcher (distance 16) on the 2-chip CMP @ 2.0 GHz",
        &["benchmark", "miss rate off", "miss rate on", "speedup"],
    );
    for bench in Benchmark::all() {
        let run = |prefetch: bool| {
            let mut cfg = SystemConfig::baseline(2, 2.0);
            cfg.prefetch_next_line = prefetch;
            let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), q.ops_per_thread, 42);
            System::new(cfg).run(&gen)
        };
        let off = run(false);
        let on = run(true);
        t.row(vec![
            bench.name().into(),
            format!("{:.3}", off.l1_miss_rate),
            format!("{:.3}", on.l1_miss_rate),
            format!("{:.3}", off.exec_time_secs / on.exec_time_secs),
        ]);
    }
    vec![t]
}

// ----------------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------------

/// All experiments by name, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig1",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "lifetime",
    "pue",
    "ablations",
    "grid",
    "dtm",
    "layout",
    "flow",
    "irds",
    "prefetch",
    "microchannel",
    "density",
    "tsv",
    "riverfarm",
];

/// Run one experiment by name.
pub fn run_experiment(name: &str, q: Quality) -> Option<Vec<Table>> {
    Some(match name {
        "table1" => table1(q),
        "table2" => table2(q),
        "fig1" => fig1(q),
        "fig4" => fig4(q),
        "fig6" => fig6(q),
        "fig7" => fig7(q),
        "fig8" => fig8(q),
        "fig9" => fig9(q),
        "fig10" => fig10(q),
        "fig11" => fig11(q),
        "fig12" => fig12(q),
        "fig13" => fig13(q),
        "fig14" => fig14(q),
        "fig15" => fig15(q),
        "fig16" => fig16(q),
        "fig17" => fig17(q),
        "fig18" => fig18(q),
        "lifetime" => lifetime(q),
        "pue" => pue_study(q),
        "ablations" => ablations(q),
        "grid" => grid_convergence(q),
        "dtm" => dtm_study(q),
        "layout" => layout_study(q),
        "flow" => flow_study(q),
        "irds" => irds_study(q),
        "prefetch" => prefetch_study(q),
        "microchannel" => microchannel_study(q),
        "density" => density_study(q),
        "tsv" => tsv_study(q),
        "riverfarm" => riverfarm_study(q),
        _ => return None,
    })
}
