//! `watercool sanitize`: drive every instrumented lock site under the
//! concurrency sanitizer, then cross-validate the dynamic
//! lock-acquisition graph against the static R11 graph.
//!
//! The scenario arms the sanitizer once and walks the whole stack:
//! faultsim arm/probe (exclusivity → state edge), a deliberately
//! synchronized single-flight join (slots → joiners edge), rayon
//! fork-join regions, a cached campaign run (miss pass then hit pass),
//! and a live loopback server handling evaluate/campaign/metrics
//! traffic. `--stress N` appends N rounds of contended single-flight
//! entry plus parallel regions to shake out schedule-dependent races.
//!
//! Verdicts, in order of severity:
//!
//! 1. **Races** — any happens-before violation fails the run.
//! 2. **Unknown dynamic edges** — a lock order exercised at runtime
//!    that the static R11 graph never derived means the static
//!    analysis has a blind spot; fail so it gets taught.
//! 3. **Coverage debt** — static edges the scenario never exercised
//!    are reported as a percentage and ratcheted via
//!    `sanitize.ratchet` (counts only go up, like `lint.allow` in
//!    reverse): `--fix-ratchet` rewrites the floor after coverage
//!    improves.
//!
//! Artifacts land under `--out`: `sanitize_report.json` (full race /
//! edge / inventory report), `sanitize_report.sarif` (for code
//! scanning upload), and `lockgraph_dynamic.dot`.

use immersion_campaign::fsutil::atomic_write;
use immersion_campaign::{Campaign, Job, RunOptions};
use immersion_core::sanitizer;
use immersion_faultsim::FaultPlan;
use immersion_serve::flight::{Entry, SingleFlight};
use immersion_serve::ServeConfig;
use rayon::prelude::*;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The single-flight edge the joiner thread must record before the
/// leader publishes (see [`exercise_flight`]).
const FLIGHT_EDGE: (&str, &str) = ("serve::SingleFlight.slots", "serve::joiners");

/// Checked-in coverage floor, next to `lint.allow`.
const RATCHET_FILE: &str = "sanitize.ratchet";

/// Parsed `sanitize` subcommand flags.
pub struct SanitizeConfig {
    /// Extra contended rounds after the base scenario.
    pub stress: usize,
    /// Seed for the faultsim plan and stress-round key rotation.
    pub seed: u64,
    /// Artifact directory.
    pub out: PathBuf,
    /// Rewrite `sanitize.ratchet` to the achieved coverage.
    pub fix_ratchet: bool,
}

/// Run the full sanitize pass; `Ok` is the human summary, `Err` the
/// failure text (races, unknown edges, or a coverage regression).
pub fn run_and_report(cfg: &SanitizeConfig) -> Result<String, String> {
    let root = workspace_root()?;
    let static_graph = static_lock_edges(&root)?;

    std::fs::create_dir_all(&cfg.out).map_err(|e| format!("{}: {e}", cfg.out.display()))?;

    let armed = sanitizer::install();
    exercise_faultsim(cfg.seed);
    exercise_flight(&armed)?;
    exercise_rayon(4096)?;
    exercise_thermal_mg()?;
    exercise_campaign(&cfg.out, cfg.seed)?;
    exercise_serve(&cfg.out)?;
    for round in 0..cfg.stress {
        stress_round(cfg.seed, round)?;
    }
    let report = armed.finish();

    write_artifacts(&cfg.out, &report)?;

    let dynamic: BTreeSet<(String, String)> = report
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let static_edges: BTreeSet<(String, String)> = static_graph.keys().cloned().collect();
    let unknown: Vec<&(String, String)> = dynamic.difference(&static_edges).collect();
    let covered = static_edges.intersection(&dynamic).count();
    let coverage_pct = if static_edges.is_empty() {
        100.0
    } else {
        100.0 * covered as f64 / static_edges.len() as f64
    };

    let ratchet_path = root.join(RATCHET_FILE);
    let floor = read_ratchet(&ratchet_path)?;
    if cfg.fix_ratchet {
        write_ratchet(&ratchet_path, covered)?;
    }

    let mut lines = vec![
        format!(
            "sanitize: {} race(s), {} dynamic lock edge(s), {} thread(s), {} fork region(s), \
             stress {}",
            report.races.len(),
            report.edges.len(),
            report.threads,
            report.regions,
            cfg.stress,
        ),
        format!(
            "static R11 graph: {} edge(s); exercised {covered} ({coverage_pct:.0}% coverage, \
             ratchet floor {floor})",
            static_edges.len(),
        ),
    ];
    for (from, to) in static_edges.difference(&dynamic) {
        lines.push(format!(
            "  coverage debt: static edge {from} -> {to} never exercised"
        ));
    }
    for note in &report.lockset_notes {
        lines.push(format!("  note: {note}"));
    }
    lines.push(format!(
        "artifacts: {}",
        cfg.out.join("sanitize_report.json").display()
    ));

    let mut failures = Vec::new();
    for race in &report.races {
        failures.push(format!(
            "RACE ({}) on `{}`: {} (tid {}) vs {} (tid {})",
            race.kind,
            race.name,
            race.first_loc,
            race.first_thread,
            race.second_loc,
            race.second_thread
        ));
    }
    for (from, to) in &unknown {
        failures.push(format!(
            "dynamic lock edge {from} -> {to} is absent from the static R11 graph \
             (static analysis blind spot — teach lockorder.rs about this acquisition)"
        ));
    }
    if covered < floor && !cfg.fix_ratchet {
        failures.push(format!(
            "coverage regression: {covered} static edge(s) exercised, ratchet floor is {floor} \
             ({RATCHET_FILE})"
        ));
    }

    let summary = lines.join("\n");
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(format!("{summary}\n{}", failures.join("\n")))
    }
}

/// Spawn a thread inside an instrumented fork region. Scenario
/// threads must be visible to the happens-before model: a plain
/// `std::thread::spawn` starts with an empty clock, so a later round
/// reusing a freed allocation (same shadow-cell instance id) would
/// read as a race against work the spawn already ordered.
fn spawn_tracked<F, T>(san: sanitizer::ForkToken, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::spawn(move || {
        sanitizer::task_start(san);
        let out = f();
        sanitizer::task_end(san);
        out
    })
}

fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    immersion_lint::find_workspace_root(&cwd).ok_or_else(|| {
        "not inside a cargo workspace (no Cargo.toml with [workspace] above cwd)".to_string()
    })
}

/// The static R11 lock graph: `(from, to) → witness`.
fn static_lock_edges(root: &Path) -> Result<BTreeMap<(String, String), String>, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in immersion_lint::collect_sources(root).map_err(|e| e.to_string())? {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => path.to_string_lossy().into_owned(),
        };
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        sources.push((rel, text));
    }
    let sem = immersion_lint::semantic::analyze(&sources);
    if !sem.errors.is_empty() {
        return Err(format!(
            "static lock graph unavailable:\n{}",
            sem.errors.join("\n")
        ));
    }
    Ok(sem.lock_graph().edges)
}

/// Arm a fault plan and probe a few sites: `install` takes the
/// exclusivity lock and then the plan state lock, exercising the
/// `faultsim::exclusivity() → faultsim::state()` edge.
fn exercise_faultsim(seed: u64) {
    let armed = immersion_faultsim::install(FaultPlan::new(seed));
    for site in ["sanitize::alpha", "sanitize::beta"] {
        let _ = immersion_faultsim::probe(site);
    }
    drop(armed);
}

/// Exercise the `serve::SingleFlight.slots → serve::joiners` edge
/// deterministically: the edge only exists while a joiner enters a
/// populated slot, so the leader must not publish until the joiner's
/// acquisition is visible in the dynamic graph.
fn exercise_flight(armed: &sanitizer::Armed) -> Result<(), String> {
    let group = Arc::new(SingleFlight::new());
    let token = match group.enter(&group, "sanitize-flight") {
        Entry::Leader(t) => t,
        Entry::Joined(_) => return Err("fresh single-flight group already had a flight".into()),
    };
    let san = sanitizer::fork();
    let joiner = {
        let group = Arc::clone(&group);
        spawn_tracked(san, move || match group.enter(&group, "sanitize-flight") {
            Entry::Joined(Ok(v)) => Ok(v.len()),
            Entry::Joined(Err(e)) => Err(format!("joined a failed flight: {e}")),
            Entry::Leader(t) => {
                // Raced past the publish; lead a trivial second flight
                // so the token is consumed.
                t.publish(Ok(Arc::new(String::new())));
                Err("joiner became leader before the edge was recorded".to_string())
            }
        })
    };
    // lint: wall-clock-ok — scenario timeout, not replay-critical.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let seen = armed
            .report()
            .edges
            .iter()
            .any(|e| e.from == FLIGHT_EDGE.0 && e.to == FLIGHT_EDGE.1);
        if seen {
            break;
        }
        if Instant::now() > deadline {
            token.publish(Ok(Arc::new(String::new())));
            let _ = joiner.join();
            return Err("single-flight joiner never recorded the slots -> joiners edge".into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let joined = token.publish(Ok(Arc::new("sanitized".to_string())));
    let len = joiner
        .join()
        .map_err(|_| "single-flight joiner panicked".to_string())??;
    sanitizer::join(san);
    if joined != 1 || len != "sanitized".len() {
        return Err(format!(
            "single-flight join mismatch: {joined} joiner(s), payload len {len}"
        ));
    }
    Ok(())
}

/// Run a fork-join region on a dedicated pool, checking the result so
/// the parallel work is observably correct under instrumentation.
fn exercise_rayon(len: u64) -> Result<(), String> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(3)
        .build()
        .map_err(|e| e.to_string())?;
    let sum = pool.install(|| {
        let mut v: Vec<u64> = (0..len).collect();
        v.par_iter_mut()
            .for_each(|x| *x = x.wrapping_mul(3).wrapping_add(1));
        v.iter().copied().fold(0u64, u64::wrapping_add)
    });
    // Sum of 3k+1 for k in 0..len.
    let expect = (0..len).fold(0u64, |a, k| {
        a.wrapping_add(k.wrapping_mul(3).wrapping_add(1))
    });
    if sum != expect {
        return Err(format!("parallel region corrupted data: {sum} != {expect}"));
    }
    Ok(())
}

/// Concurrent multigrid-preconditioned steady solves on one shared
/// model. This drives the hierarchy's shared-access annotations
/// (`thermal::MgHierarchy.levels`) from several threads at once: the
/// first solver takes the cached context, the others rebuild default
/// contexts, and `take_solver` re-arms every one with the same
/// `Arc`-shared hierarchy. Beyond race-freedom, the solves must agree
/// bitwise — the multigrid path promises width- and
/// schedule-invariant arithmetic.
fn exercise_thermal_mg() -> Result<(), String> {
    use immersion_thermal::floorplan::{Floorplan, Rect};
    use immersion_thermal::stack3d::{CoolingParams, StackBuilder};

    let mut fp = Floorplan::new(0.01, 0.01);
    fp.add_block("DIE", Rect::new(0.0, 0.0, 0.01, 0.01))
        .map_err(|e| e.to_string())?;
    let model = Arc::new(
        StackBuilder::new(fp)
            .chips(2)
            .grid(6, 6)
            .cooling(CoolingParams::water_immersion())
            .build()
            .map_err(|e| e.to_string())?,
    );
    if model.multigrid().is_none() {
        return Err("multigrid hierarchy failed to build for the sanitize fixture".into());
    }
    let san = sanitizer::fork();
    let mut solvers = Vec::new();
    for _ in 0..3 {
        let model = Arc::clone(&model);
        solvers.push(spawn_tracked(san, move || -> Result<Vec<f64>, String> {
            let mut p = model.zero_power();
            for die in 0..2 {
                p.set(die, "DIE", 15.0).map_err(|e| e.to_string())?;
            }
            let sol = model.solve_steady_cold(&p).map_err(|e| e.to_string())?;
            Ok(sol.into_temps())
        }));
    }
    let mut fields = Vec::new();
    for handle in solvers {
        fields.push(
            handle
                .join()
                .map_err(|_| "thermal solver thread panicked".to_string())??,
        );
    }
    sanitizer::join(san);
    for field in &fields[1..] {
        for (a, b) in field.iter().zip(&fields[0]) {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "concurrent multigrid solves disagree bitwise: {a:?} vs {b:?}"
                ));
            }
        }
    }
    Ok(())
}

/// A small multi-worker campaign run twice against the same cache
/// directory: the first pass stores entries (`sync_write`), the second
/// hits them (`sync_read`), and both drive the scheduler's tracked
/// mutex/condvar from several workers.
fn exercise_campaign(out: &Path, seed: u64) -> Result<(), String> {
    let build = || {
        let mut c = Campaign::new();
        for i in 0..6u64 {
            let mut cfg = BTreeMap::new();
            cfg.insert("scenario".to_string(), Value::Str("sanitize".to_string()));
            cfg.insert("cell".to_string(), Value::U64(i));
            cfg.insert("seed".to_string(), Value::U64(seed));
            c.add(Job::new(
                format!("sanitize-cell-{i}"),
                &Value::Map(cfg),
                move |_| Ok(Value::U64(i.wrapping_mul(37).wrapping_add(seed))),
            ));
        }
        c
    };
    let opts = RunOptions {
        workers: 3,
        cache_dir: Some(out.join("campaign-cache")),
        use_cache: true,
        ..RunOptions::default()
    };
    for pass in ["store", "hit"] {
        let report = build()
            .run(&opts, &|_| {})
            .map_err(|e| format!("campaign {pass} pass: {e}"))?;
        if !report.all_ok() {
            return Err(format!("campaign {pass} pass had failing jobs"));
        }
    }
    Ok(())
}

/// Boot a loopback server and drive the full store → flight → pool
/// pipeline: repeated evaluates (solve, then store hit), concurrent
/// clients on distinct grids (pool contention + eviction), a campaign
/// submit/poll cycle on the detached runner thread, and a metrics
/// scrape.
fn exercise_serve(out: &Path) -> Result<(), String> {
    let running = immersion_serve::start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 3,
        state_dir: Some(out.join("serve-state")),
        pool_capacity: 4,
    })
    .map_err(|e| format!("serve bind: {e}"))?;
    let addr = running.addr().to_string();
    let mut c = minihttp::Client::new(addr.clone());

    let body = r#"{"chip":"lp","chips":2,"cooling":"water","grid":[4,4]}"#;
    for pass in ["solve", "store-hit"] {
        let resp = post(&mut c, "/v1/evaluate", body)?;
        if resp.0 != 200 {
            return Err(format!(
                "evaluate ({pass}): status {} body {}",
                resp.0, resp.1
            ));
        }
    }

    let san = sanitizer::fork();
    let mut clients = Vec::new();
    for _ in 0..3 {
        let addr = addr.clone();
        clients.push(spawn_tracked(san, move || -> Result<(), String> {
            let mut c = minihttp::Client::new(addr);
            for grid in [4u32, 5, 6] {
                let body = format!(
                    r#"{{"chip":"lp","chips":2,"cooling":"water","grid":[{grid},{grid}]}}"#
                );
                let resp = post(&mut c, "/v1/evaluate", &body)?;
                if resp.0 != 200 {
                    return Err(format!("evaluate grid {grid}: status {}", resp.0));
                }
            }
            Ok(())
        }));
    }
    for handle in clients {
        handle
            .join()
            .map_err(|_| "serve client thread panicked".to_string())??;
    }
    sanitizer::join(san);

    let (status, text) = post(
        &mut c,
        "/v1/campaign",
        r#"{"chip":"lp","cooling":"water","max_chips":2,"grid":[4,4]}"#,
    )?;
    if status != 202 {
        return Err(format!("campaign submit: status {status} body {text}"));
    }
    let submitted: Value = serde_json::from_str(&text).map_err(|e| format!("submit JSON: {e}"))?;
    let id = submitted
        .get("id")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("campaign submit response lacks id: {text}"))?
        .to_string();
    // lint: wall-clock-ok — scenario timeout, not replay-critical.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = c
            .send("GET", &format!("/v1/campaign/{id}"), b"")
            .map_err(|e| format!("campaign poll: {e}"))?;
        if resp.status != 200 {
            return Err(format!("campaign poll: status {}", resp.status));
        }
        let s: Value = serde_json::from_str(&resp.text()).map_err(|e| format!("poll JSON: {e}"))?;
        match s.get("state").and_then(Value::as_str) {
            Some("done") => break,
            Some("failed") => return Err(format!("server campaign failed: {}", resp.text())),
            _ if Instant::now() > deadline => return Err("server campaign timed out".to_string()),
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }

    let metrics = c
        .send("GET", "/metrics", b"")
        .map_err(|e| format!("metrics: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("metrics: status {}", metrics.status));
    }

    running.shutdown();
    Ok(())
}

fn post(c: &mut minihttp::Client, path: &str, body: &str) -> Result<(u16, String), String> {
    let resp = c
        .send("POST", path, body.as_bytes())
        .map_err(|e| format!("{path}: {e}"))?;
    Ok((resp.status, resp.text()))
}

/// One contended round: four threads race into the same single-flight
/// key (exactly one leads, the rest join or lead follow-up flights)
/// while each also runs a small parallel region. Any ordering the
/// scheduler produces must stay race-free.
fn stress_round(seed: u64, round: usize) -> Result<(), String> {
    let group = Arc::new(SingleFlight::new());
    let key = format!("stress-{}", (seed as usize).wrapping_add(round) % 7);
    let san = sanitizer::fork();
    let mut workers = Vec::new();
    for worker in 0..4u64 {
        let group = Arc::clone(&group);
        let key = key.clone();
        workers.push(spawn_tracked(san, move || -> Result<(), String> {
            match group.enter(&group, &key) {
                Entry::Leader(t) => {
                    let payload: u64 = (0..256u64)
                        .map(|k| k.wrapping_mul(worker + 1))
                        .fold(0, u64::wrapping_add);
                    t.publish(Ok(Arc::new(payload.to_string())));
                    Ok(())
                }
                Entry::Joined(Ok(_)) => Ok(()),
                Entry::Joined(Err(e)) => Err(format!("stress flight failed: {e}")),
            }
        }));
    }
    for handle in workers {
        handle
            .join()
            .map_err(|_| "stress worker panicked".to_string())??;
    }
    sanitizer::join(san);
    if round.is_multiple_of(32) {
        exercise_faultsim(seed.wrapping_add(round as u64));
        exercise_rayon(1024)?;
        exercise_thermal_mg()?;
    }
    Ok(())
}

fn write_artifacts(out: &Path, report: &sanitizer::report::Report) -> Result<(), String> {
    let json =
        serde_json::to_string_pretty(&report.to_json()).map_err(|e| format!("report JSON: {e}"))?;
    let sarif =
        serde_json::to_string_pretty(&report.to_sarif()).map_err(|e| format!("SARIF: {e}"))?;
    for (name, text) in [
        ("sanitize_report.json", json),
        ("sanitize_report.sarif", sarif),
        ("lockgraph_dynamic.dot", report.dynamic_dot()),
    ] {
        let path = out.join(name);
        atomic_write(&path, text.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(())
}

/// Read the `covered_min N` floor from `sanitize.ratchet`. A missing
/// file means no floor yet (0).
fn read_ratchet(path: &Path) -> Result<usize, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    for line in text.lines() {
        if let Some(rest) = line.trim().strip_prefix("covered_min") {
            return rest
                .trim()
                .parse()
                .map_err(|_| format!("{}: bad covered_min line", path.display()));
        }
    }
    Err(format!("{}: no covered_min line", path.display()))
}

fn write_ratchet(path: &Path, covered: usize) -> Result<(), String> {
    let text = format!(
        "# Dynamic lock-graph coverage ratchet: the `watercool sanitize`\n\
         # scenario must exercise at least `covered_min` edges of the static\n\
         # R11 lock-order graph. Counts only go up — run\n\
         # `watercool sanitize --fix-ratchet` after improving coverage.\n\
         covered_min {covered}\n"
    );
    atomic_write(path, text.as_bytes()).map_err(|e| format!("{}: {e}", path.display()))
}
