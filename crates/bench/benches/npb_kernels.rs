//! Criterion benches for the real NPB mini-kernels: absolute runtime
//! per kernel at class S, and the rayon scaling of EP (the
//! embarrassingly parallel one, where scaling should be near-linear).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use immersion_npb::kernels::{self, Class};

fn bench_all_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("npb_class_s");
    g.sample_size(10);
    for name in ["BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA"] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = match name {
                    "BT" => kernels::bt::run(Class::S, 2),
                    "CG" => kernels::cg::run(Class::S, 2),
                    "EP" => kernels::ep::run(Class::S, 2),
                    "FT" => kernels::ft::run(Class::S, 2),
                    "IS" => kernels::is::run(Class::S, 2),
                    "LU" => kernels::lu::run(Class::S, 2),
                    "MG" => kernels::mg::run(Class::S, 2),
                    "SP" => kernels::sp::run(Class::S, 2),
                    "UA" => kernels::ua::run(Class::S, 2),
                    _ => unreachable!(),
                };
                assert!(r.verified);
                r.checksum
            })
        });
    }
    g.finish();
}

fn bench_ep_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ep_thread_scaling");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| kernels::ep::run(Class::S, threads).checksum),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_all_kernels, bench_ep_scaling);
criterion_main!(benches);
