//! Criterion benches for the gem5-like CMP simulator: simulated
//! instructions per wall second for a compute-bound (EP) and a
//! memory/coherence-bound (CG) workload, and scaling with chip count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use immersion_archsim::{System, SystemConfig};
use immersion_npb::{Benchmark, TraceGenerator};

fn bench_workloads(c: &mut Criterion) {
    let ops = 20_000u64;
    let mut g = c.benchmark_group("simulate_20k_ops_per_thread");
    g.sample_size(10);
    for bench in [Benchmark::Ep, Benchmark::Cg, Benchmark::Lu] {
        let cfg = SystemConfig::baseline(2, 2.0);
        g.throughput(Throughput::Elements(ops * cfg.threads() as u64));
        g.bench_function(bench.name(), |b| {
            b.iter(|| {
                let gen = TraceGenerator::new(bench.descriptor(), cfg.threads(), ops, 7);
                System::new(cfg).run(&gen).cycles
            })
        });
    }
    g.finish();
}

fn bench_chip_scaling(c: &mut Criterion) {
    let ops = 10_000u64;
    let mut g = c.benchmark_group("simulate_chip_scaling_ft");
    g.sample_size(10);
    for &chips in &[1usize, 4, 8] {
        let cfg = SystemConfig::baseline(chips, 2.0);
        g.bench_with_input(BenchmarkId::from_parameter(chips), &chips, |b, _| {
            b.iter(|| {
                let gen = TraceGenerator::new(Benchmark::Ft.descriptor(), cfg.threads(), ops, 7);
                System::new(cfg).run(&gen).cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workloads, bench_chip_scaling);
criterion_main!(benches);
