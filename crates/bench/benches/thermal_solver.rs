//! Criterion benches for the HotSpot-like thermal solver: steady-state
//! solve cost vs grid resolution and stack height, plus the warm-start
//! advantage the explorer exploits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use immersion_power::chips::high_frequency_cmp;
use immersion_power::mcpat::analyze;
use immersion_thermal::stack3d::{CoolingParams, StackBuilder};

fn bench_steady_solve(c: &mut Criterion) {
    let chip = high_frequency_cmp();
    let report = analyze(&chip, chip.vfs.max_step(), None);

    let mut g = c.benchmark_group("steady_solve_grid");
    for &n in &[8usize, 16, 24] {
        let model = StackBuilder::new(chip.floorplan.clone())
            .chips(4)
            .grid(n, n)
            .cooling(CoolingParams::water_immersion())
            .build()
            .unwrap();
        let mut p = model.zero_power();
        for die in 0..4 {
            for (b, &w) in &report.per_block {
                p.set(die, b, w).unwrap();
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| model.solve_steady(&p).unwrap().max_temp())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("steady_solve_chips");
    for &chips in &[2usize, 6, 10] {
        let model = StackBuilder::new(chip.floorplan.clone())
            .chips(chips)
            .grid(12, 12)
            .cooling(CoolingParams::water_immersion())
            .build()
            .unwrap();
        let mut p = model.zero_power();
        for die in 0..chips {
            for (b, &w) in &report.per_block {
                p.set(die, b, w).unwrap();
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(chips), &chips, |bench, _| {
            bench.iter(|| model.solve_steady(&p).unwrap().max_temp())
        });
    }
    g.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let chip = high_frequency_cmp();
    let report = analyze(&chip, chip.vfs.max_step(), None);
    let model = StackBuilder::new(chip.floorplan.clone())
        .chips(4)
        .grid(16, 16)
        .cooling(CoolingParams::water_immersion())
        .build()
        .unwrap();
    let mut p = model.zero_power();
    for die in 0..4 {
        for (b, &w) in &report.per_block {
            p.set(die, b, w).unwrap();
        }
    }
    let warm = model.solve_steady(&p).unwrap().into_temps();
    c.bench_function("steady_solve_cold", |b| {
        b.iter(|| model.solve_steady(&p).unwrap().iterations())
    });
    c.bench_function("steady_solve_warm", |b| {
        b.iter(|| model.solve_steady_from(&p, &warm).unwrap().iterations())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_steady_solve, bench_warm_start
}
criterion_main!(benches);
