//! Campaign-engine overhead: what scheduling costs when the jobs
//! themselves do nothing, and how fast the content-addressed cache
//! answers. These bound the fixed tax the orchestrator adds on top of
//! the experiments it runs.

use criterion::{criterion_group, criterion_main, Criterion};
use immersion_campaign::{Cache, CacheEntry, Campaign, Job, RunOptions};
use serde_json::Value;

fn noop_campaign(n: usize) -> Campaign {
    let mut c = Campaign::new();
    for i in 0..n {
        c.add(Job::new(format!("job{i:03}"), &i, |_| Ok(Value::Null)));
    }
    c
}

/// Full run of N no-op jobs with no cache: pure scheduling overhead
/// (graph validation, worker pool, key hashing, event plumbing).
fn scheduler_overhead(c: &mut Criterion) {
    let opts = RunOptions {
        workers: 2,
        retries: 0,
        ..RunOptions::default()
    };
    let mut group = c.benchmark_group("scheduler");
    for n in [16usize, 64] {
        let camp = noop_campaign(n);
        group.bench_function(format!("noop_jobs_{n}"), |b| {
            b.iter(|| {
                let report = camp.run(&opts, &|_| {}).unwrap();
                assert!(report.all_ok());
            })
        });
    }
    group.finish();
}

/// Cache performance: a raw single-entry load, and a full campaign run
/// where every job is served from a warm cache (the resume path).
fn cache_hits(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("watercool-campaign-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cache = Cache::open(dir.join("raw")).unwrap();
    let entry = CacheEntry {
        job: "warm".to_string(),
        config: Value::U64(1),
        output: Value::Str("x".repeat(256)),
        wall_ms: 1,
    };
    cache.store("00112233aabbccdd", &entry).unwrap();
    c.bench_function("cache_hit_load", |b| {
        b.iter(|| {
            let got = cache.load("00112233aabbccdd").unwrap();
            assert_eq!(got.job, "warm");
        })
    });

    let opts = RunOptions {
        workers: 2,
        retries: 0,
        cache_dir: Some(dir.join("campaign")),
        ..RunOptions::default()
    };
    let camp = noop_campaign(16);
    camp.run(&opts, &|_| {}).unwrap(); // populate
    c.bench_function("warm_campaign_16_jobs", |b| {
        b.iter(|| {
            let report = camp.run(&opts, &|_| {}).unwrap();
            assert_eq!(report.cache_hits, 16);
        })
    });

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, scheduler_overhead, cache_hits);
criterion_main!(benches);
