//! Criterion benches for the design-space explorer: cost of one
//! max-frequency search (a handful of warm-started CG thermal solves)
//! across cooling options.

use criterion::{criterion_group, criterion_main, Criterion};
use immersion_core::design::CmpDesign;
use immersion_core::explorer::max_frequency;
use immersion_power::chips::high_frequency_cmp;
use immersion_thermal::stack3d::CoolingParams;

fn bench_max_frequency(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_frequency_6_chips");
    g.sample_size(10);
    for cooling in [
        CoolingParams::air(),
        CoolingParams::water_pipe(),
        CoolingParams::water_immersion(),
    ] {
        g.bench_function(cooling.name, |b| {
            b.iter(|| {
                let d = CmpDesign::new(high_frequency_cmp(), 6, cooling).with_grid(8, 8);
                max_frequency(&d).map(|s| s.freq_ghz)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_max_frequency);
criterion_main!(benches);
