//! Loopback integration tests for the `watercool serve` API surface:
//! real sockets, real worker threads, the full store → flight → pool
//! pipeline. Each test boots its own server on an ephemeral port with
//! a private state directory, so tests parallelise freely.

use immersion_serve::{start, Running, ServeConfig};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Boot a server with a fresh, test-private state directory.
fn boot(tag: &str, threads: usize) -> (Running, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "watercool-apitest-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let running = start(&ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        state_dir: Some(dir.clone()),
        pool_capacity: 8,
    })
    .expect("bind ephemeral port");
    (running, dir)
}

fn client(running: &Running) -> minihttp::Client {
    minihttp::Client::new(running.addr().to_string())
}

fn post(c: &mut minihttp::Client, path: &str, body: &str) -> (u16, Value) {
    let resp = c.send("POST", path, body.as_bytes()).expect("round trip");
    let v: Value = serde_json::from_str(&resp.text())
        .unwrap_or_else(|e| panic!("non-JSON body ({e}): {}", resp.text()));
    (resp.status, v)
}

fn get_text(c: &mut minihttp::Client, path: &str) -> (u16, String) {
    let resp = c.send("GET", path, b"").expect("round trip");
    (resp.status, resp.text())
}

/// Parse `name value` out of the /metrics text exposition.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.trim().parse().ok()))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
}

const LP_WATER: &str = r#"{"chip":"lp","chips":2,"cooling":"water","grid":[4,4]}"#;

#[test]
fn evaluate_round_trips_and_second_hit_comes_from_store() {
    let (running, dir) = boot("eval", 2);
    let mut c = client(&running);

    let (status, v) = post(&mut c, "/v1/evaluate", LP_WATER);
    assert_eq!(status, 200, "{v:?}");
    assert_eq!(v.get("source").and_then(Value::as_str), Some("solved"));
    let result = v.get("result").expect("result field");
    assert!(result.get("peak_c").and_then(Value::as_f64).is_some());
    assert!(result.get("feasible").and_then(Value::as_bool).is_some());
    let step = result.get("step").expect("step field");
    assert!(step.get("freq_ghz").and_then(Value::as_f64).is_some());

    // Identical body again: answered from the result store, and the
    // stored result is byte-equal to the solved one.
    let (status2, v2) = post(&mut c, "/v1/evaluate", LP_WATER);
    assert_eq!(status2, 200);
    assert_eq!(v2.get("source").and_then(Value::as_str), Some("store"));
    assert_eq!(v2.get("result"), v.get("result"));

    let (_, m) = get_text(&mut c, "/metrics");
    assert_eq!(metric(&m, "serve_solves_total"), 1);
    assert_eq!(metric(&m, "serve_store_hits"), 1);

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn search_round_trips_with_a_feasible_step() {
    let (running, dir) = boot("search", 2);
    let mut c = client(&running);

    let (status, v) = post(&mut c, "/v1/search", LP_WATER);
    assert_eq!(status, 200, "{v:?}");
    let result = v.get("result").expect("result field");
    assert_eq!(result.get("feasible").and_then(Value::as_bool), Some(true));
    assert!(result.get("max_freq_ghz").and_then(Value::as_f64).is_some());
    assert!(result.get("probes").and_then(Value::as_u64).is_some());

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn malformed_and_invalid_bodies_get_clean_400s() {
    let (running, dir) = boot("badbody", 1);
    let mut c = client(&running);

    for (path, body) in [
        ("/v1/evaluate", "{not json"),
        ("/v1/evaluate", r#"{"chip":"lp"}"#),
        (
            "/v1/evaluate",
            r#"{"chip":"lp","chips":2,"cooling":"steam"}"#,
        ),
        ("/v1/search", "[1,2,3"),
        ("/v1/campaign", r#"{"chip":"lp","cooling":"water"}"#),
    ] {
        let (status, v) = post(&mut c, path, body);
        assert_eq!(status, 400, "{path} {body} -> {v:?}");
        assert!(v.get("error").and_then(Value::as_str).is_some(), "{v:?}");
    }

    // Errors must not have touched the solver path.
    let (_, m) = get_text(&mut c, "/metrics");
    assert_eq!(metric(&m, "serve_solves_total"), 0);
    assert_eq!(metric(&m, "serve_responses_4xx"), 5);

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn unknown_routes_are_404() {
    let (running, dir) = boot("routes", 1);
    let mut c = client(&running);
    let (status, text) = get_text(&mut c, "/v1/nope");
    assert_eq!(status, 404, "{text}");
    let (status, _) = get_text(&mut c, "/healthz");
    assert_eq!(status, 200);
    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// The single-flight satellite: N concurrent identical requests must
/// produce exactly one solve. The leader holds its solve open with the
/// documented `delay_ms` knob while the duplicates arrive.
#[test]
fn concurrent_identical_requests_solve_exactly_once() {
    let (running, dir) = boot("dedup", 4);
    let addr = running.addr().to_string();

    // All four threads post the same body (delay_ms is excluded from
    // the content key, but identical bodies make that irrelevant).
    let body = r#"{"chip":"lp","chips":2,"cooling":"water","grid":[4,4],"delay_ms":800}"#;
    let leader = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = minihttp::Client::new(addr);
            post(&mut c, "/v1/evaluate", body)
        })
    };
    // Give the leader a head start into its 800 ms dispatch window.
    std::thread::sleep(Duration::from_millis(150));
    let followers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = minihttp::Client::new(addr);
                post(&mut c, "/v1/evaluate", body)
            })
        })
        .collect();

    let (status, lead_v) = leader.join().expect("leader thread");
    assert_eq!(status, 200, "{lead_v:?}");
    assert_eq!(lead_v.get("source").and_then(Value::as_str), Some("solved"));
    for f in followers {
        let (status, v) = f.join().expect("follower thread");
        assert_eq!(status, 200, "{v:?}");
        // Followers joined the flight or hit the store — never solved.
        let source = v.get("source").and_then(Value::as_str);
        assert!(
            source == Some("flight") || source == Some("store"),
            "follower source {source:?}"
        );
        assert_eq!(v.get("result"), lead_v.get("result"));
    }

    let mut c = client(&running);
    let (_, m) = get_text(&mut c, "/metrics");
    assert_eq!(metric(&m, "serve_solves_total"), 1, "\n{m}");
    assert_eq!(
        metric(&m, "serve_flight_joins") + metric(&m, "serve_store_hits"),
        3,
        "\n{m}"
    );

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// Concurrent clients hammering a small body palette: responses for
/// the same body are identical across clients, and the solve count
/// equals the number of distinct bodies regardless of interleaving.
#[test]
fn concurrent_clients_agree_and_solves_match_distinct_bodies() {
    let (running, dir) = boot("determinism", 4);
    let addr = running.addr().to_string();

    let bodies: [&str; 3] = [
        r#"{"chip":"lp","chips":1,"cooling":"water","grid":[4,4]}"#,
        r#"{"chip":"lp","chips":2,"cooling":"oil","grid":[4,4]}"#,
        r#"{"chip":"hf","chips":1,"cooling":"water","grid":[4,4]}"#,
    ];
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = minihttp::Client::new(addr);
                bodies.map(|b| post(&mut c, "/v1/evaluate", b))
            })
        })
        .collect();
    let per_client: Vec<[(u16, Value); 3]> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();

    for round in &per_client {
        for (i, (status, v)) in round.iter().enumerate() {
            assert_eq!(*status, 200, "body {i}: {v:?}");
            assert_eq!(
                v.get("result"),
                per_client[0][i].1.get("result"),
                "body {i} diverged across clients"
            );
        }
    }

    let mut c = client(&running);
    let (_, m) = get_text(&mut c, "/metrics");
    assert_eq!(
        metric(&m, "serve_solves_total"),
        bodies.len() as u64,
        "\n{m}"
    );
    assert_eq!(metric(&m, "serve_responses_5xx"), 0, "\n{m}");

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn campaign_submits_polls_and_completes() {
    let (running, dir) = boot("campaign", 2);
    let mut c = client(&running);

    let (status, v) = post(
        &mut c,
        "/v1/campaign",
        r#"{"chip":"lp","cooling":"water","max_chips":2,"grid":[4,4]}"#,
    );
    assert_eq!(status, 202, "{v:?}");
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .expect("campaign id")
        .to_string();
    assert_eq!(
        v.get("poll").and_then(Value::as_str),
        Some(format!("/v1/campaign/{id}").as_str())
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    let done = loop {
        let (status, text) = get_text(&mut c, &format!("/v1/campaign/{id}"));
        assert_eq!(status, 200, "{text}");
        let s: Value = serde_json::from_str(&text).expect("status JSON");
        match s.get("state").and_then(Value::as_str) {
            Some("done") => break s,
            Some("failed") => panic!("campaign failed: {text}"),
            _ => {
                assert!(Instant::now() < deadline, "campaign timed out: {text}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert!(done.get("result").is_some(), "{done:?}");

    let (status, text) = get_text(&mut c, "/v1/campaign/nope");
    assert_eq!(status, 404, "{text}");

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}

/// The full request sequence of this test, run against a private
/// server; returns every `(status, body)` in a deterministic order so
/// two runs can be compared byte-for-byte.
fn sanitizer_probe_sequence(tag: &str) -> Vec<(u16, String)> {
    let (running, dir) = boot(tag, 3);
    let addr = running.addr().to_string();
    let mut c = client(&running);
    let mut out = Vec::new();

    // Sequential: solve, then the byte-equal store hit.
    for _ in 0..2 {
        let resp = c
            .send("POST", "/v1/evaluate", LP_WATER.as_bytes())
            .expect("round trip");
        out.push((resp.status, resp.text()));
    }

    // Concurrent clients on distinct grids: every body is unique, so
    // each response is an independent fresh solve regardless of the
    // schedule, and the set is deterministic once ordered by grid.
    let mut handles = Vec::new();
    for grid in [5u32, 6, 7] {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = minihttp::Client::new(addr);
            let body =
                format!(r#"{{"chip":"lp","chips":2,"cooling":"water","grid":[{grid},{grid}]}}"#);
            let resp = c
                .send("POST", "/v1/evaluate", body.as_bytes())
                .expect("round trip");
            (resp.status, resp.text())
        }));
    }
    for h in handles {
        out.push(h.join().expect("client thread"));
    }

    running.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    out
}

/// Satellite of the concurrency-sanitizer work: the identical request
/// sequence, once disarmed and once under the armed sanitizer, must
/// produce byte-identical responses and a race-free report.
#[test]
fn sanitizer_armed_run_is_race_free_and_identical_to_disarmed() {
    let baseline = sanitizer_probe_sequence("san-off");

    let armed = immersion_core::sanitizer::install();
    let observed = sanitizer_probe_sequence("san-on");
    let report = armed.finish();

    assert!(
        report.races.is_empty(),
        "sanitizer races during armed serve run: {:?}",
        report.races
    );
    assert_eq!(baseline, observed, "armed run changed observable behaviour");
}
